//! # kvmsim — the hosted-hypervisor interface
//!
//! A KVM-shaped API (modelled on the rust-vmm `kvm-ioctls` crate the paper's
//! ecosystem would use) over the VISA machine: `Hypervisor` → [`VmFd`] →
//! [`VcpuFd::run`] → [`VmExit`]. Every operation charges the calibrated cost
//! of its real counterpart:
//!
//! * `KVM_CREATE_VM` pays the kernel-side VMCS/VMCB allocation that makes
//!   from-scratch virtine creation expensive (§5.2);
//! * `KVM_RUN` pays a user→kernel ring transition, KVM's sanity checks, the
//!   `vmrun` world switch in, and — when the guest exits — the world switch
//!   out plus the return ring transition. This is the "vmrun" floor of
//!   Figures 2 and 8, and why hypercall exits are "doubly expensive" (§6.3);
//! * the first guest instruction after entry pays the pipeline-fill cost of
//!   Table 1.
//!
//! Both a KVM flavor (Linux) and a Hyper-V flavor (Windows,
//! `WHvRunVirtualProcessor`) are provided; the paper reports their
//! performance is similar, and the Hyper-V flavor differs only by a small
//! constant factor on the dispatch path.

use std::cell::RefCell;
use std::rc::Rc;

use hostsim::HostKernel;
use vclock::costs;
use visa::asm::Image;
use visa::cpu::{Cpu, CpuConfig, CpuExit, CpuState, Fault};
use visa::mem::Memory;
use visa::Reg;

/// Hypervisor flavor (the paper's Wasp runs on both, Figure 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Flavor {
    /// Linux KVM: `ioctl(KVM_RUN)`.
    Kvm,
    /// Windows Hyper-V: `WHvRunVirtualProcessor()`. Slightly heavier
    /// dispatch path; "Hyper-V performance was similar for our
    /// experiments" (§4.1).
    HyperV,
}

impl Flavor {
    fn dispatch_cost(self) -> u64 {
        match self {
            Flavor::Kvm => costs::KVM_IOCTL_DISPATCH,
            Flavor::HyperV => costs::KVM_IOCTL_DISPATCH + costs::KVM_IOCTL_DISPATCH / 8,
        }
    }
}

/// Reasons [`VcpuFd::run`] returned to user space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VmExit {
    /// Guest executed `hlt`.
    Hlt,
    /// Guest wrote `value` to I/O `port` (Wasp hypercalls).
    IoOut {
        /// Port number.
        port: u16,
        /// Value written.
        value: u64,
    },
    /// Guest read from I/O `port`; answer with [`VcpuFd::provide_in`].
    IoIn {
        /// Port number.
        port: u16,
    },
    /// The caller's step budget ran out (runaway-guest watchdog).
    StepLimit,
}

/// The entry point to the simulated virtualization API.
#[derive(Clone)]
pub struct Hypervisor {
    kernel: HostKernel,
    flavor: Flavor,
}

impl std::fmt::Debug for Hypervisor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Hypervisor({:?})", self.flavor)
    }
}

impl Hypervisor {
    /// Opens the KVM device.
    pub fn kvm(kernel: HostKernel) -> Hypervisor {
        Hypervisor {
            kernel,
            flavor: Flavor::Kvm,
        }
    }

    /// Opens the Hyper-V platform.
    pub fn hyperv(kernel: HostKernel) -> Hypervisor {
        Hypervisor {
            kernel,
            flavor: Flavor::HyperV,
        }
    }

    /// The flavor of this hypervisor.
    pub fn flavor(&self) -> Flavor {
        self.flavor
    }

    /// The host kernel behind this hypervisor.
    pub fn kernel(&self) -> &HostKernel {
        &self.kernel
    }

    fn ioctl_round_trip_entry(&self) {
        self.kernel.ring_transition();
        self.kernel.clock().tick(self.flavor.dispatch_cost());
    }

    fn ioctl_round_trip_exit(&self) {
        self.kernel.ring_transition();
    }

    /// `KVM_CREATE_VM` + `KVM_SET_USER_MEMORY_REGION` + `KVM_CREATE_VCPU`:
    /// allocates a fresh virtual context with `mem_size` bytes of guest
    /// memory and the reset vector at `entry`.
    ///
    /// This is the expensive, from-scratch path of §5.2: "we pay a higher
    /// cost to construct a virtine due to the host kernel's internal
    /// allocation of the VM state (VMCS on Intel/VMCB on AMD)".
    pub fn create_vm(&self, mem_size: usize, entry: u64) -> VmFd {
        // KVM_CREATE_VM.
        self.ioctl_round_trip_entry();
        self.kernel.clock().tick(costs::KVM_CREATE_VM);
        self.ioctl_round_trip_exit();

        // KVM_SET_USER_MEMORY_REGION.
        self.ioctl_round_trip_entry();
        let pages = (mem_size as u64).div_ceil(4096);
        self.kernel
            .clock()
            .tick(costs::KVM_SET_MEMORY_FIXED + pages * costs::KVM_SET_MEMORY_PER_PAGE);
        self.ioctl_round_trip_exit();

        // KVM_CREATE_VCPU.
        self.ioctl_round_trip_entry();
        self.kernel.clock().tick(costs::KVM_CREATE_VCPU);
        self.ioctl_round_trip_exit();

        let cpu = Cpu::new(self.kernel.clock().clone(), CpuConfig::default(), entry);
        VmFd {
            inner: Rc::new(RefCell::new(VmInner {
                cpu,
                mem: Memory::new(mem_size),
                kernel: self.kernel.clone(),
                flavor: self.flavor,
            })),
        }
    }
}

struct VmInner {
    cpu: Cpu,
    mem: Memory,
    kernel: HostKernel,
    flavor: Flavor,
}

/// A virtual machine handle (the per-context "device file" of §5.1).
#[derive(Clone)]
pub struct VmFd {
    inner: Rc<RefCell<VmInner>>,
}

impl std::fmt::Debug for VmFd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "VmFd({} bytes)", self.inner.borrow().mem.size())
    }
}

/// A snapshot of a VM: architected CPU state plus the dirty memory regions
/// (Wasp snapshotting, §5.2). Only written state is captured, so snapshot
/// and restore costs are proportional to the *image* (plus live heap/stack),
/// exactly the scaling Figure 12 measures.
#[derive(Debug, Clone)]
pub struct VmSnapshot {
    /// Architected CPU state at the snapshot point.
    pub cpu: CpuState,
    /// Bytes of the low dirty region (starting at guest address 0).
    pub low: Vec<u8>,
    /// Guest address where the high dirty region (stack) begins.
    pub high_start: u64,
    /// Bytes of the high dirty region (running to the end of memory).
    pub high: Vec<u8>,
    /// Guest memory size the snapshot was taken from.
    pub mem_size: usize,
}

impl VmSnapshot {
    /// Bytes a restore must copy.
    pub fn copied_bytes(&self) -> usize {
        self.low.len() + self.high.len()
    }

    /// Guest memory size the snapshot targets.
    pub fn mem_size(&self) -> usize {
        self.mem_size
    }
}

impl VmFd {
    /// Creates the vCPU handle. The vCPU was already allocated by
    /// [`Hypervisor::create_vm`]; this is a zero-cost accessor.
    pub fn vcpu(&self) -> VcpuFd {
        VcpuFd {
            inner: Rc::clone(&self.inner),
        }
    }

    /// Size of guest-physical memory.
    pub fn mem_size(&self) -> usize {
        self.inner.borrow().mem.size()
    }

    /// Loads a binary image into guest memory at its base address and points
    /// the vCPU at its entry. Wasp "simply accepts a binary image, loads it
    /// at guest virtual address 0x8000, and enters the VM context" (§5.1).
    /// Charges the userspace memcpy of the image bytes.
    ///
    /// # Panics
    ///
    /// Panics if the image does not fit in guest memory.
    pub fn load_image(&self, image: &Image) {
        let mut inner = self.inner.borrow_mut();
        inner.kernel.memcpy(image.bytes.len());
        inner
            .mem
            .write_bytes(image.base, &image.bytes)
            .expect("image must fit in guest memory");
        inner.cpu.pc = image.entry;
    }

    /// Reads guest memory (hypercall-handler access; bounds-checked).
    pub fn read_guest(&self, addr: u64, len: usize) -> Result<Vec<u8>, Fault> {
        let inner = self.inner.borrow();
        inner
            .mem
            .slice(addr, len as u64)
            .map(|s| s.to_vec())
            .map_err(|e| Fault::PhysOutOfBounds { paddr: e.paddr })
    }

    /// Writes guest memory (hypercall-handler access; bounds-checked).
    pub fn write_guest(&self, addr: u64, data: &[u8]) -> Result<(), Fault> {
        let mut inner = self.inner.borrow_mut();
        inner
            .mem
            .write_bytes(addr, data)
            .map_err(|e| Fault::PhysOutOfBounds { paddr: e.paddr })
    }

    /// Zeroes the guest memory the virtine dirtied and resets the vCPU to
    /// the reset state at `entry` — the shell-cleaning step that
    /// "prevent\[s\] information leakage" (§5.2). Charges memset bandwidth
    /// for the dirty bytes (EPT dirty tracking tells the hypervisor which
    /// pages were touched).
    pub fn clean(&self, entry: u64) {
        let mut inner = self.inner.borrow_mut();
        let dirty = inner.mem.dirty_bytes() as usize;
        inner.kernel.memset(dirty);
        self.clean_uncharged_inner(&mut inner, entry);
    }

    /// Zeroes memory and resets the vCPU *without* charging the wipe to the
    /// shared clock: the asynchronous cleaning mode of §5.2, where shells
    /// are cleaned "in the background … when there are no incoming
    /// requests". The work still happens (isolation is preserved); only the
    /// requester's timeline is spared.
    pub fn clean_async(&self, entry: u64) {
        let mut inner = self.inner.borrow_mut();
        self.clean_uncharged_inner(&mut inner, entry);
    }

    fn clean_uncharged_inner(&self, inner: &mut VmInner, entry: u64) {
        inner.mem.clear();
        let clock = inner.cpu.clock().clone();
        let mut fresh = Cpu::new(clock, CpuConfig::default(), entry);
        std::mem::swap(&mut inner.cpu, &mut fresh);
    }

    /// Captures a snapshot of the VM's dirty state. Charges the memcpy of
    /// the captured bytes (§5.2, §6.2: snapshots run at memcpy bandwidth).
    ///
    /// Also resets the dirty-page log: from this instant the log records
    /// exactly the pages that diverge from the captured snapshot, which is
    /// what [`VmFd::restore_delta`] re-arms.
    pub fn snapshot(&self) -> VmSnapshot {
        let mut inner = self.inner.borrow_mut();
        let (low, high_start, high) = inner.mem.snapshot_sparse();
        inner.kernel.memcpy(low.len() + high.len());
        inner.mem.reset_dirty_pages();
        VmSnapshot {
            cpu: inner.cpu.save_state(),
            low,
            high_start,
            high,
            mem_size: inner.mem.size(),
        }
    }

    /// Restores a snapshot. Charges the memcpy of the snapshot bytes — the
    /// dominant per-invocation cost Figure 12 measures against image size —
    /// plus a wipe of any residual dirty state in the shell.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot's memory size differs from this VM's.
    pub fn restore(&self, snap: &VmSnapshot) {
        let mut inner = self.inner.borrow_mut();
        assert_eq!(
            snap.mem_size,
            inner.mem.size(),
            "snapshot/VM memory size mismatch"
        );
        if !inner.mem.is_clean() {
            let dirty = inner.mem.dirty_bytes() as usize;
            inner.kernel.memset(dirty);
        }
        inner.kernel.memcpy(snap.copied_bytes());
        inner
            .mem
            .restore_sparse(&snap.low, snap.high_start, &snap.high);
        inner.cpu.restore_state(&snap.cpu);
    }

    /// Pages (4 KiB) written since the last snapshot capture or (full or
    /// delta) restore — the simulated `KVM_GET_DIRTY_LOG`.
    pub fn dirty_log(&self) -> Vec<u64> {
        self.inner.borrow().mem.dirty_page_indices()
    }

    /// Delta re-arm (warm-shell fast path): restores only the pages the
    /// dirty log reports, copying their snapshot contents back at memcpy
    /// bandwidth — a handful of pages instead of the full sparse image.
    /// Returns the number of pages copied.
    ///
    /// Correctness relies on the log discipline: [`VmFd::snapshot`],
    /// [`VmFd::restore`], and this method all reset the log at a point
    /// where memory provably equals `snap`, and every subsequent guest or
    /// host write sets its page bit. The re-armed VM is therefore
    /// byte-identical to a full [`VmFd::restore`] (asserted by unit test).
    ///
    /// # Panics
    ///
    /// Panics if the snapshot's memory size differs from this VM's.
    pub fn restore_delta(&self, snap: &VmSnapshot) -> usize {
        let mut inner = self.inner.borrow_mut();
        assert_eq!(
            snap.mem_size,
            inner.mem.size(),
            "snapshot/VM memory size mismatch"
        );
        let pages = inner.mem.dirty_page_indices();
        inner
            .kernel
            .memcpy(pages.len() * visa::mem::PAGE_SIZE as usize);
        inner
            .mem
            .restore_pages_sparse(&pages, &snap.low, snap.high_start, &snap.high);
        inner.cpu.restore_state(&snap.cpu);
        pages.len()
    }
}

/// A virtual-CPU handle.
#[derive(Clone)]
pub struct VcpuFd {
    inner: Rc<RefCell<VmInner>>,
}

impl std::fmt::Debug for VcpuFd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "VcpuFd(pc={:#x})", self.inner.borrow().cpu.pc)
    }
}

impl VcpuFd {
    /// `KVM_RUN`: enters the guest and runs until it exits, faults, or
    /// retires `max_steps` instructions.
    pub fn run(&self, max_steps: u64) -> Result<VmExit, Fault> {
        let mut inner = self.inner.borrow_mut();
        let clock = inner.kernel.clock().clone();
        // User → kernel, KVM dispatch and sanity checks.
        clock.tick(costs::HOST_RING_TRANSITION + inner.flavor.dispatch_cost());
        // World switch in.
        clock.tick(costs::VMENTRY);
        inner.cpu.note_vmentry();

        let VmInner {
            ref mut cpu,
            ref mut mem,
            ..
        } = *inner;
        let result = cpu.run(mem, max_steps);

        // World switch out + kernel → user.
        clock.tick(costs::VMEXIT + costs::HOST_RING_TRANSITION);
        result.map(|exit| match exit {
            CpuExit::Hlt => VmExit::Hlt,
            CpuExit::IoOut { port, value } => VmExit::IoOut { port, value },
            CpuExit::IoIn { port } => VmExit::IoIn { port },
            CpuExit::StepLimit => VmExit::StepLimit,
        })
    }

    /// Supplies the value for a pending `in` after an [`VmExit::IoIn`].
    ///
    /// # Panics
    ///
    /// Panics if no `in` is pending.
    pub fn provide_in(&self, value: u64) {
        self.inner.borrow_mut().cpu.provide_in(value);
    }

    /// Reads a guest register.
    pub fn reg(&self, r: Reg) -> u64 {
        self.inner.borrow().cpu.reg(r)
    }

    /// Writes a guest register.
    pub fn set_reg(&self, r: Reg, v: u64) {
        self.inner.borrow_mut().cpu.set_reg(r, v);
    }

    /// Drains the milestone marks recorded by the guest's `mark`
    /// instructions (experiment instrumentation).
    pub fn take_marks(&self) -> Vec<(u8, vclock::Cycles)> {
        std::mem::take(&mut self.inner.borrow_mut().cpu.marks)
    }

    /// Instructions retired by this vCPU.
    pub fn insts_retired(&self) -> u64 {
        self.inner.borrow().cpu.insts_retired()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vclock::Clock;

    fn setup() -> (Clock, HostKernel, Hypervisor) {
        let clock = Clock::new();
        let kernel = HostKernel::new(clock.clone(), None);
        let hv = Hypervisor::kvm(kernel.clone());
        (clock, kernel, hv)
    }

    fn hlt_image() -> Image {
        visa::assemble(".org 0x8000\n hlt\n").unwrap()
    }

    #[test]
    fn create_vm_and_halt_matches_figure_2_kvm_bar() {
        let (clock, _, hv) = setup();
        let t0 = clock.now();
        let vm = hv.create_vm(64 * 1024, 0x8000);
        vm.load_image(&hlt_image());
        let exit = vm.vcpu().run(100).unwrap();
        assert_eq!(exit, VmExit::Hlt);
        let total = (clock.now() - t0).get();
        // Figure 2's "KVM" bar: a few hundred thousand cycles.
        assert!(
            (150_000..600_000).contains(&total),
            "KVM create+hlt = {total} cycles"
        );
    }

    #[test]
    fn bare_kvm_run_is_a_few_thousand_cycles() {
        let (clock, _, hv) = setup();
        let vm = hv.create_vm(64 * 1024, 0x8000);
        vm.load_image(&visa::assemble(".org 0x8000\n hlt\n hlt\n").unwrap());
        let vcpu = vm.vcpu();
        vcpu.run(100).unwrap();
        // Second KVM_RUN measures the reusable floor (the "vmrun" bar).
        let t0 = clock.now();
        vcpu.run(100).unwrap();
        let total = (clock.now() - t0).get();
        assert!(
            (2_000..8_000).contains(&total),
            "vmrun floor = {total} cycles"
        );
    }

    #[test]
    fn hyperv_flavor_is_similar_but_not_identical() {
        let clock_k = Clock::new();
        let hv_k = Hypervisor::kvm(HostKernel::new(clock_k.clone(), None));
        let clock_h = Clock::new();
        let hv_h = Hypervisor::hyperv(HostKernel::new(clock_h.clone(), None));

        for (clock, hv) in [(&clock_k, &hv_k), (&clock_h, &hv_h)] {
            let vm = hv.create_vm(64 * 1024, 0x8000);
            vm.load_image(&hlt_image());
            vm.vcpu().run(100).unwrap();
            assert!(clock.now().get() > 0);
        }
        let k = clock_k.now().get() as f64;
        let h = clock_h.now().get() as f64;
        assert!(h > k, "Hyper-V should be slightly slower");
        assert!(h / k < 1.05, "but similar (k={k}, h={h})");
    }

    #[test]
    fn io_out_reaches_userspace_with_port_and_value() {
        let (_, _, hv) = setup();
        let vm = hv.create_vm(64 * 1024, 0x8000);
        vm.load_image(&visa::assemble(".org 0x8000\n mov r1, 7\n out 0xF1, r1\n hlt\n").unwrap());
        let vcpu = vm.vcpu();
        assert_eq!(
            vcpu.run(100).unwrap(),
            VmExit::IoOut {
                port: 0xF1,
                value: 7
            }
        );
        assert_eq!(vcpu.run(100).unwrap(), VmExit::Hlt);
    }

    #[test]
    fn io_in_blocks_until_answered() {
        let (_, _, hv) = setup();
        let vm = hv.create_vm(64 * 1024, 0x8000);
        vm.load_image(&visa::assemble(".org 0x8000\n in r2, 0x30\n hlt\n").unwrap());
        let vcpu = vm.vcpu();
        assert_eq!(vcpu.run(100).unwrap(), VmExit::IoIn { port: 0x30 });
        vcpu.provide_in(555);
        assert_eq!(vcpu.run(100).unwrap(), VmExit::Hlt);
        assert_eq!(vcpu.reg(Reg(2)), 555);
    }

    #[test]
    fn guest_faults_surface_to_the_client() {
        let (_, _, hv) = setup();
        let vm = hv.create_vm(4096, 0x0);
        vm.load_image(&visa::assemble(".org 0\n mov r0, 1\n mov r1, 0\n div r0, r1\n").unwrap());
        let err = vm.vcpu().run(100).unwrap_err();
        assert!(matches!(err, Fault::DivideByZero { .. }));
    }

    #[test]
    fn guest_memory_accessors_are_bounds_checked() {
        let (_, _, hv) = setup();
        let vm = hv.create_vm(4096, 0);
        vm.write_guest(0, b"abc").unwrap();
        assert_eq!(vm.read_guest(0, 3).unwrap(), b"abc");
        assert!(vm.read_guest(4095, 2).is_err());
        assert!(vm.write_guest(4096, b"x").is_err());
    }

    #[test]
    fn clean_wipes_memory_and_resets_cpu() {
        let (clock, _, hv) = setup();
        let vm = hv.create_vm(64 * 1024, 0x8000);
        vm.load_image(&hlt_image());
        vm.vcpu().run(100).unwrap();
        let t0 = clock.now();
        vm.clean(0x8000);
        let sync_cost = (clock.now() - t0).get();
        assert!(sync_cost > 0, "synchronous clean must charge the wipe");
        assert!(vm.read_guest(0x8000, 1).unwrap()[0] == 0);

        // Async clean wipes too, but charges nothing.
        vm.load_image(&hlt_image());
        let t0 = clock.now();
        vm.clean_async(0x8000);
        // Loading charges, cleaning doesn't; compare to pre-clean time.
        assert_eq!((clock.now() - t0).get(), 0);
        assert!(vm.read_guest(0x8000, 1).unwrap()[0] == 0);
    }

    #[test]
    fn snapshot_restore_round_trips_and_charges_bandwidth() {
        let (clock, _, hv) = setup();
        let vm = hv.create_vm(1 << 20, 0x8000);
        vm.load_image(
            &visa::assemble(".org 0x8000\n mov r3, 1234\n out 1, r3\n mov r3, 0\n hlt\n").unwrap(),
        );
        let vcpu = vm.vcpu();
        // Run to the out (our "snapshot point").
        assert!(matches!(vcpu.run(100).unwrap(), VmExit::IoOut { .. }));
        let snap = vm.snapshot();
        assert_eq!(snap.mem_size(), 1 << 20);
        // Only the dirty image region is captured, not the whole 1 MiB.
        assert!(
            snap.copied_bytes() < 64 * 1024,
            "snapshot captured {} bytes",
            snap.copied_bytes()
        );

        // Continue: r3 gets clobbered.
        assert_eq!(vcpu.run(100).unwrap(), VmExit::Hlt);
        assert_eq!(vcpu.reg(Reg(3)), 0);

        // Restore: r3 is 1234 again and execution resumes past the out.
        let t0 = clock.now();
        vm.restore(&snap);
        let restore_cost = (clock.now() - t0).get();
        let full_copy = costs::memcpy_cycles(1 << 20);
        let sparse_copy = costs::memcpy_cycles(snap.copied_bytes());
        assert!(
            restore_cost >= sparse_copy && restore_cost < full_copy / 4,
            "restore cost {restore_cost} (sparse {sparse_copy}, full {full_copy})"
        );
        assert_eq!(vcpu.reg(Reg(3)), 1234);
        assert_eq!(vcpu.run(100).unwrap(), VmExit::Hlt);
    }

    #[test]
    fn dirty_log_tracks_exactly_the_written_pages() {
        let (_, _, hv) = setup();
        let vm = hv.create_vm(64 * 4096, 0x8000);
        vm.load_image(&hlt_image());
        vm.vcpu().run(100).unwrap();
        let _snap = vm.snapshot(); // Resets the log.
        assert!(vm.dirty_log().is_empty());
        vm.write_guest(3 * 4096 + 17, &[1, 2, 3]).unwrap();
        vm.write_guest(40 * 4096, &[9]).unwrap();
        assert_eq!(vm.dirty_log(), vec![3, 40]);
    }

    #[test]
    fn delta_rearm_copies_exactly_the_dirty_set_and_matches_full_restore() {
        // Two identical VMs run the same program past a snapshot point and
        // dirty the same pages; one is re-armed with the page delta, the
        // other pays the full sparse restore. Guest memory, registers, and
        // the outcome of a subsequent run must be byte-identical.
        let mk = || {
            let (_, _, hv) = setup();
            let vm = hv.create_vm(1 << 20, 0x8000);
            // Init writes a marker, snapshots (port out), then clobbers the
            // marker, dirties a far page, and halts with r3 clobbered.
            vm.load_image(
                &visa::assemble(
                    "
.org 0x8000
  mov r3, 1234
  mov r1, 0x6000
  store.q [r1], r3
  out 1, r3
  mov r3, 0
  store.q [r1], r3
  mov r1, 0x9F000
  store.q [r1], r3
  hlt
",
                )
                .unwrap(),
            );
            let vcpu = vm.vcpu();
            assert!(matches!(vcpu.run(100).unwrap(), VmExit::IoOut { .. }));
            let snap = vm.snapshot();
            assert_eq!(vcpu.run(100).unwrap(), VmExit::Hlt);
            (vm, snap)
        };

        let (delta_vm, snap_a) = mk();
        let (full_vm, snap_b) = mk();
        // The post-snapshot code touched pages 6 (marker) and 0x9F (far
        // store) and nothing else.
        assert_eq!(delta_vm.dirty_log(), vec![0x6, 0x9F]);
        let copied = delta_vm.restore_delta(&snap_a);
        assert_eq!(copied, 2, "delta must copy exactly the dirtied pages");
        full_vm.restore(&snap_b);

        let size = 1 << 20;
        assert_eq!(
            delta_vm.read_guest(0, size).unwrap(),
            full_vm.read_guest(0, size).unwrap(),
            "delta re-arm must be byte-identical to a full restore"
        );
        // Both resume from the snapshot point and converge on the same
        // halt state.
        for vm in [&delta_vm, &full_vm] {
            let vcpu = vm.vcpu();
            assert_eq!(vcpu.reg(Reg(3)), 1234);
            assert_eq!(vcpu.run(100).unwrap(), VmExit::Hlt);
            assert_eq!(vcpu.reg(Reg(3)), 0);
        }
        assert_eq!(
            delta_vm.read_guest(0, size).unwrap(),
            full_vm.read_guest(0, size).unwrap()
        );
    }

    #[test]
    fn delta_rearm_is_far_cheaper_than_full_restore() {
        let (clock, _, hv) = setup();
        let vm = hv.create_vm(1 << 20, 0x8000);
        // A fat init footprint: 128 KiB of low memory dirtied before the
        // snapshot point, then one page dirtied after it.
        vm.load_image(&hlt_image());
        vm.write_guest(0, &vec![7u8; 128 * 1024]).unwrap();
        let snap = vm.snapshot();
        vm.write_guest(4096, &[1]).unwrap();

        let (_, delta_cost) = clock.time(|| vm.restore_delta(&snap));
        // Dirty it again the same way for the full-restore comparison.
        vm.write_guest(4096, &[1]).unwrap();
        let (_, full_cost) = clock.time(|| vm.restore(&snap));
        assert!(
            delta_cost.get() * 10 < full_cost.get(),
            "delta {delta_cost} vs full {full_cost}"
        );
    }

    #[test]
    fn step_limit_watchdog_fires() {
        let (_, _, hv) = setup();
        let vm = hv.create_vm(4096, 0);
        vm.load_image(&visa::assemble(".org 0\nspin: jmp spin\n").unwrap());
        assert_eq!(vm.vcpu().run(1000).unwrap(), VmExit::StepLimit);
    }
}
