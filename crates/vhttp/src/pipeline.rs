//! The §6.3 server as a two-stage virtine *pipeline*: parser virtine →
//! handler virtine over a cross-virtine channel.
//!
//! The FaaS chaining pattern that motivates snapshot-based platforms
//! (Catalyzer, SEUSS): instead of one monolithic connection handler, the
//! request path splits into composable stages, each its own virtine with
//! its own — strictly narrower — hypercall mask:
//!
//! * the **parser** may only `recv` from the connection and `chan_send`
//!   downstream: it can read client bytes but cannot touch the
//!   filesystem or write a response;
//! * the **handler** may only `chan_recv` upstream and do the
//!   stat/open/read/write file dance: it never sees raw client bytes,
//!   only the parsed path the channel delivers.
//!
//! A compromised parser cannot exfiltrate files; a compromised handler
//! cannot read request bytes beyond what the parser forwarded. The
//! channel is the *only* bridge, every hop host-mediated and mask-gated —
//! the §5.1 default-deny posture extended from one virtine to a pipeline.
//!
//! Scheduling-wise the handler parks in `chan_recv` until the parser's
//! send wakes it — across shards when placement put the stages apart —
//! and the wake re-admits it through placement (resume-time migration),
//! so a busy parser shard never strands a runnable handler.

use hostsim::HostKernel;
use kvmsim::Hypervisor;
use vcc::{compile_raw, CompileOptions, CompiledVirtine};
use vclock::Clock;
use vsched::{Dispatcher, DispatcherConfig, Request, TenantId, TenantProfile};
use wasp::{HypercallMask, Invocation, VirtineSpec, Wasp, WaspConfig};

use crate::response_status;

/// Stage 1: reads the request off the connection (blocking `vrecv` to the
/// header terminator, parking between a slow client's chunks), extracts
/// the path, and forwards it downstream over channel handle 0.
pub const PARSER_C: &str = r#"
int parse_stage() {
    vsnapshot();
    char req[2048];
    int n = 0;
    int done = 0;
    while (done == 0) {
        int got = vrecv(req + n, 2048 - n);
        if (got <= 0) { vexit(1); }
        n = n + got;
        if (n >= 4) {
            if (req[n - 4] == '\r' && req[n - 3] == '\n'
                && req[n - 2] == '\r' && req[n - 1] == '\n') {
                done = 1;
            }
        }
        if (n >= 2040) { done = 1; }
    }

    /* Extract "<path>" from "GET <path> HTTP/1.0". */
    char path[256];
    int i = 0;
    int j = 0;
    while (i < n && req[i] != ' ') { i = i + 1; }
    i = i + 1;
    while (i < n && req[i] != ' ' && j < 255) {
        path[j] = req[i];
        i = i + 1;
        j = j + 1;
    }
    path[j] = 0;

    if (vchan_send(0, path, j) != j) { vexit(2); }
    vchan_close(0);
    vexit(0);
    return 0;
}
"#;

/// Stage 2: receives the parsed path over channel handle 0 (parking until
/// the parser delivers), serves the file, and writes the response to the
/// connection. It never reads client bytes.
pub const HANDLER_C: &str = r#"
int handle_stage() {
    vsnapshot();
    char path[256];
    int n = vchan_recv(0, path, 255);
    if (n <= 0) { vexit(1); }
    path[n] = 0;

    int size = 0;
    if (vstat(path, &size) != 0) {
        char* nf = "HTTP/1.0 404 Not Found\r\nContent-Length: 0\r\n\r\n";
        vwrite(1, nf, strlen(nf));
        vexit(2);
    }
    int fd = vopen(path);
    if (fd < 0) { vexit(3); }

    char* resp = malloc(size + 256);
    if (resp == 0) { vexit(4); }
    char* hdr = "HTTP/1.0 200 OK\r\nContent-Length: ";
    strcpy(resp, hdr);
    int hl = strlen(hdr);
    hl = hl + itoa(size, resp + hl);
    resp[hl] = '\r';
    resp[hl + 1] = '\n';
    resp[hl + 2] = '\r';
    resp[hl + 3] = '\n';
    hl = hl + 4;

    int got = vread(fd, resp + hl, size);
    if (got != size) { vexit(5); }
    vwrite(1, resp, hl + size);
    vclose(fd);
    vexit(0);
    return 0;
}
"#;

/// Compiles the parser stage.
pub fn compile_parser() -> CompiledVirtine {
    let opts = CompileOptions {
        mem_size: 512 * 1024,
        image_budget: 96 * 1024,
    };
    compile_raw(PARSER_C, "parse_stage", &opts).expect("parser must compile")
}

/// Compiles the handler stage.
pub fn compile_handler_stage() -> CompiledVirtine {
    let opts = CompileOptions {
        mem_size: 512 * 1024,
        image_budget: 96 * 1024,
    };
    compile_raw(HANDLER_C, "handle_stage", &opts).expect("handler must compile")
}

/// The parser's mask: connection reads and the downstream channel,
/// nothing else — no filesystem, no response writes.
pub fn parser_policy() -> HypercallMask {
    HypercallMask::allowing(&[wasp::nr::RECV, wasp::nr::CHAN_SEND, wasp::nr::CHAN_CLOSE])
}

/// The handler's mask: the upstream channel and the file/response dance —
/// no connection reads.
pub fn handler_stage_policy() -> HypercallMask {
    HypercallMask::allowing(&[
        wasp::nr::CHAN_RECV,
        wasp::nr::STAT,
        wasp::nr::OPEN,
        wasp::nr::READ,
        wasp::nr::WRITE,
        wasp::nr::CLOSE,
    ])
}

/// Outcome of a pipeline server run.
#[derive(Debug)]
pub struct PipelineRun {
    /// Requests that produced a verified 200 end to end.
    pub served: u64,
    /// Per-request end-to-end latencies (virtual seconds), client send →
    /// handler finish.
    pub latencies: Vec<f64>,
    /// Final dispatcher statistics (blocked/resumed/migrations cover the
    /// cross-virtine hops).
    pub stats: vsched::DispatcherStats,
}

struct PendingPipeline {
    client: hostsim::SockId,
    server: hostsim::SockId,
    arrival_s: f64,
}

/// A static-content server whose request path is a parser→handler virtine
/// pipeline per connection, scheduled by `vsched`.
pub struct PipelineServer {
    kernel: HostKernel,
    dispatcher: Dispatcher,
    parser: wasp::VirtineId,
    handler: wasp::VirtineId,
    tenant: TenantId,
    pending: Vec<PendingPipeline>,
    file_size: usize,
    request_line: Vec<u8>,
    /// Byte bound on each per-request channel.
    chan_capacity: usize,
}

const PORT: u16 = 80;
const FILE_PATH: &str = "/www/index.html";

impl PipelineServer {
    /// Builds a pipeline server over `shards` dispatcher shards serving a
    /// `file_size`-byte static file.
    pub fn new(shards: usize, file_size: usize) -> PipelineServer {
        let clock = Clock::new();
        let kernel = HostKernel::new(clock, None);
        let body: Vec<u8> = (0..file_size).map(|i| b'a' + (i % 23) as u8).collect();
        kernel.fs_add_file(FILE_PATH, body);
        kernel.net_listen(PORT).expect("listen");

        let wasp = Wasp::new(Hypervisor::kvm(kernel.clone()), WaspConfig::default());
        let mut dispatcher = Dispatcher::new(
            wasp,
            DispatcherConfig {
                shards,
                ..DispatcherConfig::default()
            },
        );
        let parser_v = compile_parser();
        let handler_v = compile_handler_stage();
        let parser = dispatcher
            .register(
                VirtineSpec::new("parse", parser_v.image.clone(), parser_v.mem_size)
                    .with_policy(parser_policy())
                    .with_snapshot(true),
            )
            .expect("register parser");
        let handler = dispatcher
            .register(
                VirtineSpec::new("handle", handler_v.image.clone(), handler_v.mem_size)
                    .with_policy(handler_stage_policy())
                    .with_snapshot(true),
            )
            .expect("register handler");
        let tenant = dispatcher
            .add_tenant(TenantProfile::new("pipeline").with_mask(HypercallMask::ALLOW_ALL));
        PipelineServer {
            kernel,
            dispatcher,
            parser,
            handler,
            tenant,
            pending: Vec::new(),
            file_size,
            request_line: format!("GET {FILE_PATH} HTTP/1.0\r\n\r\n").into_bytes(),
            chan_capacity: 512,
        }
    }

    /// The dispatcher underneath.
    pub fn dispatcher(&self) -> &Dispatcher {
        &self.dispatcher
    }

    /// Opens a connection at `arrival_s`, sends the canned GET, wires a
    /// fresh channel between a parser and a handler invocation, and
    /// submits both stages. The handler's first `chan_recv` finds the
    /// channel empty and parks — the cross-virtine block — until the
    /// parser's send wakes it, possibly on a different shard.
    pub fn offer(&mut self, arrival_s: f64) {
        let client = self.kernel.net_connect(PORT).expect("connect");
        let server = self
            .kernel
            .net_accept(PORT)
            .expect("accept")
            .expect("pending connection");
        self.kernel
            .net_send(client, &self.request_line)
            .expect("send");

        let chan = self.kernel.chan_open(self.chan_capacity);
        self.dispatcher
            .submit(
                Request::new(self.tenant, self.parser, arrival_s)
                    .with_invocation(Invocation::with_conn(server).with_chans(vec![chan])),
            )
            .expect("parser admitted");
        self.dispatcher
            .submit(
                Request::new(self.tenant, self.handler, arrival_s)
                    .with_invocation(Invocation::with_conn(server).with_chans(vec![chan])),
            )
            .expect("handler admitted");
        self.pending.push(PendingPipeline {
            client,
            server,
            arrival_s,
        });
    }

    /// Advances the server to virtual time `t_s`.
    pub fn run_until(&mut self, t_s: f64) {
        self.dispatcher.run_until(t_s);
    }

    /// Drains the pipeline, reads every response, and verifies each
    /// request produced a correct 200 through both stages.
    pub fn finish(mut self) -> PipelineRun {
        self.dispatcher.run_to_idle();
        let completions = self.dispatcher.take_completions();
        assert_eq!(
            completions.len(),
            2 * self.pending.len(),
            "every stage of every pipeline must complete"
        );
        for c in &completions {
            assert!(c.exit_normal, "stage failed on shard {}", c.shard);
        }

        // Pair each pipeline with its handler completion by the offer's
        // arrival instant (one handler completes per offer; arrivals are
        // the submission stamps both stages share).
        let mut handler_done: Vec<&vsched::Completion> = completions
            .iter()
            .filter(|c| c.virtine == self.handler)
            .collect();
        let mut latencies = Vec::with_capacity(self.pending.len());
        for p in &self.pending {
            let resp = self
                .kernel
                .net_recv(p.client, self.file_size + 512)
                .expect("recv")
                .expect("response");
            assert_eq!(response_status(&resp), Some(200), "pipeline failed");
            let i = handler_done
                .iter()
                .position(|c| (c.arrival - p.arrival_s).abs() < 1e-9)
                .expect("one handler completion per pipeline");
            let done = handler_done.swap_remove(i);
            latencies.push(done.finish - done.arrival);
            self.kernel.net_close(p.client).ok();
            self.kernel.net_close(p.server).ok();
        }
        PipelineRun {
            served: self.pending.len() as u64,
            latencies,
            stats: self.dispatcher.stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_stage_pipeline_serves_correct_responses() {
        let mut s = PipelineServer::new(2, 512);
        for i in 0..4 {
            s.offer(i as f64 * 0.001);
        }
        let run = s.finish();
        assert_eq!(run.served, 4);
        // Handlers that outran their parser parked on the empty channel
        // and were resumed by the parser's send (a handler scheduled
        // after its parser finds the path already queued — both orders
        // are legal; the cross-virtine wake path must fire for the rest).
        assert!(
            run.stats.blocked >= 1,
            "handlers must park: {:?}",
            run.stats
        );
        assert_eq!(run.stats.resumed, run.stats.blocked, "every park resumed");
        assert_eq!(run.stats.busy_wait_cycles, 0, "event-driven end to end");
        assert!(run.latencies.iter().all(|&l| l > 0.0));
    }

    #[test]
    fn pipeline_masks_stay_least_privilege() {
        // The parser can recv and chan_send but not open files; the
        // handler can chan_recv and serve files but not read the socket.
        let p = parser_policy();
        assert!(p.allows(wasp::nr::RECV) && p.allows(wasp::nr::CHAN_SEND));
        assert!(!p.allows(wasp::nr::OPEN) && !p.allows(wasp::nr::WRITE));
        let h = handler_stage_policy();
        assert!(h.allows(wasp::nr::CHAN_RECV) && h.allows(wasp::nr::OPEN));
        assert!(!h.allows(wasp::nr::RECV) && !h.allows(wasp::nr::CHAN_SEND));
    }
}
