//! The §6.3 server at platform scale: concurrent connections through the
//! `vsched` dispatcher.
//!
//! `server::run_server` drives one connection at a time, exactly as the
//! paper's single-threaded server does. A serving platform instead accepts
//! many connections and lets a dispatcher place each connection-handler
//! virtine on a shard: admission control sheds abusive clients at the
//! door (token bucket / in-flight caps), shard pools keep the §5.2 reuse
//! path contention-free, and stealing keeps shards busy under skew.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use hostsim::HostKernel;
use kvmsim::Hypervisor;
use vclock::stats::Histogram;
use vclock::Clock;
use vsched::{
    BlockMode, Dispatcher, DispatcherConfig, Request, ShedReason, TenantId, TenantProfile, Topology,
};
use wasp::{Invocation, VirtineSpec, Wasp, WaspConfig};

use crate::response_status;
use crate::server::{compile_handler, handler_policy};

/// A tenant profile pre-authorized for the §6.3 handler's seven host
/// interactions (and nothing else).
pub fn http_tenant(name: impl Into<String>) -> TenantProfile {
    TenantProfile::new(name).with_mask(handler_policy())
}

/// Renders a dispatcher's statistics in the Prometheus text exposition
/// format: dispatcher counters (including the warm-hit/demotion counters
/// of the snapshot-aware fast path), aggregated pool counters, per-shard
/// gauges, and per-tenant counters labelled by tenant name.
pub fn prometheus_text(d: &Dispatcher) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let mut metric = |name: &str, kind: &str, help: &str, series: &[(String, u64)]| {
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} {kind}");
        for (labels, value) in series {
            let _ = writeln!(out, "{name}{labels} {value}");
        }
    };
    let plain = |v: u64| vec![(String::new(), v)];

    let s = d.stats();
    metric(
        "vsched_requests_total",
        "counter",
        "Requests by outcome: submitted (offered at the door), admitted \
         (passed admission and enqueued), served (ran to completion), \
         shed_rate_limit (tenant token bucket empty), shed_in_flight \
         (tenant max_in_flight reached), shed_deadline (deadline passed \
         while queued), shed_deadline_unmeetable (estimated wait already \
         past the deadline at submit), shed_byte_budget (tenant sustained \
         byte rate exceeded), shed_evicted (hard-stopped by shard \
         lifecycle: drain grace period expired or the shard failed), \
         shed_brownout (refused at the door by the overload brownout \
         controller's degradation ladder)",
        &[
            ("{outcome=\"submitted\"}".into(), s.submitted),
            ("{outcome=\"admitted\"}".into(), s.admitted),
            ("{outcome=\"served\"}".into(), s.served),
            ("{outcome=\"shed_rate_limit\"}".into(), s.shed_rate_limit),
            ("{outcome=\"shed_in_flight\"}".into(), s.shed_in_flight),
            ("{outcome=\"shed_deadline\"}".into(), s.shed_deadline),
            (
                "{outcome=\"shed_deadline_unmeetable\"}".into(),
                s.shed_deadline_unmeetable,
            ),
            ("{outcome=\"shed_byte_budget\"}".into(), s.shed_byte_budget),
            ("{outcome=\"shed_evicted\"}".into(), s.shed_evicted),
            ("{outcome=\"shed_brownout\"}".into(), s.shed_brownout),
        ],
    );
    metric(
        "vsched_retries_total",
        "counter",
        "Exactly-once re-submissions of work lost to a shard failure, by \
         the copy that was lost: shard_failed_queued (a queued copy with \
         no surviving shard to evacuate to), shard_failed_parked (a \
         suspended run that died with its shard)",
        &[
            ("{cause=\"shard_failed_queued\"}".into(), s.retries_queued),
            ("{cause=\"shard_failed_parked\"}".into(), s.retries_parked),
        ],
    );
    metric(
        "vsched_retried_in_flight",
        "gauge",
        "Requests currently waiting out a retry backoff (admitted, not \
         yet re-enqueued; the bridge term in the conservation identity)",
        &plain(s.retried_in_flight),
    );
    metric(
        "vsched_hedges_total",
        "counter",
        "Tail-latency hedging events: armed (a hedge delay was scheduled \
         at admission), fired (the delay elapsed and a duplicate copy \
         was enqueued), won (a hedge copy finished first), canceled (a \
         loser copy was suppressed after the race was decided)",
        &[
            ("{outcome=\"armed\"}".into(), s.hedges_armed),
            ("{outcome=\"fired\"}".into(), s.hedges_fired),
            ("{outcome=\"won\"}".into(), s.hedges_won),
            ("{outcome=\"canceled\"}".into(), s.hedges_canceled),
        ],
    );
    metric(
        "vsched_evictions_total",
        "counter",
        "Parked runs hard-stopped by shard lifecycle, by cause: \
         grace_expired (unmigratable run outlived its tenant drain grace \
         on a draining shard), shard_failed (the run's shard failed and \
         its suspended context died with it)",
        &[
            ("{reason=\"grace_expired\"}".into(), s.evicted_grace),
            ("{reason=\"shard_failed\"}".into(), s.evicted_failed),
        ],
    );
    metric(
        "vsched_warm_hits_total",
        "counter",
        "Requests served by a warm-shell delta re-arm",
        &plain(s.warm_hits),
    );
    metric(
        "vsched_warm_demotions_total",
        "counter",
        "Warm shells demoted (wiped) on the acquire path",
        &plain(s.warm_demotions),
    );
    metric(
        "vsched_steals_total",
        "counter",
        "Shells stolen between shards",
        &plain(s.stolen),
    );
    metric(
        "vsched_steal_transfers_total",
        "counter",
        "Shells stolen between shards, by topology distance class",
        &[
            ("{distance=\"same_ccx\"}".into(), s.stolen_same_ccx),
            ("{distance=\"cross_ccx\"}".into(), s.stolen_cross_ccx),
            ("{distance=\"cross_socket\"}".into(), s.stolen_cross_socket),
        ],
    );
    let guest = visa::pred::counters();
    metric(
        "visa_insts_retired_total",
        "counter",
        "Guest instructions retired process-wide, by interpreter engine: \
         fast (the predecoded basic-block engine, the default), ref (the \
         reference single-step oracle, selected by VISA_REF_INTERP=1)",
        &[
            ("{engine=\"fast\"}".into(), guest.retired_fast),
            ("{engine=\"ref\"}".into(), guest.retired_ref),
        ],
    );
    metric(
        "visa_predecode_blocks",
        "counter",
        "Predecoded basic blocks, by event: built (decoded, fused, and \
         cached), invalidated (dropped for stale bytes after a write to a \
         cached page, a self-modifying store, a snapshot restore, or a \
         cache flush)",
        &[
            ("{event=\"built\"}".into(), guest.blocks_built),
            ("{event=\"invalidated\"}".into(), guest.blocks_invalidated),
        ],
    );
    metric(
        "visa_superinsts_fused_total",
        "counter",
        "Superinstructions fused at predecode time (cmp+jcc, \
         mov-ri+alu-rr, and push-pair prologue patterns)",
        &plain(guest.superinsts_fused),
    );
    let topo = d.topology();
    metric(
        "vsched_topology",
        "gauge",
        "Shard topology dimensions (sockets, CCXs, shards)",
        &[
            ("{level=\"sockets\"}".into(), topo.sockets() as u64),
            ("{level=\"ccxs\"}".into(), topo.ccxs() as u64),
            ("{level=\"shards\"}".into(), topo.shards() as u64),
        ],
    );
    metric(
        "vsched_warm_resident",
        "gauge",
        "Warm shells resident across all shard pools",
        &plain(d.warm_resident() as u64),
    );
    metric(
        "vsched_batches_total",
        "counter",
        "Shard batch ticks executed",
        &plain(s.batches),
    );
    metric(
        "vsched_blocked_total",
        "counter",
        "Runs suspended at a blocking recv",
        &plain(s.blocked),
    );
    metric(
        "vsched_blocked_cycles_total",
        "counter",
        "Virtual cycles completed runs spent parked at a blocking recv \
         (the Breakdown.blocked share of served work)",
        &plain(s.blocked_cycles),
    );
    metric(
        "vsched_resumed_total",
        "counter",
        "Parked runs re-queued by a socket wake",
        &plain(s.resumed),
    );
    metric(
        "vsched_blocked_timeout_total",
        "counter",
        "Parked runs killed at their tenant max_block bound",
        &plain(s.blocked_timeout),
    );
    metric(
        "vsched_migrations_total",
        "counter",
        "Woken parked runs re-admitted on a different shard (resume-time migration)",
        &plain(s.migrations),
    );
    metric(
        "vsched_busy_wait_cycles_total",
        "counter",
        "Worker cycles burned waiting on blocked I/O (zero when event-driven)",
        &plain(s.busy_wait_cycles),
    );
    metric(
        "vsched_parked",
        "gauge",
        "Blocked runs currently parked across all shards",
        &plain(d.parked() as u64),
    );

    let p = d.pool_stats();
    metric(
        "wasp_pool_shells_total",
        "counter",
        "Shell lifecycle events across all shard pools",
        &[
            ("{event=\"created\"}".into(), p.created),
            ("{event=\"reused\"}".into(), p.reused),
            ("{event=\"released\"}".into(), p.released),
            ("{event=\"warm_acquired\"}".into(), p.warm_acquired),
            ("{event=\"warm_parked\"}".into(), p.warm_parked),
            ("{event=\"warm_demoted\"}".into(), p.warm_demoted),
            ("{event=\"dropped\"}".into(), p.dropped),
        ],
    );

    let snaps = d.shard_snapshots();
    let per_shard = |f: &dyn Fn(&vsched::ShardSnapshot) -> u64| -> Vec<(String, u64)> {
        snaps
            .iter()
            .enumerate()
            .map(|(i, s)| (format!("{{shard=\"{i}\"}}"), f(s)))
            .collect()
    };
    metric(
        "vsched_shard_state",
        "gauge",
        "Lifecycle state per shard: 0 = active, 1 = draining, \
         2 = drained, 3 = failed",
        &per_shard(&|s| s.state.gauge()),
    );
    metric(
        "vsched_shard_queue_depth",
        "gauge",
        "Requests waiting per shard",
        &per_shard(&|s| s.queue_depth as u64),
    );
    metric(
        "vsched_shard_idle_shells",
        "gauge",
        "Clean shells parked per shard",
        &per_shard(&|s| s.idle_shells as u64),
    );
    metric(
        "vsched_shard_warm_shells",
        "gauge",
        "Warm shells parked per shard",
        &per_shard(&|s| s.warm_shells as u64),
    );
    metric(
        "vsched_shard_served_total",
        "counter",
        "Requests served per shard",
        &per_shard(&|s| s.stats.served),
    );
    metric(
        "vsched_shard_warm_hits_total",
        "counter",
        "Warm hits per shard",
        &per_shard(&|s| s.stats.warm_hits),
    );
    metric(
        "vsched_shard_parked",
        "gauge",
        "Blocked runs parked per shard",
        &per_shard(&|s| s.parked as u64),
    );
    metric(
        "vsched_shard_migrated_in_total",
        "counter",
        "Woken runs this shard received via resume-time migration",
        &per_shard(&|s| s.stats.migrated_in),
    );
    metric(
        "vsched_shard_migrated_out_total",
        "counter",
        "Woken runs that left this shard via resume-time migration",
        &per_shard(&|s| s.stats.migrated_out),
    );
    metric(
        "vsched_shard_busy_wait_cycles_total",
        "counter",
        "Worker cycles burned on blocked waits per shard",
        &per_shard(&|s| s.stats.busy_wait_cycles),
    );

    // Tenant names are operator-supplied free text; escape them per the
    // exposition format (backslash, quote, newline) so one odd name cannot
    // make the whole scrape unparseable.
    let escape = |name: &str| {
        name.replace('\\', "\\\\")
            .replace('"', "\\\"")
            .replace('\n', "\\n")
    };
    let tenants: Vec<(String, vsched::TenantStats)> = d
        .tenant_ids()
        .into_iter()
        .map(|id| (escape(d.tenant_name(id)), d.tenant_stats(id)))
        .collect();
    let per_tenant = |f: &dyn Fn(&vsched::TenantStats) -> u64| -> Vec<(String, u64)> {
        tenants
            .iter()
            .map(|(name, t)| (format!("{{tenant=\"{name}\"}}"), f(t)))
            .collect()
    };
    metric(
        "vsched_tenant_served_total",
        "counter",
        "Requests served per tenant",
        &per_tenant(&|t| t.served),
    );
    metric(
        "vsched_tenant_shed_total",
        "counter",
        "Requests shed per tenant",
        &per_tenant(&|t| t.shed()),
    );
    metric(
        "vsched_tenant_warm_serves_total",
        "counter",
        "Warm-hit serves per tenant",
        &per_tenant(&|t| t.warm_serves),
    );
    metric(
        "vsched_tenant_in_flight",
        "gauge",
        "Requests queued or running per tenant",
        &per_tenant(&|t| t.in_flight),
    );

    histogram_family(
        &mut out,
        "vsched_queue_wait_cycles",
        "Virtual cycles from admission to first execution, across all served requests",
        &[(String::new(), d.queue_wait_hist())],
    );
    histogram_family(
        &mut out,
        "vsched_exec_cycles",
        "Virtual cycles of virtine execution (guest segments, excluding parked waits)",
        &[(String::new(), d.exec_hist())],
    );
    let e2e_series: Vec<(String, &Histogram)> = d
        .tenant_ids()
        .into_iter()
        .map(|id| {
            (
                format!("tenant=\"{}\",", escape(d.tenant_name(id))),
                d.tenant_e2e_hist(id),
            )
        })
        .collect();
    histogram_family(
        &mut out,
        "vsched_e2e_cycles",
        "End-to-end virtual cycles from arrival to completion, per tenant",
        &e2e_series,
    );

    if let Some(slo) = d.slo() {
        let reports = slo.report();
        gauge_family_f64(
            &mut out,
            "vslo_error_budget_remaining",
            "Fraction of the slow-window error budget unspent (1 - slow burn; negative when overspent)",
            &reports
                .iter()
                .map(|r| {
                    (
                        format!("{{slo=\"{}\"}}", escape(&r.name)),
                        r.budget_remaining,
                    )
                })
                .collect::<Vec<_>>(),
        );
        gauge_family_f64(
            &mut out,
            "vslo_burn_rate",
            "Error-budget burn rate (bad fraction over the window / allowed bad fraction)",
            &reports
                .iter()
                .flat_map(|r| {
                    let slo = escape(&r.name);
                    [
                        (format!("{{slo=\"{slo}\",window=\"fast\"}}"), r.burn_fast),
                        (format!("{{slo=\"{slo}\",window=\"slow\"}}"), r.burn_slow),
                    ]
                })
                .collect::<Vec<_>>(),
        );
        gauge_family_f64(
            &mut out,
            "vslo_alert",
            "1 while the multiwindow burn-rate alert at this severity is firing, else 0",
            &reports
                .iter()
                .flat_map(|r| {
                    let slo = escape(&r.name);
                    ["ticket", "page"].map(|sev| {
                        let active = r.severity.is_some_and(|s| s.to_string() == sev);
                        (
                            format!("{{slo=\"{slo}\",severity=\"{sev}\"}}"),
                            if active { 1.0 } else { 0.0 },
                        )
                    })
                })
                .collect::<Vec<_>>(),
        );
    }

    if let Some(health) = d.shard_health() {
        gauge_family_f64(
            &mut out,
            "vsched_suspicion",
            "Failure-detector suspicion per shard (heartbeat silence over \
             the expected interval; 0 while heartbeats arrive, declared \
             failed at the configured threshold)",
            &health
                .iter()
                .enumerate()
                .map(|(i, h)| (format!("{{shard=\"{i}\"}}"), h.suspicion))
                .collect::<Vec<_>>(),
        );
    }
    gauge_family_f64(
        &mut out,
        "vsched_brownout_level",
        "Overload brownout degradation ladder level (0 = no degradation; \
         each level sheds priorities below its floor at the door)",
        &[(String::new(), d.brownout_level() as f64)],
    );
    out
}

/// Appends one histogram family in the exposition format: cumulative
/// `_bucket` series at power-of-two `le` edges (exact counts — every
/// power of two is an inclusive upper bucket edge of the underlying
/// [`Histogram`], so these are not interpolated), terminated by
/// `le="+Inf"`, plus `_sum` and `_count`. Each entry in `series` pairs
/// an inner label prefix (`tenant="a",` — note the trailing comma — or
/// empty for an unlabelled family) with its histogram.
fn histogram_family(out: &mut String, name: &str, help: &str, series: &[(String, &Histogram)]) {
    use std::fmt::Write;
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} histogram");
    for (inner, h) in series {
        for (bound, cum) in h.power_of_two_buckets() {
            let _ = writeln!(out, "{name}_bucket{{{inner}le=\"{bound}\"}} {cum}");
        }
        let _ = writeln!(out, "{name}_bucket{{{inner}le=\"+Inf\"}} {}", h.count());
        let plain = inner.trim_end_matches(',');
        let braces = if plain.is_empty() {
            String::new()
        } else {
            format!("{{{plain}}}")
        };
        let _ = writeln!(out, "{name}_sum{braces} {}", h.sum());
        let _ = writeln!(out, "{name}_count{braces} {}", h.count());
    }
}

/// Appends one float-valued gauge family ([`prometheus_text`]'s `metric`
/// closure is integer-only; burn rates and budget fractions need floats).
fn gauge_family_f64(out: &mut String, name: &str, help: &str, series: &[(String, f64)]) {
    use std::fmt::Write;
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} gauge");
    for (labels, value) in series {
        let _ = writeln!(out, "{name}{labels} {value}");
    }
}

/// One client's view of a submitted request.
#[derive(Debug)]
struct PendingConn {
    client: hostsim::SockId,
    server: hostsim::SockId,
    tenant: TenantId,
}

/// Outcome of a dispatched server run.
#[derive(Debug)]
pub struct DispatchedRun {
    /// Responses received and verified (status 200, full body).
    pub served: u64,
    /// Requests shed at admission, per tenant index.
    pub shed_by_tenant: Vec<u64>,
    /// Served requests per tenant index.
    pub served_by_tenant: Vec<u64>,
    /// End-to-end latencies (virtual seconds) of served requests.
    pub latencies: Vec<f64>,
    /// End-to-end latencies split by tenant index (slow clients dominate
    /// the global tail; per-tenant views isolate the victims).
    pub latencies_by_tenant: Vec<Vec<f64>>,
    /// Served requests per virtual second over the run.
    pub throughput_rps: f64,
    /// Final dispatcher statistics.
    pub stats: vsched::DispatcherStats,
}

/// A request chunk scheduled for delivery at a virtual time (slow-client
/// trickling). Ordered by delivery time for the pump's min-heap.
#[derive(Debug, PartialEq)]
struct ScheduledSend {
    /// Delivery time in virtual seconds.
    at_s: f64,
    /// Tie-break so deliveries at the same instant stay in schedule order.
    seq: u64,
    sock: hostsim::SockId,
    bytes: Vec<u8>,
}

impl Eq for ScheduledSend {}

impl PartialOrd for ScheduledSend {
    fn partial_cmp(&self, other: &ScheduledSend) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ScheduledSend {
    fn cmp(&self, other: &ScheduledSend) -> std::cmp::Ordering {
        self.at_s
            .total_cmp(&other.at_s)
            .then(self.seq.cmp(&other.seq))
    }
}

/// A static-content HTTP server whose connection handlers run in virtines
/// placed by `vsched`.
///
/// Request delivery is *trickled*: each offer schedules its request bytes
/// as one or more chunks at virtual delivery times, and the server pumps
/// dispatcher progress and chunk sends in time order. A handler whose
/// `recv` outruns the client's chunks parks (event-driven dispatch) and
/// resumes per chunk — slow clients exercise the blocked-I/O path
/// end-to-end instead of being buffered host-side.
pub struct DispatchedServer {
    kernel: HostKernel,
    dispatcher: Dispatcher,
    virtine: wasp::VirtineId,
    tenants: Vec<TenantId>,
    pending: Vec<PendingConn>,
    shed: Vec<u64>,
    file_size: usize,
    request_line: Vec<u8>,
    sends: BinaryHeap<Reverse<ScheduledSend>>,
    send_seq: u64,
}

const PORT: u16 = 80;
const FILE_PATH: &str = "/www/index.html";

impl DispatchedServer {
    /// Builds a server over `shards` dispatcher shards serving a
    /// `file_size`-byte static file, with event-driven blocked I/O.
    pub fn new(shards: usize, file_size: usize) -> DispatchedServer {
        DispatchedServer::new_with(shards, file_size, BlockMode::EventDriven)
    }

    /// [`DispatchedServer::new`] with an explicit blocked-I/O policy
    /// (the `blocked_io` bench measures `SpinPoll` as its baseline).
    /// Handlers snapshot after boot (Figure 7's fast path), as §6.3's
    /// best configuration does.
    pub fn new_with(shards: usize, file_size: usize, block: BlockMode) -> DispatchedServer {
        DispatchedServer::new_on_topology(shards, None, file_size, block)
    }

    /// The full constructor: an explicit shard [`Topology`] (steals and
    /// resume-time migrations then prefer near siblings and pay per-hop
    /// transfer costs, surfaced by the `vsched_steal_transfers_total` and
    /// `vsched_topology` metrics) beside the blocked-I/O policy. `None`
    /// keeps the flat single-CCX topology.
    pub fn new_on_topology(
        shards: usize,
        topology: Option<Topology>,
        file_size: usize,
        block: BlockMode,
    ) -> DispatchedServer {
        let clock = Clock::new();
        let kernel = HostKernel::new(clock, None);
        let body: Vec<u8> = (0..file_size).map(|i| b'a' + (i % 23) as u8).collect();
        kernel.fs_add_file(FILE_PATH, body);
        kernel.net_listen(PORT).expect("listen");

        let wasp = Wasp::new(Hypervisor::kvm(kernel.clone()), WaspConfig::default());
        let mut dispatcher = Dispatcher::new(
            wasp,
            DispatcherConfig {
                shards,
                // Connection handlers are snapshotted; routing each request
                // to the shard already warm for its (tenant, handler) key
                // serves it with a dirty-page delta re-arm. Least-loaded
                // placement actively defeats the warm cache here: with
                // empty queues it alternates shards, and each landing
                // demote-steals the *other* shard's warm shell.
                placement: vsched::Placement::SnapshotAware,
                block,
                topology,
                ..DispatcherConfig::default()
            },
        );
        let handler = compile_handler(true);
        let spec = VirtineSpec::new("serve", handler.image.clone(), handler.mem_size)
            .with_policy(handler_policy())
            .with_snapshot(true);
        let virtine = dispatcher.register(spec).expect("register handler");
        DispatchedServer {
            kernel,
            dispatcher,
            virtine,
            tenants: Vec::new(),
            pending: Vec::new(),
            shed: Vec::new(),
            file_size,
            request_line: format!("GET {FILE_PATH} HTTP/1.0\r\n\r\n").into_bytes(),
            sends: BinaryHeap::new(),
            send_seq: 0,
        }
    }

    /// Registers a tenant (client class).
    pub fn add_tenant(&mut self, profile: TenantProfile) -> TenantId {
        let id = self.dispatcher.add_tenant(profile);
        self.tenants.push(id);
        self.shed.push(0);
        id
    }

    /// The dispatcher underneath.
    pub fn dispatcher(&self) -> &Dispatcher {
        &self.dispatcher
    }

    /// Mutable access to the dispatcher, for operator controls that live
    /// on it: [`Dispatcher::enable_tracing`], [`Dispatcher::set_slo`],
    /// [`Dispatcher::set_warm_budget`].
    pub fn dispatcher_mut(&mut self) -> &mut Dispatcher {
        &mut self.dispatcher
    }

    /// The Prometheus text rendering of the dispatcher's current state.
    pub fn metrics(&self) -> String {
        prometheus_text(&self.dispatcher)
    }

    /// Serves `GET /metrics` over the simulated network: opens a client
    /// connection, issues the request, answers it host-side (the scrape
    /// path never occupies a shard worker or a virtine — an operator's
    /// monitoring must not compete with tenant traffic), and returns the
    /// raw HTTP response bytes.
    pub fn fetch_metrics(&mut self) -> Vec<u8> {
        let client = self.kernel.net_connect(PORT).expect("connect");
        self.kernel
            .net_send(client, b"GET /metrics HTTP/1.0\r\n\r\n")
            .expect("send");
        let server = self
            .kernel
            .net_accept(PORT)
            .expect("accept")
            .expect("pending connection");
        let req = self
            .kernel
            .net_recv(server, 512)
            .expect("recv")
            .expect("request bytes");
        assert!(req.starts_with(b"GET /metrics"), "not a metrics scrape");
        let body = self.metrics();
        let response = format!(
            "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        self.kernel
            .net_send(server, response.as_bytes())
            .expect("send response");
        let resp = self
            .kernel
            .net_recv(client, response.len() + 512)
            .expect("recv")
            .expect("response bytes");
        self.kernel.net_close(client).ok();
        self.kernel.net_close(server).ok();
        resp
    }

    /// Serves `GET /trace?tenant=<name>&limit=<n>` over the simulated
    /// network, host-side like [`DispatchedServer::fetch_metrics`]: the
    /// response body is one JSON object per line (newest invocation
    /// first), each a full span tree from the dispatcher's trace ring.
    /// Both query parameters are optional — omitting `tenant` dumps all
    /// tenants, omitting `limit` defaults to 100. Returns the raw HTTP
    /// response bytes; the body is empty when tracing is disabled.
    pub fn fetch_trace(&mut self, query: &str) -> Vec<u8> {
        let client = self.kernel.net_connect(PORT).expect("connect");
        let request = format!("GET /trace{query} HTTP/1.0\r\n\r\n");
        self.kernel
            .net_send(client, request.as_bytes())
            .expect("send");
        let server = self
            .kernel
            .net_accept(PORT)
            .expect("accept")
            .expect("pending connection");
        let req = self
            .kernel
            .net_recv(server, 512)
            .expect("recv")
            .expect("request bytes");
        assert!(req.starts_with(b"GET /trace"), "not a trace dump");
        // Parse the query string out of the request line, as a real
        // handler would — the caller's `query` never short-circuits this.
        let line = String::from_utf8_lossy(&req);
        let target = line.split_whitespace().nth(1).unwrap_or("/trace");
        let mut tenant: Option<String> = None;
        let mut limit = 100usize;
        if let Some((_, qs)) = target.split_once('?') {
            for pair in qs.split('&') {
                match pair.split_once('=') {
                    Some(("tenant", v)) => tenant = Some(v.to_string()),
                    Some(("limit", v)) => limit = v.parse().unwrap_or(limit),
                    _ => {}
                }
            }
        }
        let body = self.dispatcher.trace_json_lines(tenant.as_deref(), limit);
        let response = format!(
            "HTTP/1.0 200 OK\r\nContent-Type: application/x-ndjson\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        self.kernel
            .net_send(server, response.as_bytes())
            .expect("send response");
        let resp = self
            .kernel
            .net_recv(client, response.len() + 512)
            .expect("recv")
            .expect("response bytes");
        self.kernel.net_close(client).ok();
        self.kernel.net_close(server).ok();
        resp
    }

    /// Serves `GET /admin/drain?shard=<i>&action=<a>` over the simulated
    /// network, host-side like [`DispatchedServer::fetch_metrics`] (an
    /// operator's lifecycle controls must not compete with tenant
    /// traffic). Actions: `drain` marks the shard draining and runs one
    /// reconcile pass, `restore` returns it to active, `fail` kills it
    /// (shells dropped, parked runs evicted, queued work re-homed), and
    /// `status` (the default) changes nothing. The response body lists
    /// every shard's lifecycle state as one JSON object per line. Error
    /// answers are distinct: a *malformed* request (unparseable shard
    /// index, unknown action, or a shard-targeting action with no shard)
    /// is 400 Bad Request, while a well-formed request naming a shard
    /// that does not exist is 404 Not Found — so an operator's tooling
    /// can tell "fix the query" from "wrong topology". Neither touches
    /// the dispatcher.
    pub fn fetch_admin_drain(&mut self, query: &str) -> Vec<u8> {
        let client = self.kernel.net_connect(PORT).expect("connect");
        let request = format!("GET /admin/drain{query} HTTP/1.0\r\n\r\n");
        self.kernel
            .net_send(client, request.as_bytes())
            .expect("send");
        let server = self
            .kernel
            .net_accept(PORT)
            .expect("accept")
            .expect("pending connection");
        let req = self
            .kernel
            .net_recv(server, 512)
            .expect("recv")
            .expect("request bytes");
        assert!(req.starts_with(b"GET /admin/drain"), "not a drain call");
        let line = String::from_utf8_lossy(&req);
        let target = line.split_whitespace().nth(1).unwrap_or("/admin/drain");
        let mut shard: Option<usize> = None;
        let mut action = "status";
        let mut bad_query = false;
        if let Some((_, qs)) = target.split_once('?') {
            for pair in qs.split('&') {
                match pair.split_once('=') {
                    Some(("shard", v)) => match v.parse() {
                        Ok(i) => shard = Some(i),
                        Err(_) => bad_query = true,
                    },
                    Some(("action", v)) => action = v,
                    _ => {}
                }
            }
        }
        let shards = self.dispatcher.shard_states().len();
        let valid_action = matches!(action, "status" | "drain" | "restore" | "fail");
        let needs_shard = action != "status";
        let malformed = bad_query || !valid_action || (needs_shard && shard.is_none());
        let unknown_shard = shard.is_some_and(|i| i >= shards);
        let response = if malformed {
            "HTTP/1.0 400 Bad Request\r\nContent-Length: 0\r\n\r\n".to_string()
        } else if unknown_shard {
            let body = format!(
                "{{\"error\":\"unknown shard\",\"shard\":{},\"shards\":{shards}}}\n",
                shard.expect("checked above")
            );
            format!(
                "HTTP/1.0 404 Not Found\r\nContent-Type: application/x-ndjson\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            )
        } else {
            match (action, shard) {
                ("drain", Some(i)) => {
                    self.dispatcher.drain_shard(i);
                }
                ("restore", Some(i)) => self.dispatcher.restore_shard(i),
                ("fail", Some(i)) => {
                    self.dispatcher.fail_shard(i);
                }
                _ => {}
            }
            let mut body = String::new();
            for (i, state) in self.dispatcher.shard_states().into_iter().enumerate() {
                use std::fmt::Write;
                let _ = writeln!(body, "{{\"shard\":{i},\"state\":\"{}\"}}", state.label());
            }
            format!(
                "HTTP/1.0 200 OK\r\nContent-Type: application/x-ndjson\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            )
        };
        self.kernel
            .net_send(server, response.as_bytes())
            .expect("send response");
        let resp = self
            .kernel
            .net_recv(client, response.len() + 512)
            .expect("recv")
            .expect("response bytes");
        self.kernel.net_close(client).ok();
        self.kernel.net_close(server).ok();
        resp
    }

    /// Serves `GET /admin/health` over the simulated network, host-side
    /// like [`DispatchedServer::fetch_admin_drain`]: one JSON object per
    /// shard pairing its lifecycle state with the failure detector's
    /// view (suspicion score, circuit-breaker state, last observed
    /// heartbeat in cycles), then one summary line with the detector
    /// counters and the brownout level. Without an installed detector
    /// the per-shard lines carry lifecycle state only and the summary
    /// says `"detector":"disabled"`.
    pub fn fetch_admin_health(&mut self) -> Vec<u8> {
        let client = self.kernel.net_connect(PORT).expect("connect");
        let request = "GET /admin/health HTTP/1.0\r\n\r\n";
        self.kernel
            .net_send(client, request.as_bytes())
            .expect("send");
        let server = self
            .kernel
            .net_accept(PORT)
            .expect("accept")
            .expect("pending connection");
        let req = self
            .kernel
            .net_recv(server, 512)
            .expect("recv")
            .expect("request bytes");
        assert!(req.starts_with(b"GET /admin/health"), "not a health call");
        use std::fmt::Write;
        let mut body = String::new();
        let health = self.dispatcher.shard_health();
        for (i, state) in self.dispatcher.shard_states().into_iter().enumerate() {
            match &health {
                Some(shards) => {
                    let h = &shards[i];
                    let _ = writeln!(
                        body,
                        "{{\"shard\":{i},\"state\":\"{}\",\"suspicion\":{},\
                         \"breaker\":\"{}\",\"last_seen\":{}}}",
                        state.label(),
                        h.suspicion,
                        h.breaker.label(),
                        h.last_seen
                    );
                }
                None => {
                    let _ = writeln!(body, "{{\"shard\":{i},\"state\":\"{}\"}}", state.label());
                }
            }
        }
        match self.dispatcher.health_stats() {
            Some(s) => {
                let _ = writeln!(
                    body,
                    "{{\"declared\":{},\"restored\":{},\"false_positives\":{},\
                     \"probes\":{},\"probe_failures\":{},\"brownout_level\":{}}}",
                    s.declared,
                    s.restored,
                    s.false_positives,
                    s.probes,
                    s.probe_failures,
                    self.dispatcher.brownout_level()
                );
            }
            None => {
                let _ = writeln!(
                    body,
                    "{{\"detector\":\"disabled\",\"brownout_level\":{}}}",
                    self.dispatcher.brownout_level()
                );
            }
        }
        let response = format!(
            "HTTP/1.0 200 OK\r\nContent-Type: application/x-ndjson\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        self.kernel
            .net_send(server, response.as_bytes())
            .expect("send response");
        let resp = self
            .kernel
            .net_recv(client, response.len() + 512)
            .expect("recv")
            .expect("response bytes");
        self.kernel.net_close(client).ok();
        self.kernel.net_close(server).ok();
        resp
    }

    /// Opens a connection as `tenant` at virtual time `arrival_s`, sends
    /// the canned GET in one piece, and offers the accepted connection to
    /// the dispatcher — the fast-client path (the handler's first `recv`
    /// finds the whole request). Shed requests close the connection
    /// immediately (the platform's "503" path, charged to no shard).
    pub fn offer(&mut self, tenant: TenantId, arrival_s: f64) -> Result<(), ShedReason> {
        self.offer_trickled(tenant, arrival_s, 1, 0.0)
    }

    /// Opens a connection as `tenant` at `arrival_s` and delivers the
    /// canned GET in `chunks` pieces spread over `spread_s` virtual
    /// seconds — a slow (slowloris-style) client. The first chunk arrives
    /// with the request; the handler's next `recv` finds an empty socket
    /// and parks until the following chunk lands, so the blocked-I/O path
    /// runs end-to-end instead of the host buffering the request.
    pub fn offer_trickled(
        &mut self,
        tenant: TenantId,
        arrival_s: f64,
        chunks: usize,
        spread_s: f64,
    ) -> Result<(), ShedReason> {
        assert!(chunks >= 1);
        self.pump_until(arrival_s);
        let client = self.kernel.net_connect(PORT).expect("connect");
        let server = self
            .kernel
            .net_accept(PORT)
            .expect("accept")
            .expect("pending connection");

        let n = self.request_line.len();
        let chunks = chunks.min(n);
        let piece = n.div_ceil(chunks);
        let parts: Vec<Vec<u8>> = self
            .request_line
            .chunks(piece)
            .map(<[u8]>::to_vec)
            .collect();
        let step = if parts.len() > 1 {
            spread_s / (parts.len() - 1) as f64
        } else {
            0.0
        };
        // The first chunk is on the wire when the request is offered.
        self.kernel.net_send(client, &parts[0]).expect("send");

        let req = Request::new(tenant, self.virtine, arrival_s)
            .with_invocation(Invocation::with_conn(server));
        match self.dispatcher.submit(req) {
            Ok(_) => {
                for (i, part) in parts.into_iter().enumerate().skip(1) {
                    self.send_seq += 1;
                    self.sends.push(Reverse(ScheduledSend {
                        at_s: arrival_s + i as f64 * step,
                        seq: self.send_seq,
                        sock: client,
                        bytes: part,
                    }));
                }
                self.pending.push(PendingConn {
                    client,
                    server,
                    tenant,
                });
                Ok(())
            }
            Err(reason) => {
                self.kernel.net_close(client).ok();
                self.kernel.net_close(server).ok();
                self.shed[tenant.index()] += 1;
                Err(reason)
            }
        }
    }

    /// Advances the server to virtual time `t_s`: delivers due chunks and
    /// runs the dispatcher up to it. Lets a driver observe mid-run state
    /// (e.g. scrape `/metrics` while slow clients are parked).
    pub fn run_until(&mut self, t_s: f64) {
        self.pump_until(t_s);
        self.dispatcher.run_until(t_s);
    }

    /// Delivers every scheduled chunk due at or before `t_s`, advancing
    /// the dispatcher to each delivery time first so parked handlers wake
    /// in timestamp order.
    fn pump_until(&mut self, t_s: f64) {
        while self.sends.peek().is_some_and(|Reverse(s)| s.at_s <= t_s) {
            let Reverse(s) = self.sends.pop().expect("peeked");
            self.dispatcher.run_until(s.at_s);
            // A peer closed mid-trickle is fine: the handler sees EOF.
            let _ = self.kernel.net_send(s.sock, &s.bytes);
        }
    }

    /// Drains the dispatcher, reads every pending response, and verifies
    /// each served request produced a correct 200.
    pub fn finish(mut self) -> DispatchedRun {
        self.pump_until(f64::INFINITY);
        self.dispatcher.run_to_idle();
        let completions = self.dispatcher.take_completions();
        assert_eq!(
            completions.len(),
            self.pending.len(),
            "every admitted connection must complete"
        );

        let mut served_by_tenant = vec![0u64; self.tenants.len()];
        for c in &completions {
            assert!(c.exit_normal, "handler failed");
            served_by_tenant[c.tenant.index()] += 1;
        }
        for p in &self.pending {
            let resp = self
                .kernel
                .net_recv(p.client, self.file_size + 512)
                .expect("recv")
                .expect("response");
            assert_eq!(
                response_status(&resp),
                Some(200),
                "tenant {} got a bad response",
                p.tenant.index()
            );
            self.kernel.net_close(p.client).ok();
            self.kernel.net_close(p.server).ok();
        }

        let latencies: Vec<f64> = completions
            .iter()
            .map(vsched::Completion::latency)
            .collect();
        let mut latencies_by_tenant = vec![Vec::new(); self.tenants.len()];
        for c in &completions {
            latencies_by_tenant[c.tenant.index()].push(c.latency());
        }
        let first_arrival = completions
            .iter()
            .map(|c| c.arrival)
            .fold(f64::MAX, f64::min);
        let last_finish = completions.iter().map(|c| c.finish).fold(0.0, f64::max);
        let span = (last_finish - first_arrival).max(f64::EPSILON);
        DispatchedRun {
            served: completions.len() as u64,
            shed_by_tenant: self.shed,
            served_by_tenant,
            latencies,
            latencies_by_tenant,
            throughput_rps: completions.len() as f64 / span,
            stats: self.dispatcher.stats(),
        }
    }
}

/// Convenience: serves `per_tenant` requests from each profile at
/// `rate_rps` per tenant (interleaved arrivals) and returns the run.
pub fn run_server_dispatched(
    shards: usize,
    profiles: Vec<TenantProfile>,
    per_tenant: usize,
    rate_rps: f64,
    file_size: usize,
) -> DispatchedRun {
    let mut server = DispatchedServer::new(shards, file_size);
    let tenants: Vec<TenantId> = profiles.into_iter().map(|p| server.add_tenant(p)).collect();
    for i in 0..per_tenant {
        let t = i as f64 / rate_rps;
        for &tenant in &tenants {
            let _ = server.offer(tenant, t);
        }
    }
    server.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vclock::stats;

    #[test]
    fn concurrent_connections_are_all_served_correctly() {
        let run = run_server_dispatched(
            4,
            vec![http_tenant("a"), http_tenant("b")],
            10,
            2_000.0,
            1024,
        );
        assert_eq!(run.served, 20);
        assert_eq!(run.served_by_tenant, vec![10, 10]);
        assert_eq!(run.shed_by_tenant, vec![0, 0]);
        assert!(run.throughput_rps > 0.0);
    }

    #[test]
    fn throttled_client_class_is_shed_while_others_are_served() {
        // An abusive client class limited to 50 rps offers 2000 rps; a
        // well-behaved class rides along unthrottled.
        let run = run_server_dispatched(
            2,
            vec![
                http_tenant("abusive").with_rate(50.0, 4.0),
                http_tenant("wellbehaved"),
            ],
            40,
            2_000.0,
            512,
        );
        let abusive = 0;
        let good = 1;
        assert!(run.shed_by_tenant[abusive] > 0, "rate limit never bound");
        assert_eq!(
            run.served_by_tenant[good], 40,
            "well-behaved tenant must be unaffected"
        );
        assert_eq!(
            run.served_by_tenant[abusive] + run.shed_by_tenant[abusive],
            40
        );
    }

    #[test]
    fn metrics_endpoint_serves_prometheus_text_with_warm_counters() {
        let mut server = DispatchedServer::new(2, 512);
        let good = server.add_tenant(http_tenant("good"));
        let bad = server.add_tenant(http_tenant("throttled").with_rate(10.0, 1.0));
        for i in 0..6 {
            let _ = server.offer(good, i as f64 * 0.001);
            let _ = server.offer(bad, i as f64 * 0.001);
        }
        server.dispatcher.run_to_idle();

        let resp = server.fetch_metrics();
        assert_eq!(response_status(&resp), Some(200));
        let text = String::from_utf8(resp).unwrap();
        let body = text.split("\r\n\r\n").nth(1).unwrap();

        let stats = server.dispatcher().stats();
        assert!(stats.warm_hits > 0, "handler snapshots; repeats must hit");
        let expect = [
            format!(
                "vsched_requests_total{{outcome=\"served\"}} {}",
                stats.served
            ),
            format!(
                "vsched_requests_total{{outcome=\"shed_rate_limit\"}} {}",
                stats.shed_rate_limit
            ),
            format!("vsched_warm_hits_total {}", stats.warm_hits),
            format!("vsched_warm_demotions_total {}", stats.warm_demotions),
            format!(
                "vsched_requests_total{{outcome=\"shed_byte_budget\"}} {}",
                stats.shed_byte_budget
            ),
            "vsched_topology{level=\"sockets\"} 1".to_string(),
            "vsched_topology{level=\"shards\"} 2".to_string(),
            format!(
                "vsched_steal_transfers_total{{distance=\"same_ccx\"}} {}",
                stats.stolen_same_ccx
            ),
            format!(
                "vsched_warm_resident {}",
                server.dispatcher().warm_resident()
            ),
            format!("vsched_blocked_total {}", stats.blocked),
            format!("vsched_resumed_total {}", stats.resumed),
            format!("vsched_busy_wait_cycles_total {}", stats.busy_wait_cycles),
            "vsched_parked 0".to_string(),
            "vsched_shard_parked{shard=\"0\"} 0".to_string(),
            format!(
                "vsched_requests_total{{outcome=\"shed_deadline_unmeetable\"}} {}",
                stats.shed_deadline_unmeetable
            ),
            format!(
                "vsched_tenant_served_total{{tenant=\"good\"}} {}",
                server.dispatcher().tenant_stats(good).served
            ),
            "# TYPE vsched_shard_warm_shells gauge".to_string(),
            "vsched_shard_queue_depth{shard=\"1\"} 0".to_string(),
        ];
        for line in &expect {
            assert!(
                body.lines().any(|l| l == line),
                "metrics body missing `{line}`:\n{body}"
            );
        }
        // Every metric is announced with HELP and TYPE before its samples.
        for name in ["vsched_requests_total", "wasp_pool_shells_total"] {
            assert!(body.contains(&format!("# HELP {name} ")));
            assert!(body.contains(&format!("# TYPE {name} ")));
        }
    }

    #[test]
    fn trickled_requests_park_resume_and_still_serve_correctly() {
        // Two slow clients trickle their headers in 4 chunks over 20 ms
        // alongside fast traffic; every response must still be a full 200,
        // and the slow requests must actually take the park/resume path.
        let mut server = DispatchedServer::new(2, 512);
        let slow = server.add_tenant(http_tenant("slow"));
        let fast = server.add_tenant(http_tenant("fast"));
        server.offer_trickled(slow, 0.0, 4, 0.02).unwrap();
        server.offer_trickled(slow, 0.001, 4, 0.02).unwrap();
        for i in 0..6 {
            server.offer(fast, 0.002 + i as f64 * 0.001).unwrap();
        }
        let run = server.finish();
        assert_eq!(run.served, 8);
        assert_eq!(run.served_by_tenant, vec![2, 6]);
        let s = run.stats;
        assert!(s.blocked >= 2, "slow clients must block: {s:?}");
        assert!(s.resumed >= 2, "and resume per chunk: {s:?}");
        assert_eq!(s.busy_wait_cycles, 0, "event-driven burns no worker");
        // Slow latencies span their trickle; fast ones don't pay for it.
        let slow_p50 = stats::percentile(&run.latencies_by_tenant[slow.index()], 50.0);
        let fast_p99 = stats::percentile(&run.latencies_by_tenant[fast.index()], 99.0);
        assert!(slow_p50 >= 0.019, "slow p50 {slow_p50} spans the trickle");
        assert!(fast_p99 < 0.005, "fast p99 {fast_p99} rides free");
    }

    #[test]
    fn grouped_topology_server_serves_and_reports_topology_gauges() {
        // A 2-socket topology flows through config to the dispatcher and
        // out the metrics endpoint; service is unaffected.
        let mut server = DispatchedServer::new_on_topology(
            8,
            Some(Topology::grouped(2, 2, 2)),
            512,
            BlockMode::EventDriven,
        );
        let tenant = server.add_tenant(http_tenant("t"));
        for i in 0..12 {
            server.offer(tenant, i as f64 * 0.0005).unwrap();
        }
        server.dispatcher.run_to_idle();
        let resp = server.fetch_metrics();
        assert_eq!(response_status(&resp), Some(200));
        let text = String::from_utf8(resp).unwrap();
        let body = text.split("\r\n\r\n").nth(1).unwrap();
        for line in [
            "vsched_topology{level=\"sockets\"} 2",
            "vsched_topology{level=\"ccxs\"} 4",
            "vsched_topology{level=\"shards\"} 8",
        ] {
            assert!(
                body.lines().any(|l| l == line),
                "metrics body missing `{line}`"
            );
        }
        // Distance-classed steal counters reconcile with the total.
        let s = server.dispatcher().stats();
        assert_eq!(
            s.stolen,
            s.stolen_same_ccx + s.stolen_cross_ccx + s.stolen_cross_socket
        );
        let run = server.finish();
        assert_eq!(run.served, 12);
    }

    #[test]
    fn byte_limited_tenant_surfaces_in_metrics() {
        let mut server = DispatchedServer::new(2, 256);
        // Byte budgets meter the request payload (args + invocation
        // payload), which `offer`'s connection-only requests don't carry
        // — so drive a fat-args request through the dispatcher directly
        // and check the shed lands in the exported series.
        let metered = server.add_tenant(http_tenant("metered").with_byte_rate(8.0, 8.0));
        let err = server
            .dispatcher
            .submit(Request::new(metered, server.virtine, 0.0).with_args(vec![0u8; 64]))
            .unwrap_err();
        assert_eq!(err, ShedReason::ByteBudget);
        server.dispatcher.run_to_idle();
        let text = String::from_utf8(server.fetch_metrics()).unwrap();
        assert!(
            text.lines()
                .any(|l| l == "vsched_requests_total{outcome=\"shed_byte_budget\"} 1"),
            "byte-budget shed missing from the exported series:\n{text}"
        );
    }

    #[test]
    fn spin_poll_server_still_serves_trickled_requests_but_burns_workers() {
        let mut server = DispatchedServer::new_with(1, 256, BlockMode::SpinPoll);
        let slow = server.add_tenant(http_tenant("slow"));
        server.offer_trickled(slow, 0.0, 2, 0.01).unwrap();
        let run = server.finish();
        assert_eq!(run.served, 1);
        assert!(run.stats.busy_wait_cycles > 0, "the wait occupies a worker");
    }

    #[test]
    fn metrics_conform_to_prometheus_text_format() {
        use std::collections::{HashMap, HashSet};
        use vclock::Cycles;
        use vtrace::slo::{BurnPolicy, SloEngine, SloSpec};

        let mut server = DispatchedServer::new(2, 256);
        // A hostile tenant name: quote, backslash, and newline must all
        // come out escaped or the scrape is unparseable.
        let evil = server.add_tenant(http_tenant("e\\v\"i\nl"));
        let good = server.add_tenant(http_tenant("good"));
        let d = server.dispatcher_mut();
        d.enable_tracing(64);
        d.set_slo(SloEngine::new(
            vec![
                SloSpec::latency("e2e_p99", 0.99, Cycles::from_micros(50_000.0)),
                SloSpec::availability("availability", 0.999),
            ],
            BurnPolicy::default(),
        ));
        for i in 0..8 {
            let _ = server.offer(evil, i as f64 * 0.001);
            let _ = server.offer(good, i as f64 * 0.001);
        }
        server.dispatcher.run_to_idle();
        server.dispatcher.slo_tick();
        let text = String::from_utf8(server.fetch_metrics()).unwrap();
        let body = text.split("\r\n\r\n").nth(1).unwrap();

        let mut helped: HashSet<&str> = HashSet::new();
        let mut typed: HashMap<&str, &str> = HashMap::new();
        let mut seen_series: HashSet<&str> = HashSet::new();
        // Ordered histogram bucket values per (family, non-le labels).
        let mut buckets: HashMap<(String, String), Vec<(String, f64)>> = HashMap::new();
        let mut counts: HashMap<(String, String), f64> = HashMap::new();
        for line in body.lines() {
            if let Some(rest) = line.strip_prefix("# HELP ") {
                let name = rest.split(' ').next().unwrap();
                assert!(helped.insert(name), "duplicate HELP for {name}");
                continue;
            }
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut it = rest.split(' ');
                let (name, kind) = (it.next().unwrap(), it.next().unwrap());
                assert!(
                    typed.insert(name, kind).is_none(),
                    "duplicate TYPE for {name}"
                );
                assert!(helped.contains(name), "TYPE before HELP for {name}");
                continue;
            }
            // A sample line: `name[{labels}] value`. A label value with a
            // raw (unescaped) newline would split into a line that fails
            // this parse.
            let (series, value) = line.rsplit_once(' ').unwrap_or(("", line));
            let value: f64 = value
                .parse()
                .unwrap_or_else(|_| panic!("sample value not a number in line `{line}`"));
            assert!(seen_series.insert(series), "duplicate series `{series}`");
            let name = series.split('{').next().unwrap();
            // Resolve the family: histogram samples hang `_bucket`,
            // `_sum`, `_count` off the declared family name.
            let family = if typed.contains_key(name) {
                name.to_string()
            } else {
                let base = name
                    .strip_suffix("_bucket")
                    .or_else(|| name.strip_suffix("_sum"))
                    .or_else(|| name.strip_suffix("_count"))
                    .unwrap_or_else(|| panic!("sample `{name}` has no TYPE"));
                assert_eq!(
                    typed.get(base),
                    Some(&"histogram"),
                    "`{name}` suffix on a non-histogram family"
                );
                base.to_string()
            };
            assert!(
                helped.contains(family.as_str()),
                "sample `{series}` before its HELP"
            );
            if name.ends_with("_bucket") && typed.get(family.as_str()) == Some(&"histogram") {
                let labels = series.split_once('{').unwrap().1.trim_end_matches('}');
                let (others, le): (Vec<&str>, Vec<&str>) = labels
                    .split("\",")
                    .partition(|p| !p.trim_start().starts_with("le="));
                buckets
                    .entry((family, others.join(",")))
                    .or_default()
                    .push((le.join("").to_string(), value));
            } else if name.ends_with("_count") && typed.get(family.as_str()) == Some(&"histogram") {
                let labels = series.split_once('{').map_or("", |(_, l)| l);
                counts.insert((family, labels.trim_end_matches('}').to_string()), value);
            }
        }
        // Escaped label values: the hostile name appears exactly in its
        // escaped form, never raw.
        assert!(
            body.contains("tenant=\"e\\\\v\\\"i\\nl\""),
            "escaped tenant label missing:\n{body}"
        );
        // Histograms: the three ISSUE families are present and every
        // bucket series is cumulative and +Inf-terminated, with the +Inf
        // count equal to the family count.
        for fam in [
            "vsched_queue_wait_cycles",
            "vsched_exec_cycles",
            "vsched_e2e_cycles",
        ] {
            assert_eq!(typed.get(fam), Some(&"histogram"), "{fam} missing");
            assert!(
                buckets.keys().any(|(f, _)| f == fam),
                "{fam} has no bucket series"
            );
        }
        assert!(
            buckets
                .keys()
                .any(|(f, l)| f == "vsched_e2e_cycles" && l.contains("tenant=\"good")),
            "e2e histogram not labelled per tenant"
        );
        for ((family, labels), series) in &buckets {
            let mut prev = -1.0;
            for (le, v) in series {
                assert!(
                    *v >= prev,
                    "{family}{{{labels}}} buckets not cumulative at le={le}"
                );
                prev = *v;
            }
            let (last_le, last_v) = series.last().unwrap();
            assert!(
                last_le.contains("+Inf"),
                "{family}{{{labels}}} not +Inf-terminated (ends at {last_le})"
            );
            let count_labels = if labels.is_empty() {
                String::new()
            } else {
                format!("{labels}\"")
            };
            let count = counts
                .get(&(family.clone(), count_labels))
                .unwrap_or_else(|| panic!("{family}{{{labels}}} has no _count"));
            assert_eq!(last_v, count, "{family}{{{labels}}} +Inf != _count");
        }
        // SLO gauges are exported for every declared objective.
        for series in [
            "vslo_error_budget_remaining{slo=\"e2e_p99\"}",
            "vslo_error_budget_remaining{slo=\"availability\"}",
            "vslo_burn_rate{slo=\"e2e_p99\",window=\"fast\"}",
            "vslo_burn_rate{slo=\"availability\",window=\"slow\"}",
            "vslo_alert{slo=\"e2e_p99\",severity=\"page\"}",
            "vslo_alert{slo=\"availability\",severity=\"ticket\"}",
        ] {
            assert!(
                seen_series.contains(series),
                "missing SLO series `{series}`:\n{body}"
            );
        }
        // The satellite counter rides along.
        assert!(seen_series.contains("vsched_blocked_cycles_total"));
    }

    #[test]
    fn trace_endpoint_dumps_span_trees_filtered_by_tenant() {
        let mut server = DispatchedServer::new(2, 256);
        let a = server.add_tenant(http_tenant("alpha"));
        let b = server.add_tenant(http_tenant("beta"));
        server.dispatcher_mut().enable_tracing(32);
        for i in 0..4 {
            server.offer(a, i as f64 * 0.001).unwrap();
            server.offer(b, i as f64 * 0.001).unwrap();
        }
        server.dispatcher.run_to_idle();

        let resp = server.fetch_trace("?tenant=alpha&limit=3");
        assert_eq!(response_status(&resp), Some(200));
        let text = String::from_utf8(resp).unwrap();
        let body = text.split("\r\n\r\n").nth(1).unwrap();
        let lines: Vec<&str> = body.lines().collect();
        assert_eq!(lines.len(), 3, "limit honoured:\n{body}");
        for l in &lines {
            assert!(l.contains("\"tenant\":\"alpha\""), "filter leaked: {l}");
            assert!(l.contains("\"outcome\":\"completed\""));
            for span in ["admit", "queue_wait", "shell_acquire", "exec", "complete"] {
                assert!(
                    l.contains(&format!("\"span\":\"{span}\"")),
                    "missing {span}: {l}"
                );
            }
        }

        // Unfiltered dump covers both tenants; default limit is ample.
        let all = String::from_utf8(server.fetch_trace("")).unwrap();
        let body = all.split("\r\n\r\n").nth(1).unwrap();
        assert_eq!(body.lines().count(), 8);
        assert!(body.contains("\"tenant\":\"beta\""));

        // An unknown tenant matches nothing rather than erroring.
        let none = String::from_utf8(server.fetch_trace("?tenant=nobody")).unwrap();
        assert_eq!(none.split("\r\n\r\n").nth(1).unwrap(), "");
    }

    #[test]
    fn admin_drain_endpoint_drives_the_shard_lifecycle() {
        let mut server = DispatchedServer::new(2, 256);
        let tenant = server.add_tenant(http_tenant("t"));
        for i in 0..6 {
            server.offer(tenant, i as f64 * 0.001).unwrap();
        }
        server.dispatcher.run_to_idle();

        // Status: every shard active.
        let resp = server.fetch_admin_drain("");
        assert_eq!(response_status(&resp), Some(200));
        let text = String::from_utf8(resp).unwrap();
        let body = text.split("\r\n\r\n").nth(1).unwrap();
        assert_eq!(
            body.lines().collect::<Vec<_>>(),
            [
                "{\"shard\":0,\"state\":\"active\"}",
                "{\"shard\":1,\"state\":\"active\"}",
            ],
        );

        // Drain shard 0: with no live traffic it converges immediately.
        let text = String::from_utf8(server.fetch_admin_drain("?shard=0&action=drain")).unwrap();
        assert!(
            text.contains("{\"shard\":0,\"state\":\"drained\"}"),
            "{text}"
        );
        assert!(text.contains("{\"shard\":1,\"state\":\"active\"}"));
        // The gauge agrees with the payload.
        let metrics = String::from_utf8(server.fetch_metrics()).unwrap();
        assert!(metrics
            .lines()
            .any(|l| l == "vsched_shard_state{shard=\"0\"} 2"));
        assert!(metrics
            .lines()
            .any(|l| l == "vsched_shard_state{shard=\"1\"} 0"));

        // Traffic keeps flowing to the survivor while shard 0 is out.
        for i in 0..3 {
            server.offer(tenant, 1.0 + i as f64 * 0.001).unwrap();
        }
        server.dispatcher.run_to_idle();

        // Restore brings it back.
        let text = String::from_utf8(server.fetch_admin_drain("?shard=0&action=restore")).unwrap();
        assert!(text.contains("{\"shard\":0,\"state\":\"active\"}"));

        // Fail (nothing in flight): shells dropped, state failed, the
        // eviction counters stay zero, and the drop shows in the pool
        // series.
        let text = String::from_utf8(server.fetch_admin_drain("?shard=1&action=fail")).unwrap();
        assert!(text.contains("{\"shard\":1,\"state\":\"failed\"}"));
        let metrics = String::from_utf8(server.fetch_metrics()).unwrap();
        assert!(metrics
            .lines()
            .any(|l| l == "vsched_shard_state{shard=\"1\"} 3"));
        assert!(metrics
            .lines()
            .any(|l| l == "vsched_evictions_total{reason=\"grace_expired\"} 0"));
        assert!(metrics
            .lines()
            .any(|l| l == "vsched_evictions_total{reason=\"shard_failed\"} 0"));
        assert!(metrics.lines().any(|l| l
            .starts_with("wasp_pool_shells_total{event=\"dropped\"} ")
            && !l.ends_with(" 0")));
        server.fetch_admin_drain("?shard=1&action=restore");

        // Malformed requests answer 400 and change nothing.
        for bad in [
            "?shard=0&action=explode",
            "?action=drain",
            "?shard=zero&action=drain",
        ] {
            let resp = server.fetch_admin_drain(bad);
            assert_eq!(response_status(&resp), Some(400), "query `{bad}`");
        }
        // A well-formed request naming a shard outside the topology is
        // not a malformed query: it answers 404, with a body naming the
        // bound, and changes nothing.
        for missing in ["?shard=9&action=drain", "?shard=2&action=status"] {
            let resp = server.fetch_admin_drain(missing);
            assert_eq!(response_status(&resp), Some(404), "query `{missing}`");
        }
        let text = String::from_utf8(server.fetch_admin_drain("?shard=9&action=drain")).unwrap();
        let body = text.split("\r\n\r\n").nth(1).unwrap();
        assert_eq!(
            body.trim_end(),
            "{\"error\":\"unknown shard\",\"shard\":9,\"shards\":2}"
        );
        let run = server.finish();
        assert_eq!(run.served, 9, "lifecycle churn lost nothing");
    }

    #[test]
    fn admin_health_endpoint_reports_detector_state() {
        let mut server = DispatchedServer::new(2, 256);
        let tenant = server.add_tenant(http_tenant("t"));

        // Without a detector: lifecycle state only, summary says so.
        let resp = server.fetch_admin_health();
        assert_eq!(response_status(&resp), Some(200));
        let text = String::from_utf8(resp).unwrap();
        let body = text.split("\r\n\r\n").nth(1).unwrap();
        assert_eq!(
            body.lines().collect::<Vec<_>>(),
            [
                "{\"shard\":0,\"state\":\"active\"}",
                "{\"shard\":1,\"state\":\"active\"}",
                "{\"detector\":\"disabled\",\"brownout_level\":0}",
            ],
        );

        // With a detector installed, every shard reports its breaker and
        // suspicion, and the summary carries the counters.
        server
            .dispatcher_mut()
            .set_health(vsched::HealthConfig::new());
        for i in 0..4 {
            server.offer(tenant, i as f64 * 0.001).unwrap();
        }
        server.dispatcher.run_to_idle();
        let text = String::from_utf8(server.fetch_admin_health()).unwrap();
        let body = text.split("\r\n\r\n").nth(1).unwrap();
        let lines: Vec<&str> = body.lines().collect();
        assert_eq!(lines.len(), 3);
        for (i, line) in lines[..2].iter().enumerate() {
            assert!(
                line.starts_with(&format!("{{\"shard\":{i},\"state\":\"active\"")),
                "{line}"
            );
            assert!(line.contains("\"breaker\":\"closed\""), "{line}");
            assert!(line.contains("\"suspicion\":"), "{line}");
            assert!(line.contains("\"last_seen\":"), "{line}");
        }
        assert!(
            lines[2].starts_with("{\"declared\":0,\"restored\":0,\"false_positives\":0,"),
            "steady state declares nothing: {}",
            lines[2]
        );
        // The suspicion gauge family rides the metrics scrape too.
        let metrics = String::from_utf8(server.fetch_metrics()).unwrap();
        assert!(metrics
            .lines()
            .any(|l| l.starts_with("vsched_suspicion{shard=\"0\"} ")));
        assert!(metrics.lines().any(|l| l == "vsched_brownout_level 0"));
        let run = server.finish();
        assert_eq!(run.served, 4);
    }

    #[test]
    fn metrics_scrape_charges_no_shard_and_serves_no_virtine() {
        let mut server = DispatchedServer::new(1, 128);
        let before = server.dispatcher().stats();
        let resp = server.fetch_metrics();
        assert_eq!(response_status(&resp), Some(200));
        let after = server.dispatcher().stats();
        assert_eq!(before, after, "scrapes must not touch dispatcher state");
    }

    #[test]
    fn more_shards_cut_tail_latency_under_load() {
        // ~27 µs of service per request: offering a request every 5 µs
        // saturates one shard several times over.
        let run =
            |shards| run_server_dispatched(shards, vec![http_tenant("t")], 60, 200_000.0, 512);
        let one = run(1);
        let eight = run(8);
        let p95_1 = stats::percentile(&one.latencies, 95.0);
        let p95_8 = stats::percentile(&eight.latencies, 95.0);
        assert!(
            p95_8 < p95_1,
            "8 shards should cut p95 latency: {p95_8} vs {p95_1}"
        );
        assert!(eight.throughput_rps > one.throughput_rps);
    }
}
