//! The §6.3 static-content HTTP server: native vs virtine handlers.
//!
//! "We use our C extension to annotate a connection handling function in a
//! simple, single-threaded HTTP server that serves static content. …
//! each virtine invocation here involves seven host interactions
//! (hypercalls): (1) read() a request from host socket, (2) stat()
//! requested file, (3) open() file, (4) read() from file, (5) write()
//! response, (6) close() file, (7) exit()."

use hostsim::HostKernel;
use kvmsim::Hypervisor;
use vcc::{compile_raw, CompileOptions, CompiledVirtine};
use vclock::{Clock, Cycles};
use wasp::{ExitKind, HypercallMask, Invocation, VirtineSpec, Wasp, WaspConfig};

use crate::{build_response, parse_request, response_status};

/// The connection-handler source: mini-C, annotated per-connection in the
/// paper; compiled here as a raw-environment image driven per request.
///
/// The request read loops on a *blocking* `vrecv` until the header
/// terminator (a slow client trickling its request parks the virtine in
/// the hypervisor between chunks — event-driven dispatch resumes it per
/// chunk); a fast client delivering the whole request at once completes
/// the loop in a single recv, preserving the paper's seven interactions.
pub const HANDLER_C: &str = r#"
int serve() {
    /*SNAPSHOT_POINT*/
    char req[2048];
    int n = 0;
    int done = 0;
    while (done == 0) {
        int got = vrecv(req + n, 2048 - n);        /* (1) read request */
        if (got <= 0) { vexit(1); }
        n = n + got;
        if (n >= 4) {
            if (req[n - 4] == '\r' && req[n - 3] == '\n'
                && req[n - 2] == '\r' && req[n - 1] == '\n') {
                done = 1;
            }
        }
        if (n >= 2040) { done = 1; }
    }

    /* Parse "GET <path> HTTP/1.0". */
    char path[256];
    int i = 0;
    int j = 0;
    while (i < n && req[i] != ' ') { i = i + 1; }
    i = i + 1;
    while (i < n && req[i] != ' ' && j < 255) {
        path[j] = req[i];
        i = i + 1;
        j = j + 1;
    }
    path[j] = 0;

    int size = 0;
    if (vstat(path, &size) != 0) {                 /* (2) stat file */
        char* nf = "HTTP/1.0 404 Not Found\r\nContent-Length: 0\r\n\r\n";
        vwrite(1, nf, strlen(nf));
        vexit(2);
    }
    int fd = vopen(path);                          /* (3) open file */
    if (fd < 0) { vexit(3); }

    char* resp = malloc(size + 256);
    if (resp == 0) { vexit(4); }
    char* hdr = "HTTP/1.0 200 OK\r\nContent-Length: ";
    strcpy(resp, hdr);
    int hl = strlen(hdr);
    hl = hl + itoa(size, resp + hl);
    resp[hl] = '\r';
    resp[hl + 1] = '\n';
    resp[hl + 2] = '\r';
    resp[hl + 3] = '\n';
    hl = hl + 4;

    int got = vread(fd, resp + hl, size);          /* (4) read file */
    if (got != size) { vexit(5); }
    vwrite(1, resp, hl + size);                    /* (5) write response */
    vclose(fd);                                    /* (6) close file */
    vexit(0);                                      /* (7) exit */
    return 0;
}
"#;

/// Compiles the connection-handler virtine. With `snapshot`, a checkpoint
/// request is inserted after boot, before any per-request state (Figure 7);
/// without it, the handler performs exactly the paper's seven interactions.
pub fn compile_handler(snapshot: bool) -> CompiledVirtine {
    let opts = CompileOptions {
        mem_size: 512 * 1024,
        image_budget: 96 * 1024,
    };
    let src = if snapshot {
        HANDLER_C.replace("/*SNAPSHOT_POINT*/", "vsnapshot();")
    } else {
        HANDLER_C.to_string()
    };
    compile_raw(&src, "serve", &opts).expect("handler must compile")
}

/// The policy the §6.3 virtine client installs: exactly the seven
/// interactions the handler needs, nothing else.
pub fn handler_policy() -> HypercallMask {
    HypercallMask::allowing(&[
        wasp::nr::RECV,
        wasp::nr::STAT,
        wasp::nr::OPEN,
        wasp::nr::READ,
        wasp::nr::WRITE,
        wasp::nr::CLOSE,
    ])
}

/// Handler deployment mode for the Figure 13 comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerMode {
    /// Connection handled by native host code (the baseline).
    Native,
    /// Connection handled in a virtine, cold boot each request.
    Virtine,
    /// Connection handled in a virtine with snapshotting.
    VirtineSnapshot,
}

/// Results of one server run.
#[derive(Debug, Clone)]
pub struct ServerRun {
    /// Mode measured.
    pub mode: ServerMode,
    /// Per-request latencies.
    pub latencies: Vec<Cycles>,
    /// Requests per (virtual) second over the whole run.
    pub throughput_rps: f64,
    /// Hypercalls (or syscalls) per request observed.
    pub interactions_per_request: f64,
}

/// Serves `requests` requests for `file_path` in the given mode.
pub fn run_server(
    mode: ServerMode,
    requests: usize,
    file_size: usize,
    noise_seed: Option<u64>,
) -> ServerRun {
    let clock = Clock::new();
    let kernel = HostKernel::new(clock.clone(), noise_seed);
    let file_path = "/www/index.html";
    let body: Vec<u8> = (0..file_size).map(|i| b'a' + (i % 23) as u8).collect();
    kernel.fs_add_file(file_path, body.clone());

    const PORT: u16 = 80;
    kernel.net_listen(PORT).expect("listen");

    let wasp = Wasp::new(Hypervisor::kvm(kernel.clone()), WaspConfig::default());
    let id = match mode {
        ServerMode::Native => None,
        ServerMode::Virtine | ServerMode::VirtineSnapshot => {
            let snapshot = mode == ServerMode::VirtineSnapshot;
            let handler = compile_handler(snapshot);
            let spec = VirtineSpec::new("serve", handler.image.clone(), handler.mem_size)
                .with_policy(handler_policy())
                .with_snapshot(snapshot);
            Some(wasp.register(spec).expect("register"))
        }
    };

    let request = format!("GET {file_path} HTTP/1.0\r\n\r\n").into_bytes();
    let mut latencies = Vec::with_capacity(requests);
    let mut interactions = 0u64;
    let t_start = clock.now();
    for _ in 0..requests {
        let client = kernel.net_connect(PORT).expect("connect");
        kernel.net_send(client, &request).expect("send");
        let conn = kernel
            .net_accept(PORT)
            .expect("accept")
            .expect("pending connection");

        let t0 = clock.now();
        match (mode, id) {
            (ServerMode::Native, _) => {
                interactions += native_handle(&kernel, conn);
            }
            (_, Some(id)) => {
                let out = wasp
                    .run(id, &[], Invocation::with_conn(conn))
                    .expect("virtine");
                assert!(
                    matches!(out.exit, ExitKind::Exited(0)),
                    "handler failed: {:?}",
                    out.exit
                );
                interactions += out.hypercalls;
            }
            _ => unreachable!("virtine modes always register"),
        }
        let resp = kernel
            .net_recv(client, file_size + 512)
            .expect("recv")
            .expect("response");
        latencies.push(clock.now() - t0);
        assert_eq!(response_status(&resp), Some(200));
        assert!(resp.ends_with(&body), "body mismatch");
        kernel.net_close(client).ok();
        kernel.net_close(conn).ok();
    }
    let elapsed = (clock.now() - t_start).as_secs();
    ServerRun {
        mode,
        latencies,
        throughput_rps: requests as f64 / elapsed,
        interactions_per_request: interactions as f64 / requests as f64,
    }
}

/// The native baseline: the same seven interactions as direct system calls.
fn native_handle(kernel: &HostKernel, conn: hostsim::SockId) -> u64 {
    let req = kernel.net_recv(conn, 2048).expect("recv").expect("request"); // (1)
    let parsed = parse_request(&req).expect("parse");
    let Ok(st) = kernel.sys_stat(&parsed.path) else {
        // (2)
        kernel
            .net_send(conn, &build_response(404, "Not Found", b""))
            .ok();
        return 3;
    };
    let fd = kernel.sys_open(&parsed.path).expect("open"); // (3)
    let body = kernel.sys_read(fd, st.size as usize).expect("read"); // (4)
    kernel
        .net_send(conn, &build_response(200, "OK", &body))
        .expect("send"); // (5)
    kernel.sys_close(fd).expect("close"); // (6)
    7 // (7): the native "exit" is just returning.
}

#[cfg(test)]
mod tests {
    use super::*;
    use vclock::stats;

    fn mean_us(run: &ServerRun) -> f64 {
        let xs: Vec<f64> = run.latencies.iter().map(|c| c.as_micros()).collect();
        stats::mean(&xs)
    }

    #[test]
    fn all_modes_serve_correct_content() {
        for mode in [
            ServerMode::Native,
            ServerMode::Virtine,
            ServerMode::VirtineSnapshot,
        ] {
            let run = run_server(mode, 5, 1024, None);
            assert_eq!(run.latencies.len(), 5, "{mode:?}");
        }
    }

    #[test]
    fn virtine_handler_makes_exactly_seven_interactions() {
        let run = run_server(ServerMode::Virtine, 4, 512, None);
        assert_eq!(
            run.interactions_per_request, 7.0,
            "the paper counts 7 hypercalls per request"
        );
    }

    #[test]
    fn figure_13_shape_native_fastest_snapshot_between() {
        let native = run_server(ServerMode::Native, 10, 4096, None);
        let virtine = run_server(ServerMode::Virtine, 10, 4096, None);
        let snap = run_server(ServerMode::VirtineSnapshot, 10, 4096, None);

        let (n, v, s) = (mean_us(&native), mean_us(&virtine), mean_us(&snap));
        assert!(
            n < s && s < v,
            "latency ordering: native {n} snap {s} virtine {v}"
        );
        assert!(
            native.throughput_rps > snap.throughput_rps
                && snap.throughput_rps > virtine.throughput_rps,
            "throughput ordering"
        );
        // §6.3: virtines with snapshots incur a modest throughput drop
        // relative to native (the paper reports 12% on tinker; the artifact
        // note expects up to ~2x across machines). Accept that band.
        let drop = 1.0 - snap.throughput_rps / native.throughput_rps;
        assert!(
            (0.01..0.75).contains(&drop),
            "snapshot throughput drop = {:.1}%",
            drop * 100.0
        );
    }

    #[test]
    fn missing_file_is_a_404_everywhere() {
        // Run the native handler against a missing path directly.
        let clock = Clock::new();
        let kernel = HostKernel::new(clock, None);
        kernel.net_listen(81).unwrap();
        let client = kernel.net_connect(81).unwrap();
        kernel
            .net_send(client, b"GET /missing HTTP/1.0\r\n\r\n")
            .unwrap();
        let conn = kernel.net_accept(81).unwrap().unwrap();
        native_handle(&kernel, conn);
        let resp = kernel.net_recv(client, 512).unwrap().unwrap();
        assert_eq!(response_status(&resp), Some(404));
    }
}
