//! Cluster ingress: the edge tier in front of a multi-node
//! [`vsched::Cluster`].
//!
//! [`dispatch`](crate::dispatch) scales the paper's §6.3 server across
//! the shards of *one* dispatcher. This module scales it across
//! dispatchers: an [`Ingress`] owns a [`Cluster`] of backend nodes and
//! everything that belongs at the edge rather than on any node —
//!
//! * **The accept-loop virtine.** The front door is itself a virtine:
//!   a long-lived acceptor whose guest loops on a *blocking* `recv`
//!   over the simulated-net doorbell connection, so between
//!   connections it is parked (the `WaitReason` machinery — holding a
//!   shell but no worker) rather than spinning, and each arriving
//!   connection wakes it exactly like §6.3's blocking `recv` wakes a
//!   handler. Eight zero bytes on the doorbell make it fall out of the
//!   loop and `hlt` at shutdown.
//! * **Client attribution.** Each connection's first line is a
//!   PROXY-protocol-style header (`PROXY VSIM <tenant> <client>`)
//!   carried on the simulated-net connection; the acceptor consumes it
//!   and the edge parses it ([`encode_proxy`] / [`parse_proxy`]), so
//!   admission is charged to the *originating* client class, not to
//!   whatever hop delivered the connection.
//! * **Edge admission accounting.** Per-tenant [`TokenBucket`]s refill
//!   in virtual time at the ingress, so an over-budget tenant is shed
//!   at the edge ([`IngressShed::EdgeRate`]) and never consumes node
//!   queue space, node rate tokens, or a cross-node hop.
//! * **Health- and load-aware routing.** Every accepted connection is
//!   routed by [`Cluster::route`] — node-level [`vsched::Candidate`]
//!   rows under the same lexicographic key that places work inside a
//!   node, every node one `CrossNode` hop from the edge — and a node
//!   the detector suspects ([`Cluster::routable`] false) stops
//!   receiving new work while it is fenced and evacuated.
//! * **Exactly-once failover.** The edge keeps each request's pristine
//!   inputs (per-request `EdgeReq` records) and the `(node, node seq)` it
//!   was routed to. When the detector declares a node, the cluster
//!   fences it (every shard failed — queued copies shed, nothing
//!   stranded can run later), and the ingress re-dispatches the node's
//!   unresolved requests to [`Cluster::evacuation_target`], charging
//!   each one `VSCHED_TRANSFER_CROSS_NODE` cycles of cross-node
//!   latency. A first-terminal-outcome-wins record per request makes
//!   double completion structurally countable (and the `ingress_fanout`
//!   bench gates it at zero).
//!
//! The whole tier runs on the virtual clock: routing, suspicion,
//! fencing, evacuation, and replay are deterministic bit-for-bit. See
//! `docs/cluster.md` for the routing rules and the handover sequence
//! diagram.

use std::collections::HashMap;

use hostsim::{HostKernel, SockId};
use kvmsim::Hypervisor;
use vclock::{costs, Clock, Cycles};
use vsched::{
    Cluster, ClusterAction, Completion, Dispatcher, DispatcherConfig, HealthConfig, HealthStats,
    Request, ShedReason, TenantId, TenantProfile, TokenBucket,
};
use vtrace::TraceCollector;
use wasp::{HypercallMask, Invocation, VirtineId, VirtineSpec, Wasp, WaspConfig};

/// Port the edge doorbell connection rides on.
const DOORBELL_PORT: u16 = 79;
/// Guest memory for the acceptor virtine.
const ACCEPTOR_MEM: usize = 64 * 1024;
/// Virtual slack given to the edge dispatcher after a doorbell ring so
/// the acceptor's wake lands on a batch tick (edge ticks are 50 µs).
const ACCEPT_SLACK_S: f64 = 0.000_2;

/// Builds the PROXY-style attribution line a connection carries as its
/// first bytes: `PROXY VSIM <tenant index> <client id>\r\n`.
pub fn encode_proxy(tenant: usize, client: u64) -> Vec<u8> {
    format!("PROXY VSIM {tenant} {client}\r\n").into_bytes()
}

/// Parses an [`encode_proxy`] attribution line back into
/// `(tenant index, client id, header length)`. `None` on anything that
/// is not a well-formed header — the edge sheds such connections rather
/// than guessing an attribution.
pub fn parse_proxy(bytes: &[u8]) -> Option<(usize, u64, usize)> {
    let end = bytes.windows(2).position(|w| w == b"\r\n")?;
    let line = std::str::from_utf8(&bytes[..end]).ok()?;
    let mut parts = line.split_whitespace();
    if parts.next()? != "PROXY" || parts.next()? != "VSIM" {
        return None;
    }
    let tenant = parts.next()?.parse().ok()?;
    let client = parts.next()?.parse().ok()?;
    if parts.next().is_some() {
        return None;
    }
    Some((tenant, client, end + 2))
}

/// Why the ingress refused or abandoned a connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngressShed {
    /// The tenant's *edge* token bucket was empty: shed at the front
    /// door, no node ever saw the request.
    EdgeRate,
    /// The attribution header did not parse; the connection cannot be
    /// charged to anyone, so it is refused.
    BadAttribution,
    /// No routable node (every node drained, failed, or held open by
    /// the detector).
    NoHealthyNode,
    /// A backend node's own admission shed it (its [`ShedReason`]).
    Node(ShedReason),
}

impl IngressShed {
    /// Stable label for stats surfaces.
    pub fn label(self) -> &'static str {
        match self {
            IngressShed::EdgeRate => "edge_rate",
            IngressShed::BadAttribution => "bad_attribution",
            IngressShed::NoHealthyNode => "no_healthy_node",
            IngressShed::Node(_) => "node",
        }
    }
}

/// Edge counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngressStats {
    /// Connections offered to the edge.
    pub offered: u64,
    /// Connections that passed edge admission and were routed to a
    /// node.
    pub accepted: u64,
    /// Connections shed by the edge rate bucket.
    pub shed_edge_rate: u64,
    /// Connections refused for an unparseable attribution header.
    pub shed_bad_attribution: u64,
    /// Connections (or failover re-dispatches) dropped because no node
    /// was routable.
    pub shed_no_node: u64,
    /// Requests a backend node's own admission shed.
    pub shed_node: u64,
    /// Failover re-dispatches to a surviving node after a declaration.
    pub redispatched: u64,
    /// Terminal completions delivered to the edge.
    pub completed: u64,
    /// Completions that arrived for an already-resolved request — the
    /// exactly-once tripwire; the bench gates it at zero.
    pub duplicates: u64,
    /// Times the parked acceptor virtine was woken by a doorbell ring.
    pub acceptor_wakes: u64,
}

impl IngressStats {
    /// Total edge-or-node sheds across every cause.
    pub fn shed(&self) -> u64 {
        self.shed_edge_rate + self.shed_bad_attribution + self.shed_no_node + self.shed_node
    }
}

/// The pristine record the edge keeps per accepted connection — enough
/// to re-run the request from scratch on another node.
#[derive(Debug)]
struct EdgeReq {
    tenant: TenantId,
    client: u64,
    virtine: VirtineId,
    args: Vec<u8>,
    arrival: f64,
    /// Node currently responsible and the seq its dispatcher assigned.
    node: usize,
    attempts: u32,
    /// Terminal: a completion was recorded or the request was shed
    /// during failover.
    resolved: bool,
    completion: Option<EdgeCompletion>,
}

/// A terminal completion as the edge saw it.
#[derive(Debug, Clone)]
pub struct EdgeCompletion {
    /// Edge-assigned sequence number (offer order).
    pub edge_seq: u64,
    /// Originating tenant.
    pub tenant: TenantId,
    /// Attributed client id.
    pub client: u64,
    /// Node that served the request.
    pub node: usize,
    /// Arrival at the edge (virtual seconds).
    pub arrival: f64,
    /// Completion instant on the serving node.
    pub finish: f64,
    /// Pure service time on the serving node.
    pub service: f64,
    /// Submissions it took (1 = no failover).
    pub attempts: u32,
    /// Whether any attempt crossed nodes after a declaration.
    pub evacuated: bool,
}

/// The settled outcome of an ingress run ([`Ingress::finish`]).
#[derive(Debug)]
pub struct IngressRun {
    /// Terminal completions in edge-arrival order.
    pub completions: Vec<EdgeCompletion>,
    /// Accepted requests that ended with neither a completion nor a
    /// shed — must be zero.
    pub lost: u64,
    /// Edge counters at the end of the run.
    pub stats: IngressStats,
    /// Node-level detector counters, when health was installed.
    pub health: Option<HealthStats>,
    /// The acceptor virtine's own completion (normal exit after the
    /// shutdown doorbell).
    pub acceptor: Completion,
}

/// The edge tier: accept-loop virtine, attribution, per-tenant edge
/// admission, health/load routing, and exactly-once failover over an
/// owned [`Cluster`].
pub struct Ingress {
    kernel: HostKernel,
    edge: Dispatcher,
    doorbell: SockId,
    cluster: Cluster,
    tenants: Vec<EdgeTenant>,
    reqs: Vec<EdgeReq>,
    /// `(node, node seq) → edge seq` for completion attribution.
    index: HashMap<(usize, u64), usize>,
    stats: IngressStats,
    trace: TraceCollector,
    now_s: f64,
}

struct EdgeTenant {
    id: TenantId,
    name: String,
    bucket: TokenBucket,
}

impl Ingress {
    /// An ingress over `nodes` backend nodes of `shards_per_node`
    /// shards each, with the acceptor virtine already parked on the
    /// doorbell.
    pub fn new(nodes: usize, shards_per_node: usize) -> Ingress {
        assert!(nodes >= 1, "need at least one backend node");
        let clock = Clock::new();
        let kernel = HostKernel::new(clock, None);
        kernel.net_listen(DOORBELL_PORT).expect("listen");
        let doorbell = kernel.net_connect(DOORBELL_PORT).expect("connect");
        let server = kernel
            .net_accept(DOORBELL_PORT)
            .expect("accept")
            .expect("pending doorbell");

        // The edge's own dispatcher: one shard, one tenant, one
        // long-lived virtine. The acceptor loops on a blocking recv —
        // empty doorbell parks it; any ring wakes it; a zero qword is
        // the shutdown pill.
        let wasp = Wasp::new(Hypervisor::kvm(kernel.clone()), WaspConfig::default());
        let mut edge = Dispatcher::new(
            wasp,
            DispatcherConfig {
                shards: 1,
                ..DispatcherConfig::default()
            },
        );
        let img = visa::assemble(
            "
.org 0x8000
accept:
  mov r0, 7            ; recv
  mov r1, 0x4000
  mov r2, 64
  mov r3, 0            ; flags: blocking
  out 0x1, r0
  mov r4, 0x4000
  load.q r5, [r4]      ; first qword of the line
  cmp r5, 0
  jne accept           ; attribution line: consume and re-park
  hlt                  ; zero qword: shutdown
",
        )
        .expect("acceptor image");
        let spec = VirtineSpec::new("acceptor", img, ACCEPTOR_MEM)
            .with_policy(HypercallMask::allowing(&[wasp::nr::RECV]))
            .with_snapshot(false);
        let acceptor = edge.register(spec).expect("register acceptor");
        let edge_tenant = edge.add_tenant(
            TenantProfile::new("ingress").with_mask(HypercallMask::allowing(&[wasp::nr::RECV])),
        );
        edge.submit(
            Request::new(edge_tenant, acceptor, 0.0).with_invocation(Invocation::with_conn(server)),
        )
        .expect("park acceptor");

        let mut cluster = Cluster::new();
        for _ in 0..nodes {
            cluster.add_node(Dispatcher::new(
                Wasp::new_kvm_default(),
                DispatcherConfig {
                    shards: shards_per_node,
                    ..DispatcherConfig::default()
                },
            ));
        }

        Ingress {
            kernel,
            edge,
            doorbell,
            cluster,
            tenants: Vec::new(),
            reqs: Vec::new(),
            index: HashMap::new(),
            stats: IngressStats::default(),
            trace: TraceCollector::disabled(),
            now_s: 0.0,
        }
    }

    /// Registers a virtine spec on *every* node, asserting the nodes
    /// hand back the same id (the edge keys its records by one id).
    pub fn register(&mut self, spec: VirtineSpec) -> VirtineId {
        let mut id = None;
        for i in 0..self.cluster.len() {
            let got = self
                .cluster
                .node_mut(i)
                .register(spec.clone())
                .expect("register on node");
            assert!(id.is_none() || id == Some(got), "node ids diverged");
            id = Some(got);
        }
        id.expect("at least one node")
    }

    /// Registers a tenant on every node with `profile`, and at the edge
    /// with a `rate_rps`/`burst` token bucket. Edge and node accounting
    /// are deliberately separate layers: the edge bucket is the
    /// platform's admission contract (shed before any node is touched),
    /// while the node profile bounds what one node will take on — keep
    /// node rates unlimited unless a test wants node-level sheds.
    pub fn add_tenant(&mut self, profile: TenantProfile, rate_rps: f64, burst: f64) -> TenantId {
        let mut id = None;
        for i in 0..self.cluster.len() {
            let got = self.cluster.node_mut(i).add_tenant(profile.clone());
            assert!(id.is_none() || id == Some(got), "tenant ids diverged");
            id = Some(got);
        }
        let id = id.expect("at least one node");
        assert_eq!(id.index(), self.tenants.len(), "edge table out of step");
        self.tenants.push(EdgeTenant {
            id,
            name: profile.name.clone(),
            bucket: TokenBucket::new(rate_rps, burst),
        });
        id
    }

    /// Installs the node-level failure detector on the cluster.
    pub fn set_health(&mut self, config: HealthConfig) {
        self.cluster.set_health(config);
    }

    /// Retains the last `capacity` finished edge traces (offer →
    /// route → complete/shed spans on the virtual clock).
    pub fn enable_tracing(&mut self, capacity: usize) {
        self.trace = TraceCollector::with_capacity(capacity);
    }

    /// The cluster underneath.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Mutable access to the cluster (fault planning, operator
    /// lifecycle, per-node knobs).
    pub fn cluster_mut(&mut self) -> &mut Cluster {
        &mut self.cluster
    }

    /// Edge counters.
    pub fn stats(&self) -> IngressStats {
        self.stats
    }

    /// Finished edge traces as JSON lines, newest first.
    pub fn trace_json(&self, limit: usize) -> String {
        self.trace.json_lines(None, limit, &|t| {
            self.tenants
                .get(t)
                .map_or_else(|| format!("tenant{t}"), |e| e.name.clone())
        })
    }

    fn ring_doorbell(&mut self, line: &[u8], at_s: f64) {
        let before = self.edge.stats().resumed;
        self.kernel.net_send(self.doorbell, line).expect("doorbell");
        self.edge.run_until(at_s + ACCEPT_SLACK_S);
        self.stats.acceptor_wakes += self.edge.stats().resumed - before;
    }

    /// Offers a connection to the edge at `arrival_s`: the doorbell
    /// wakes the parked acceptor with the attribution line, the edge
    /// parses the same line, charges the tenant's edge bucket, routes
    /// by health and load, and submits to the chosen node. Returns the
    /// edge sequence number, or why the connection was shed.
    ///
    /// `args` are the pristine request inputs; the edge keeps a copy so
    /// failover can re-run the request on another node. Attribution
    /// (`PROXY VSIM <tenant> <client>`) is prepended to the submitted
    /// args, so the backend sees exactly what a proxied connection
    /// would carry.
    pub fn offer(
        &mut self,
        tenant: TenantId,
        client: u64,
        virtine: VirtineId,
        args: &[u8],
        arrival_s: f64,
    ) -> Result<u64, IngressShed> {
        self.stats.offered += 1;
        self.advance(arrival_s.max(self.now_s));
        let edge_seq = self.reqs.len() as u64;
        let now = Cycles::from_micros(arrival_s * 1e6);

        // The connection's first bytes carry the attribution; the
        // acceptor virtine consumes them off the wire and the edge
        // parses its own copy — one line, two readers.
        let line = encode_proxy(tenant.index(), client);
        self.ring_doorbell(&line, arrival_s);
        let Some((t_idx, parsed_client, _)) = parse_proxy(&line) else {
            self.stats.shed_bad_attribution += 1;
            return Err(IngressShed::BadAttribution);
        };
        debug_assert_eq!((t_idx, parsed_client), (tenant.index(), client));

        if self.trace.enabled() {
            self.trace
                .begin(edge_seq, t_idx, virtine.into_raw() as u64, now);
            self.trace.span(
                edge_seq,
                "ingress_accept",
                format!("client={client}"),
                now,
                now,
            );
        }

        let edge_tenant = &mut self.tenants[t_idx];
        assert_eq!(edge_tenant.id, tenant, "unknown tenant");
        if !edge_tenant.bucket.admit(now) {
            self.stats.shed_edge_rate += 1;
            if self.trace.enabled() {
                self.trace.finish(edge_seq, "shed:edge_rate", now);
            }
            return Err(IngressShed::EdgeRate);
        }

        let Some(node) = self.cluster.route(arrival_s) else {
            self.stats.shed_no_node += 1;
            if self.trace.enabled() {
                self.trace.finish(edge_seq, "shed:no_healthy_node", now);
            }
            return Err(IngressShed::NoHealthyNode);
        };

        let mut full_args = line;
        full_args.extend_from_slice(args);
        let node_seq = match self
            .cluster
            .node_mut(node)
            .submit(Request::new(tenant, virtine, arrival_s).with_args(full_args.clone()))
        {
            Ok(seq) => seq,
            Err(reason) => {
                self.stats.shed_node += 1;
                if self.trace.enabled() {
                    self.trace
                        .finish(edge_seq, &format!("shed:node:{reason:?}"), now);
                }
                return Err(IngressShed::Node(reason));
            }
        };

        if self.trace.enabled() {
            self.trace.span(
                edge_seq,
                "ingress_route",
                format!("node={node} node_seq={node_seq}"),
                now,
                now,
            );
        }
        self.stats.accepted += 1;
        self.index.insert((node, node_seq), self.reqs.len());
        self.reqs.push(EdgeReq {
            tenant,
            client,
            virtine,
            args: args.to_vec(),
            arrival: arrival_s,
            node,
            attempts: 1,
            resolved: false,
            completion: None,
        });
        Ok(edge_seq)
    }

    /// Drains terminal completions from every node into the edge
    /// records. First terminal outcome wins; anything after it counts
    /// as a duplicate (the exactly-once tripwire).
    fn collect_completions(&mut self) {
        for node in 0..self.cluster.len() {
            for c in self.cluster.node_mut(node).take_completions() {
                let Some(&idx) = self.index.get(&(node, c.seq)) else {
                    continue;
                };
                let req = &mut self.reqs[idx];
                if req.resolved {
                    self.stats.duplicates += 1;
                    continue;
                }
                req.resolved = true;
                self.stats.completed += 1;
                req.completion = Some(EdgeCompletion {
                    edge_seq: idx as u64,
                    tenant: req.tenant,
                    client: req.client,
                    node,
                    arrival: req.arrival,
                    finish: c.finish,
                    service: c.service,
                    attempts: req.attempts,
                    evacuated: req.attempts > 1,
                });
                if self.trace.enabled() {
                    self.trace.span(
                        idx as u64,
                        "ingress_complete",
                        format!("node={node} attempts={}", req.attempts),
                        Cycles::from_micros(c.finish * 1e6),
                        Cycles::from_micros(c.finish * 1e6),
                    );
                    self.trace
                        .finish(idx as u64, "ok", Cycles::from_micros(c.finish * 1e6));
                }
            }
        }
    }

    /// Re-dispatches every unresolved request routed to a declared
    /// node. The node was fenced before this runs (all shards failed),
    /// so no copy of this work can still execute there — re-running the
    /// pristine inputs elsewhere cannot double-run. Each re-dispatch
    /// pays the cross-node transfer as arrival latency.
    fn redispatch_from(&mut self, failed: usize, t_s: f64) {
        let transfer_s = Cycles(costs::VSCHED_TRANSFER_CROSS_NODE).as_secs();
        let pending: Vec<usize> = self
            .reqs
            .iter()
            .enumerate()
            .filter(|(_, r)| !r.resolved && r.node == failed)
            .map(|(i, _)| i)
            .collect();
        let mut moved = 0;
        for idx in pending {
            let Some(dst) = self.cluster.evacuation_target(failed, t_s) else {
                self.reqs[idx].resolved = true;
                self.stats.shed_no_node += 1;
                if self.trace.enabled() {
                    self.trace.finish(
                        idx as u64,
                        "shed:no_healthy_node",
                        Cycles::from_micros(t_s * 1e6),
                    );
                }
                continue;
            };
            let req = &self.reqs[idx];
            let mut full_args = encode_proxy(req.tenant.index(), req.client);
            full_args.extend_from_slice(&req.args);
            let resubmit =
                Request::new(req.tenant, req.virtine, t_s + transfer_s).with_args(full_args);
            match self.cluster.node_mut(dst).submit(resubmit) {
                Ok(node_seq) => {
                    self.index.insert((dst, node_seq), idx);
                    let req = &mut self.reqs[idx];
                    req.node = dst;
                    req.attempts += 1;
                    moved += 1;
                    self.stats.redispatched += 1;
                    if self.trace.enabled() {
                        self.trace.span(
                            idx as u64,
                            "ingress_evacuate",
                            format!("from={failed} to={dst}"),
                            Cycles::from_micros(t_s * 1e6),
                            Cycles::from_micros((t_s + transfer_s) * 1e6),
                        );
                    }
                }
                Err(reason) => {
                    self.reqs[idx].resolved = true;
                    self.stats.shed_node += 1;
                    if self.trace.enabled() {
                        self.trace.finish(
                            idx as u64,
                            &format!("shed:node:{reason:?}"),
                            Cycles::from_micros(t_s * 1e6),
                        );
                    }
                }
            }
        }
        self.cluster.note_evacuations(moved);
    }

    /// Advances the whole tier — edge dispatcher and cluster — to
    /// virtual second `t_s`, collecting completions and handling any
    /// node declarations with cross-node failover. Returns the
    /// cluster's lifecycle actions.
    pub fn advance(&mut self, t_s: f64) -> Vec<ClusterAction> {
        if t_s <= self.now_s {
            return Vec::new();
        }
        self.edge.run_until(t_s);
        let actions = self.cluster.advance_to(t_s);
        // Completions first: work that finished before a declaration is
        // terminal and must not be re-run.
        self.collect_completions();
        for a in &actions {
            if let ClusterAction::NodeDeclared { node } = a {
                self.redispatch_from(*node, t_s);
            }
        }
        self.now_s = t_s;
        actions
    }

    /// Shuts the tier down: the doorbell gets the zero pill (the
    /// acceptor falls out of its loop and halts), every node settles,
    /// and the edge records reconcile. Panics if the acceptor did not
    /// exit normally — a parked or killed acceptor means the front door
    /// machinery is broken.
    pub fn finish(mut self) -> IngressRun {
        // Let in-flight work land before the pill, then stop the
        // acceptor and settle the backends.
        self.edge.run_until(self.now_s);
        self.kernel
            .net_send(self.doorbell, &0u64.to_le_bytes())
            .expect("shutdown pill");
        self.edge.run_to_idle();
        let acceptor = self
            .edge
            .take_completions()
            .pop()
            .expect("acceptor completion");
        assert!(acceptor.exit_normal, "acceptor died abnormally");

        self.cluster.settle();
        self.collect_completions();

        let mut completions: Vec<EdgeCompletion> = self
            .reqs
            .iter()
            .filter_map(|r| r.completion.clone())
            .collect();
        completions.sort_by_key(|c| c.edge_seq);
        let lost = self.reqs.iter().filter(|r| !r.resolved).count() as u64;
        IngressRun {
            completions,
            lost,
            stats: self.stats,
            health: self.cluster.health_stats(),
            acceptor,
        }
    }

    /// The Prometheus text rendering of the edge tier: ingress counters
    /// plus per-node routing, lifecycle, and suspicion gauges. Backend
    /// node internals are each node's own
    /// [`prometheus_text`](crate::dispatch::prometheus_text) surface;
    /// this is the layer above it.
    pub fn metrics(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let mut metric = |name: &str, kind: &str, help: &str, series: &[(String, u64)]| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} {kind}");
            for (labels, value) in series {
                let _ = writeln!(out, "{name}{labels} {value}");
            }
        };
        let s = self.stats;
        metric(
            "vsched_ingress_offered_total",
            "counter",
            "Connections offered to the edge",
            &[(String::new(), s.offered)],
        );
        metric(
            "vsched_ingress_accepted_total",
            "counter",
            "Connections that passed edge admission and were routed",
            &[(String::new(), s.accepted)],
        );
        metric(
            "vsched_ingress_edge_shed_total",
            "counter",
            "Connections shed at the edge, by cause",
            &[
                (r#"{reason="edge_rate"}"#.to_string(), s.shed_edge_rate),
                (
                    r#"{reason="bad_attribution"}"#.to_string(),
                    s.shed_bad_attribution,
                ),
                (r#"{reason="no_healthy_node"}"#.to_string(), s.shed_no_node),
                (r#"{reason="node"}"#.to_string(), s.shed_node),
            ],
        );
        metric(
            "vsched_ingress_redispatched_total",
            "counter",
            "Failover re-dispatches to a surviving node",
            &[(String::new(), s.redispatched)],
        );
        metric(
            "vsched_ingress_completed_total",
            "counter",
            "Terminal completions delivered to the edge",
            &[(String::new(), s.completed)],
        );
        metric(
            "vsched_ingress_duplicates_total",
            "counter",
            "Completions for an already-resolved request (must be 0)",
            &[(String::new(), s.duplicates)],
        );
        metric(
            "vsched_ingress_acceptor_wakes_total",
            "counter",
            "Doorbell rings that woke the parked acceptor virtine",
            &[(String::new(), s.acceptor_wakes)],
        );
        metric(
            "vsched_ingress_transfer_cycles_total",
            "counter",
            "Virtual cycles charged to cross-node transfers",
            &[(String::new(), self.cluster.stats().transfer_cycles)],
        );
        let routed: Vec<(String, u64)> = (0..self.cluster.len())
            .map(|i| (format!("{{node=\"{i}\"}}"), self.cluster.routed_to(i)))
            .collect();
        metric(
            "vsched_ingress_routed_total",
            "counter",
            "Connections routed per backend node",
            &routed,
        );
        let states: Vec<(String, u64)> = (0..self.cluster.len())
            .map(|i| {
                (
                    format!("{{node=\"{i}\"}}"),
                    self.cluster.node_state(i).gauge(),
                )
            })
            .collect();
        metric(
            "vsched_ingress_node_state",
            "gauge",
            "Lifecycle state per node: 0 = active, 1 = draining, \
             2 = drained, 3 = failed",
            &states,
        );
        if let Some(health) = self.cluster.node_health() {
            let suspicion: Vec<(String, u64)> = health
                .iter()
                .enumerate()
                .map(|(i, h)| {
                    (
                        format!("{{node=\"{i}\"}}"),
                        (h.suspicion * 1000.0).round() as u64,
                    )
                })
                .collect();
            metric(
                "vsched_ingress_suspicion",
                "gauge",
                "Node suspicion score in millis (silence / heartbeat interval x 1000)",
                &suspicion,
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn halt_spec(name: &str) -> VirtineSpec {
        let img = visa::assemble(".org 0x8000\n mov r0, 7\n hlt\n").unwrap();
        VirtineSpec::new(name, img, 64 * 1024).with_snapshot(false)
    }

    fn ingress(nodes: usize) -> (Ingress, TenantId, VirtineId) {
        let mut ing = Ingress::new(nodes, 2);
        let v = ing.register(halt_spec("f"));
        let t = ing.add_tenant(TenantProfile::new("app"), f64::INFINITY, f64::INFINITY);
        (ing, t, v)
    }

    #[test]
    fn proxy_attribution_round_trips() {
        let line = encode_proxy(3, 0xDEAD_BEEF);
        let (tenant, client, len) = parse_proxy(&line).unwrap();
        assert_eq!((tenant, client, len), (3, 0xDEAD_BEEF, line.len()));
        // Prefixed payload still parses: header length delimits it.
        let mut framed = line.clone();
        framed.extend_from_slice(b"GET / HTTP/1.0\r\n");
        let (_, _, len) = parse_proxy(&framed).unwrap();
        assert_eq!(&framed[len..], b"GET / HTTP/1.0\r\n");
        // Garbage is refused, not guessed.
        assert!(parse_proxy(b"PROXY TCP4 1 2\r\n").is_none());
        assert!(parse_proxy(b"PROXY VSIM 1\r\n").is_none());
        assert!(parse_proxy(b"PROXY VSIM 1 2 3\r\n").is_none());
        assert!(parse_proxy(b"no header at all").is_none());
    }

    #[test]
    fn connections_complete_across_nodes_and_the_acceptor_parks_between() {
        let (mut ing, t, v) = ingress(2);
        // One burst: queue depth grows as the burst lands, so
        // least-loaded routing alternates nodes.
        for i in 0..6 {
            ing.offer(t, i, v, b"", 0.001).unwrap();
        }
        ing.advance(0.05);
        // The front door was woken per ring and is parked again now.
        assert!(ing.stats().acceptor_wakes >= 1);
        let run = ing.finish();
        assert_eq!(run.completions.len(), 6);
        assert_eq!(run.lost, 0);
        assert_eq!(run.stats.duplicates, 0);
        assert!(run.acceptor.exit_normal);
        assert!(run.acceptor.resumes >= 1, "acceptor never parked");
        // Both nodes saw work: least-loaded routing spreads the burst.
        assert!(run.completions.iter().any(|c| c.node == 0));
        assert!(run.completions.iter().any(|c| c.node == 1));
    }

    #[test]
    fn edge_budget_exhaustion_sheds_before_any_node() {
        let (mut ing, t, v) = ingress(2);
        // Re-register a tight tenant: 2-token burst, slow refill.
        let tight = ing.add_tenant(TenantProfile::new("tight"), 10.0, 2.0);
        let mut shed = 0;
        for i in 0..5 {
            match ing.offer(tight, i, v, b"", 0.0001 * (i + 1) as f64) {
                Ok(_) => {}
                Err(IngressShed::EdgeRate) => shed += 1,
                Err(other) => panic!("unexpected shed {other:?}"),
            }
        }
        assert_eq!(shed, 3, "burst of 2 admits 2 of 5");
        // The shed connections never reached a node: node-side
        // submitted counts equal the accepted connections exactly.
        let node_submitted: u64 = (0..ing.cluster().len())
            .map(|i| ing.cluster().node(i).stats().submitted)
            .sum();
        assert_eq!(node_submitted, ing.stats().accepted);
        assert_eq!(ing.stats().shed_edge_rate, 3);
        let run = ing.finish();
        assert_eq!(run.completions.len(), 2);
        assert_eq!(run.lost, 0);
        let _ = t;
    }

    #[test]
    fn connection_arriving_during_node_drain_routes_around_it() {
        let (mut ing, t, v) = ingress(2);
        // Two pre-drain offers (empty-cluster ties route to node 0),
        // then drain node 0 mid-run.
        ing.offer(t, 0, v, b"", 0.001).unwrap();
        ing.offer(t, 1, v, b"", 0.002).unwrap();
        assert_eq!(ing.cluster().routed_to(0), 2, "ties route to node 0");
        ing.cluster_mut().drain_node(0);
        // Every connection arriving mid-drain lands on node 1.
        for i in 2..6 {
            ing.offer(t, i, v, b"", 0.003 + 0.001 * i as f64).unwrap();
        }
        assert_eq!(ing.cluster().routed_to(0), 2, "no routes after drain");
        assert_eq!(ing.cluster().routed_to(1), 4);
        let run = ing.finish();
        // Nothing was lost: in-flight work on the draining node
        // completed in place.
        assert_eq!(run.completions.len(), 6);
        assert_eq!(run.lost, 0);
    }

    #[test]
    fn declared_node_is_fenced_and_its_work_replayed_cross_node() {
        let (mut ing, t, _) = ingress(2);
        // Slow spins: work routed to node 0 is still queued when the
        // node wedges, so the replay path must actually fire.
        let slow = visa::assemble(
            "
.org 0x8000
  mov r1, 0xA000
  mov r2, 0
spin:
  store.q [r1], r2
  add r2, 1
  cmp r2, 40000
  jl spin
  hlt
",
        )
        .unwrap();
        let v = ing.register(VirtineSpec::new("slow", slow, 64 * 1024).with_snapshot(false));
        ing.set_health(HealthConfig::new().with_seed(0x1A6));
        // A burst at t=0.0002: least-loaded routing splits it between
        // the nodes, and every request needs milliseconds of spin.
        for i in 0..4 {
            ing.offer(t, i, v, b"", 0.0002).unwrap();
        }
        let on_zero = ing.cluster().routed_to(0);
        assert!(on_zero >= 1, "burst must land work on node 0");
        // Node 0 wedges before its first batch tick, queue still full;
        // the detector declares it; the edge replays its unresolved
        // work on node 1.
        ing.cluster_mut().hang_node_at(0.0003, 0, 0.200);
        let mut declared = false;
        for step in 1..=12 {
            for a in ing.advance(0.001 * step as f64) {
                declared |= matches!(a, ClusterAction::NodeDeclared { node: 0 });
            }
        }
        assert!(declared, "detector never declared the hung node");
        assert!(!ing.cluster().routable(0));
        assert!(ing.stats().redispatched >= 1, "replay path never fired");
        let run = ing.finish();
        assert_eq!(run.lost, 0, "fenced work must be replayed, not lost");
        assert_eq!(run.stats.duplicates, 0, "replay must not double-run");
        assert_eq!(run.completions.len(), 4);
        assert_eq!(run.health.unwrap().declared, 1);
        assert!(
            run.completions.iter().any(|c| c.evacuated && c.node == 1),
            "an evacuated request should finish on the survivor"
        );
    }

    #[test]
    fn metrics_surface_ingress_series() {
        let (mut ing, t, v) = ingress(2);
        ing.offer(t, 7, v, b"", 0.001).unwrap();
        ing.advance(0.01);
        let m = ing.metrics();
        assert!(m.contains("vsched_ingress_offered_total 1"));
        assert!(m.contains("vsched_ingress_accepted_total 1"));
        assert!(m.contains("vsched_ingress_routed_total{node=\"0\"}"));
        assert!(m.contains("vsched_ingress_node_state{node=\"1\"} 0"));
        assert!(m.contains("vsched_ingress_duplicates_total 0"));
    }

    #[test]
    fn edge_traces_record_the_route_and_completion() {
        let (mut ing, t, v) = ingress(2);
        ing.enable_tracing(16);
        ing.offer(t, 1, v, b"", 0.001).unwrap();
        ing.advance(0.01);
        let json = ing.trace_json(16);
        assert!(json.contains("ingress_accept"));
        assert!(json.contains("ingress_route"));
        assert!(json.contains("ingress_complete"));
    }
}
