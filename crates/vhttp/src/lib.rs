//! # vhttp — HTTP servers in virtines (§4.2 and §6.3)
//!
//! Two of the paper's experiments serve HTTP from virtual contexts:
//!
//! * the §4.2 **echo server** — a hand-written, protected-mode (no paging)
//!   guest whose startup milestones (reach C code, `recv()` return,
//!   `send()` complete) are Figure 4;
//! * the §6.3 **static-content server** — a mini-C connection handler,
//!   annotated per-connection, performing exactly the paper's seven host
//!   interactions per request: `recv`, `stat`, `open`, `read`, `write`,
//!   `close`, `exit` (Figure 13 measures its latency and throughput
//!   against a native handler).
//!
//! The native baseline handler performs the same system calls directly.
//!
//! [`dispatch`] scales the §6.3 server past the paper: concurrent
//! connections flow through the `vsched` dispatcher (sharded pools,
//! per-client-class admission control) instead of one blocking loop.
//! [`pipeline`] splits the request path into a parser virtine → handler
//! virtine chain over a cross-virtine channel, each stage under a
//! strictly narrower hypercall mask. [`ingress`] scales past one
//! dispatcher entirely: an edge tier (accept-loop virtine,
//! PROXY-style client attribution, per-tenant edge admission) routing
//! connections across a multi-node `vsched::cluster` with exactly-once
//! failover.

pub mod dispatch;
pub mod echo;
pub mod ingress;
pub mod pipeline;
pub mod server;

/// A parsed HTTP request line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Method (`GET`, ...).
    pub method: String,
    /// Request path.
    pub path: String,
}

/// Parses the request line of an HTTP request.
pub fn parse_request(bytes: &[u8]) -> Option<Request> {
    let text = std::str::from_utf8(bytes).ok()?;
    let line = text.lines().next()?;
    let mut parts = line.split_whitespace();
    let method = parts.next()?.to_string();
    let path = parts.next()?.to_string();
    Some(Request { method, path })
}

/// Builds a minimal HTTP/1.0 response.
pub fn build_response(status: u16, reason: &str, body: &[u8]) -> Vec<u8> {
    let mut out = format!(
        "HTTP/1.0 {status} {reason}\r\nContent-Length: {}\r\n\r\n",
        body.len()
    )
    .into_bytes();
    out.extend_from_slice(body);
    out
}

/// Extracts the body of an HTTP response.
pub fn response_body(resp: &[u8]) -> Option<&[u8]> {
    let pos = resp.windows(4).position(|w| w == b"\r\n\r\n")?;
    Some(&resp[pos + 4..])
}

/// Checks a response's status code.
pub fn response_status(resp: &[u8]) -> Option<u16> {
    let text = std::str::from_utf8(resp).ok()?;
    text.split_whitespace().nth(1)?.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_request_line() {
        let r = parse_request(b"GET /index.html HTTP/1.0\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/index.html");
        assert!(parse_request(b"garbage").is_none());
        assert!(parse_request(&[0xFF, 0xFE]).is_none());
    }

    #[test]
    fn builds_and_reparses_responses() {
        let resp = build_response(200, "OK", b"hello");
        assert_eq!(response_status(&resp), Some(200));
        assert_eq!(response_body(&resp), Some(b"hello".as_slice()));

        let nf = build_response(404, "Not Found", b"");
        assert_eq!(response_status(&nf), Some(404));
        assert_eq!(response_body(&nf), Some(b"".as_slice()));
    }
}
