//! The §4.2 HTTP echo server: a minimal protected-mode guest.
//!
//! "We implemented a simple HTTP echo server where each request is handled
//! in a new virtual context employing our minimal environment. … this
//! example does not actually require 64-bit mode, so we omit paging and
//! leave the context in protected mode." Milestones (Figure 4) are
//! recorded with `mark`: reaching the server's main entry (C code), the
//! return from `recv()`, and the completion of `send()`.

use hostsim::HostKernel;
use kvmsim::Hypervisor;
use vclock::{Clock, Cycles};
use visa::asm::Image;
use wasp::{ExitKind, HypercallMask, Invocation, VirtineSpec, Wasp, WaspConfig};

/// Milestone id: guest main entry reached (left-most point of Figure 4).
pub const MARK_MAIN: u8 = 11;
/// Milestone id: `recv()` returned.
pub const MARK_RECV: u8 = 12;
/// Milestone id: `send()` completed.
pub const MARK_SEND: u8 = 13;

/// Assembles the echo-server guest image: real → protected mode (no
/// paging), then hypercall-based I/O, exactly as §4.2's runtime does
/// ("hypercall-based I/O … obviates the need to emulate network devices").
pub fn echo_image() -> Image {
    let src = "
.org 0x8000
.equ HC_PORT, 0x1
start:
  lgdt gdt
  mov r0, 1
  mov cr0, r0          ; protected transition
  ljmp32 main32
main32:
  mark 11              ; server main entry (C code reached)
  mov sp, 0x180000
  mov r6, 7            ; recv(buf, 2048)
  mov r1, buf
  mov r2, 2048
  out HC_PORT, r6
  mark 12              ; recv() returned
  cmp r0, 0
  jle fail
  mov r6, 6            ; send(buf, n) -- echo it straight back
  mov r1, buf
  mov r2, r0
  out HC_PORT, r6
  mark 13              ; send() complete
  mov r6, 0            ; exit(0)
  mov r1, 0
  out HC_PORT, r6
fail:
  mov r6, 0
  mov r1, 1
  out HC_PORT, r6
gdt: .dq 0
buf: .space 2048
";
    visa::assemble(src).expect("echo image must assemble")
}

/// Figure 4 data for one request: cycles from virtine launch to each
/// milestone.
#[derive(Debug, Clone, Copy)]
pub struct EchoMilestones {
    /// Launch → guest main entry.
    pub to_main: Cycles,
    /// Launch → `recv()` return.
    pub to_recv: Cycles,
    /// Launch → `send()` completion.
    pub to_send: Cycles,
    /// Full request latency observed by the client.
    pub total: Cycles,
}

/// Runs `requests` echo requests, one fresh virtine per request, returning
/// per-request milestones. `noise_seed` reintroduces the host network-stack
/// variance responsible for Figure 4's error bars.
pub fn run_echo_server(requests: usize, noise_seed: Option<u64>) -> Vec<EchoMilestones> {
    let clock = Clock::new();
    let kernel = HostKernel::new(clock.clone(), noise_seed);
    let wasp = Wasp::new(Hypervisor::kvm(kernel.clone()), WaspConfig::default());
    let image = echo_image();
    // 2 MiB: protected-mode flat addresses, stack at 0x180000.
    let spec = VirtineSpec::new("echo", image, 2 * 1024 * 1024)
        .with_policy(HypercallMask::allowing(&[wasp::nr::SEND, wasp::nr::RECV]))
        .with_snapshot(false);
    let id = wasp.register(spec).expect("register echo");
    // Warm one shell so milestones measure context bring-up, not the
    // one-time `KVM_CREATE_VM` (the paper measures milestones inside an
    // already-provisioned context).
    wasp.prewarm(2 * 1024 * 1024, 1);

    const PORT: u16 = 8080;
    kernel.net_listen(PORT).expect("listen");

    let mut out = Vec::with_capacity(requests);
    let request = b"GET / HTTP/1.0\r\nHost: tinker\r\n\r\n";
    for _ in 0..requests {
        let client = kernel.net_connect(PORT).expect("connect");
        kernel.net_send(client, request).expect("send request");
        let conn = kernel
            .net_accept(PORT)
            .expect("accept")
            .expect("pending connection");

        let t0 = clock.now();
        let outcome = wasp
            .run(id, &[], Invocation::with_conn(conn))
            .expect("echo virtine");
        assert!(
            matches!(outcome.exit, ExitKind::Exited(0)),
            "echo failed: {:?}",
            outcome.exit
        );
        let echoed = kernel
            .net_recv(client, 4096)
            .expect("recv echo")
            .expect("echo data");
        let total = clock.now() - t0;
        assert_eq!(echoed, request, "echo must return the request verbatim");

        let find = |id: u8| {
            outcome
                .marks
                .iter()
                .find(|(m, _)| *m == id)
                .map(|(_, t)| *t - t0)
                .expect("milestone missing")
        };
        out.push(EchoMilestones {
            to_main: find(MARK_MAIN),
            to_recv: find(MARK_RECV),
            to_send: find(MARK_SEND),
            total,
        });
        kernel.net_close(client).ok();
        kernel.net_close(conn).ok();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn milestones_are_ordered_and_sub_millisecond() {
        let runs = run_echo_server(20, None);
        assert_eq!(runs.len(), 20);
        for m in &runs {
            assert!(m.to_main < m.to_recv);
            assert!(m.to_recv < m.to_send);
            assert!(m.to_send <= m.total);
            // §4.2: "we can achieve sub-millisecond HTTP response
            // latencies (<300 µs) without optimizations".
            assert!(
                m.total.as_micros() < 300.0,
                "echo latency {} µs",
                m.total.as_micros()
            );
        }
        // Main entry is ~10K cycles in the paper (protected mode, no
        // paging): check the right order of magnitude.
        let main_cycles = runs[0].to_main.get();
        assert!(
            (5_000..40_000).contains(&main_cycles),
            "main entry at {main_cycles} cycles"
        );
    }

    #[test]
    fn noise_widens_the_distribution() {
        let quiet = run_echo_server(30, None);
        let noisy = run_echo_server(30, Some(7));
        let spread = |runs: &[EchoMilestones]| {
            let xs: Vec<f64> = runs.iter().map(|m| m.total.get() as f64).collect();
            vclock::stats::std_dev(&xs)
        };
        assert!(spread(&noisy) > spread(&quiet));
    }
}
