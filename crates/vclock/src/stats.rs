//! Summary statistics used by the experiment harnesses.
//!
//! Includes the Tukey outlier filter the paper applies to Figure 3
//! (footnote 3: samples outside `[q25 − 1.5·IQR, q75 + 1.5·IQR]` are
//! removed) and the harmonic mean used for Figure 13's throughput.

/// Arithmetic mean of a sample; zero for an empty sample.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population standard deviation; zero for samples of size < 2.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64;
    var.sqrt()
}

/// Harmonic mean, as used for Figure 13's throughput aggregation;
/// zero for empty samples or samples containing zero.
pub fn harmonic_mean(xs: &[f64]) -> f64 {
    if xs.is_empty() || xs.iter().any(|&x| x <= 0.0) {
        return 0.0;
    }
    xs.len() as f64 / xs.iter().map(|x| 1.0 / x).sum::<f64>()
}

/// Linear-interpolated percentile (`p` in `[0, 100]`) of a sample.
///
/// # Panics
///
/// Panics if `xs` is empty.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    assert!(!xs.is_empty(), "percentile of empty sample");
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
    let rank = (p / 100.0) * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Minimum of a sample; `f64::INFINITY` for an empty sample.
pub fn min(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::INFINITY, f64::min)
}

/// Maximum of a sample; `f64::NEG_INFINITY` for an empty sample.
pub fn max(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::NEG_INFINITY, f64::max)
}

/// Removes outliers with Tukey's method, exactly as the paper's footnote 3:
/// keep samples on `[q25 − 1.5·IQR, q75 + 1.5·IQR]`.
pub fn tukey_filter(xs: &[f64]) -> Vec<f64> {
    if xs.len() < 4 {
        return xs.to_vec();
    }
    let q25 = percentile(xs, 25.0);
    let q75 = percentile(xs, 75.0);
    let iqr = q75 - q25;
    let lo = q25 - 1.5 * iqr;
    let hi = q75 + 1.5 * iqr;
    xs.iter().copied().filter(|&x| x >= lo && x <= hi).collect()
}

/// A compact summary of one experimental series.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Number of samples after filtering.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Minimum observed value.
    pub min: f64,
    /// Median (p50).
    pub median: f64,
    /// Maximum observed value.
    pub max: f64,
}

impl Summary {
    /// Summarizes `xs` without filtering.
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty.
    pub fn of(xs: &[f64]) -> Summary {
        assert!(!xs.is_empty(), "summary of empty sample");
        Summary {
            n: xs.len(),
            mean: mean(xs),
            std_dev: std_dev(xs),
            min: min(xs),
            median: percentile(xs, 50.0),
            max: max(xs),
        }
    }

    /// Summarizes `xs` after Tukey outlier removal (paper footnote 3).
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty.
    pub fn of_tukey(xs: &[f64]) -> Summary {
        let kept = tukey_filter(xs);
        Summary::of(&kept)
    }
}

// ---------------------------------------------------------------------------
// Log-linear histogram

/// Linear sub-buckets per power-of-two octave (`2^SUB_BITS`).
const SUB_BITS: u32 = 4;
/// Number of linear sub-buckets in each octave.
const SUBS: usize = 1 << SUB_BITS;
/// Total bucket count: one exact bucket per value below `SUBS`, then
/// `SUBS` linear sub-buckets for each remaining octave of the u64 range.
const BUCKETS: usize = SUBS + (64 - SUB_BITS as usize) * SUBS;

/// A log2-bucketed latency histogram over `u64` values (cycle counts).
///
/// Each power-of-two octave is split into 16 linear sub-buckets
/// (HDR-histogram style), bounding the relative quantile error at
/// `1/16 ≈ 6.25%` while keeping the footprint a fixed array of
/// counters — recording is a shift, a mask, and an increment, with no
/// allocation. This is the shared distribution type behind the
/// `vsched_*_cycles` Prometheus series and the bench bins' p50/p99
/// columns, replacing per-bin sort-and-index percentile math.
///
/// Bucket boundaries are defined so that every power of two is an exact
/// *inclusive upper* edge: the cumulative count at `2^k` counts exactly
/// the recorded values `v ≤ 2^k`, which makes the Prometheus
/// `_bucket{le="..."}` lines exact rather than approximate.
///
/// # Examples
///
/// ```
/// use vclock::stats::Histogram;
///
/// let mut h = Histogram::new();
/// for v in 1..=1000u64 {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 1000);
/// let p50 = h.quantile(0.5);
/// assert!((p50 as f64 - 500.0).abs() / 500.0 < 0.07);
/// ```
#[derive(Clone)]
pub struct Histogram {
    counts: Box<[u64; BUCKETS]>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count)
            .field("sum", &self.sum)
            .field("min", &self.min)
            .field("max", &self.max)
            .finish()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            counts: Box::new([0; BUCKETS]),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Bucket index for a recorded value. Values are shifted down by one
    /// so that bucket upper edges land *on* powers of two (inclusive),
    /// giving exact cumulative counts at every `le="2^k"` boundary.
    fn index(v: u64) -> usize {
        let x = v.saturating_sub(1);
        if x < SUBS as u64 {
            x as usize
        } else {
            let m = 63 - x.leading_zeros();
            let sub = ((x >> (m - SUB_BITS)) & (SUBS as u64 - 1)) as usize;
            SUBS + ((m - SUB_BITS) as usize) * SUBS + sub
        }
    }

    /// Inclusive value range `(lo, hi)` covered by bucket `idx`.
    fn bounds(idx: usize) -> (u64, u64) {
        if idx < SUBS {
            // Exact buckets: idx 0 holds {0, 1}, idx i holds {i + 1}.
            (if idx == 0 { 0 } else { idx as u64 + 1 }, idx as u64 + 1)
        } else {
            let e = idx - SUBS;
            let m = (e / SUBS) as u32 + SUB_BITS;
            let sub = (e % SUBS) as u64;
            let width = 1u64 << (m - SUB_BITS);
            let lo = (1u64 << m) + sub * width;
            (lo + 1, lo.saturating_add(width))
        }
    }

    /// Records one observation.
    pub fn record(&mut self, v: u64) {
        self.counts[Histogram::index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Smallest recorded value; zero when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value; zero when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of recorded values; zero when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimated quantile (`q` in `[0, 1]`) with linear interpolation
    /// inside the containing bucket; relative error ≤ 6.25%. Returns
    /// zero when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            seen += c;
            if seen >= rank {
                let (lo, hi) = Histogram::bounds(idx);
                // Interpolate within the bucket, clamped to the observed
                // extremes so single-bucket tails stay exact.
                let into = (rank - (seen - c)) as f64 / c as f64;
                let v = lo as f64 + (hi - lo) as f64 * into;
                return (v.round() as u64).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Cumulative bucket counts at power-of-two upper bounds, for
    /// Prometheus `_bucket{le="..."}` rendering.
    ///
    /// Returns `(upper_bound, cumulative_count)` pairs covering the
    /// recorded range: the first bound is the smallest power of two ≥
    /// the minimum recorded value and the last is the smallest power of
    /// two ≥ the maximum (so its count equals [`Histogram::count`]).
    /// Counts are exact (`v ≤ bound`), not bucket approximations. The
    /// `+Inf` bucket is implicit — renderers append it with the total
    /// count. Empty histograms produce a single `(1, 0)` bound.
    pub fn power_of_two_buckets(&self) -> Vec<(u64, u64)> {
        if self.count == 0 {
            return vec![(1, 0)];
        }
        let lo_pow = 64 - self.min().max(1).saturating_sub(1).leading_zeros() as u64;
        let hi_pow = 64 - self.max.max(1).saturating_sub(1).leading_zeros() as u64;
        let mut out = Vec::with_capacity((hi_pow - lo_pow + 1) as usize);
        let mut cum = 0u64;
        let mut idx = 0usize;
        for p in lo_pow..=hi_pow.min(63) {
            let bound = 1u64 << p;
            // Buckets are ordered by value, and every power of two is a
            // bucket upper edge, so accumulate whole buckets up to it.
            while idx < BUCKETS && Histogram::bounds(idx).1 <= bound {
                cum += self.counts[idx];
                idx += 1;
            }
            out.push((bound, cum));
        }
        if hi_pow > 63 {
            out.push((u64::MAX, self.count));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std_of_known_sample() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((std_dev(&xs) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_sample_degenerates_gracefully() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[]), 0.0);
        assert_eq!(harmonic_mean(&[]), 0.0);
    }

    #[test]
    fn harmonic_mean_of_rates() {
        let xs = [1.0, 2.0, 4.0];
        let hm = harmonic_mean(&xs);
        assert!((hm - 3.0 / (1.0 + 0.5 + 0.25)).abs() < 1e-12);
    }

    #[test]
    fn harmonic_mean_rejects_nonpositive() {
        assert_eq!(harmonic_mean(&[1.0, 0.0]), 0.0);
        assert_eq!(harmonic_mean(&[1.0, -2.0]), 0.0);
    }

    #[test]
    fn percentile_endpoints() {
        let xs = [3.0, 1.0, 2.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 50.0), 2.0);
        assert_eq!(percentile(&xs, 100.0), 3.0);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [0.0, 10.0];
        assert!((percentile(&xs, 25.0) - 2.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "percentile of empty sample")]
    fn percentile_empty_panics() {
        percentile(&[], 50.0);
    }

    #[test]
    fn tukey_strips_the_scheduler_outlier() {
        let mut xs: Vec<f64> = (0..100).map(|i| 1000.0 + (i % 7) as f64).collect();
        xs.push(250_000.0); // A descheduling event.
        let kept = tukey_filter(&xs);
        assert_eq!(kept.len(), 100);
        assert!(kept.iter().all(|&x| x < 2000.0));
    }

    #[test]
    fn tukey_keeps_small_samples_verbatim() {
        let xs = [1.0, 100.0, 10_000.0];
        assert_eq!(tukey_filter(&xs), xs.to_vec());
    }

    #[test]
    fn summary_matches_components() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let s = Summary::of(&xs);
        assert_eq!(s.n, 4);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.median - 2.5).abs() < 1e-12);
    }

    #[test]
    fn histogram_small_values_are_exact() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 3, 4, 5, 6, 7, 8] {
            h.record(v);
        }
        assert_eq!(h.count(), 8);
        assert_eq!(h.sum(), 36);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 8);
        // Values ≤ 16 land in exact single-value buckets.
        assert_eq!(h.quantile(0.5), 4);
        assert_eq!(h.quantile(1.0), 8);
        assert_eq!(h.quantile(0.0), 1);
    }

    #[test]
    fn histogram_quantile_error_is_bounded() {
        let mut h = Histogram::new();
        for v in 1..=100_000u64 {
            h.record(v);
        }
        for (q, want) in [(0.5, 50_000.0), (0.9, 90_000.0), (0.99, 99_000.0)] {
            let got = h.quantile(q) as f64;
            assert!(
                (got - want).abs() / want < 0.0625 + 1e-3,
                "q={q}: got {got}, want {want}"
            );
        }
    }

    #[test]
    fn histogram_matches_sorted_percentile_within_tolerance() {
        // The bench bins replaced sort-and-index percentiles with this
        // histogram; pin the agreement on a skewed sample.
        let xs: Vec<u64> = (0..5_000u64).map(|i| (i * i) % 700_000 + 1).collect();
        let mut h = Histogram::new();
        let mut f: Vec<f64> = Vec::new();
        for &x in &xs {
            h.record(x);
            f.push(x as f64);
        }
        for p in [50.0, 90.0, 99.0] {
            let exact = percentile(&f, p);
            let est = h.quantile(p / 100.0) as f64;
            assert!(
                (est - exact).abs() / exact < 0.07,
                "p{p}: est {est}, exact {exact}"
            );
        }
    }

    #[test]
    fn histogram_merge_sums_counts() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in 1..=10u64 {
            a.record(v * 100);
            b.record(v * 1_000);
        }
        let (asum, bsum) = (a.sum(), b.sum());
        a.merge(&b);
        assert_eq!(a.count(), 20);
        assert_eq!(a.sum(), asum + bsum);
        assert_eq!(a.max(), 10_000);
        assert_eq!(a.min(), 100);
    }

    #[test]
    fn histogram_power_of_two_buckets_are_exact_and_cumulative() {
        let mut h = Histogram::new();
        let vals = [1u64, 2, 3, 4, 5, 16, 17, 100, 1_000, 1_024, 1_025];
        for &v in &vals {
            h.record(v);
        }
        let buckets = h.power_of_two_buckets();
        // Cumulative counts at each power of two must exactly match
        // the number of recorded values ≤ that bound.
        for &(bound, cum) in &buckets {
            let want = vals.iter().filter(|&&v| v <= bound).count() as u64;
            assert_eq!(cum, want, "bound {bound}");
        }
        // Monotone, and the last bound covers everything.
        for w in buckets.windows(2) {
            assert!(w[0].0 < w[1].0 && w[0].1 <= w[1].1);
        }
        assert_eq!(buckets.last().unwrap().1, h.count());
        assert_eq!(buckets.last().unwrap().0, 2_048);
    }

    #[test]
    fn histogram_empty_degenerates_gracefully() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.power_of_two_buckets(), vec![(1, 0)]);
    }

    #[test]
    fn histogram_zero_and_huge_values() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), u64::MAX);
        let buckets = h.power_of_two_buckets();
        assert_eq!(buckets.first().unwrap(), &(1, 1));
        assert_eq!(buckets.last().unwrap(), &(u64::MAX, 2));
    }
}
