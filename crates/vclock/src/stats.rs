//! Summary statistics used by the experiment harnesses.
//!
//! Includes the Tukey outlier filter the paper applies to Figure 3
//! (footnote 3: samples outside `[q25 − 1.5·IQR, q75 + 1.5·IQR]` are
//! removed) and the harmonic mean used for Figure 13's throughput.

/// Arithmetic mean of a sample; zero for an empty sample.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population standard deviation; zero for samples of size < 2.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64;
    var.sqrt()
}

/// Harmonic mean, as used for Figure 13's throughput aggregation;
/// zero for empty samples or samples containing zero.
pub fn harmonic_mean(xs: &[f64]) -> f64 {
    if xs.is_empty() || xs.iter().any(|&x| x <= 0.0) {
        return 0.0;
    }
    xs.len() as f64 / xs.iter().map(|x| 1.0 / x).sum::<f64>()
}

/// Linear-interpolated percentile (`p` in `[0, 100]`) of a sample.
///
/// # Panics
///
/// Panics if `xs` is empty.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    assert!(!xs.is_empty(), "percentile of empty sample");
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
    let rank = (p / 100.0) * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Minimum of a sample; `f64::INFINITY` for an empty sample.
pub fn min(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::INFINITY, f64::min)
}

/// Maximum of a sample; `f64::NEG_INFINITY` for an empty sample.
pub fn max(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::NEG_INFINITY, f64::max)
}

/// Removes outliers with Tukey's method, exactly as the paper's footnote 3:
/// keep samples on `[q25 − 1.5·IQR, q75 + 1.5·IQR]`.
pub fn tukey_filter(xs: &[f64]) -> Vec<f64> {
    if xs.len() < 4 {
        return xs.to_vec();
    }
    let q25 = percentile(xs, 25.0);
    let q75 = percentile(xs, 75.0);
    let iqr = q75 - q25;
    let lo = q25 - 1.5 * iqr;
    let hi = q75 + 1.5 * iqr;
    xs.iter().copied().filter(|&x| x >= lo && x <= hi).collect()
}

/// A compact summary of one experimental series.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Number of samples after filtering.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Minimum observed value.
    pub min: f64,
    /// Median (p50).
    pub median: f64,
    /// Maximum observed value.
    pub max: f64,
}

impl Summary {
    /// Summarizes `xs` without filtering.
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty.
    pub fn of(xs: &[f64]) -> Summary {
        assert!(!xs.is_empty(), "summary of empty sample");
        Summary {
            n: xs.len(),
            mean: mean(xs),
            std_dev: std_dev(xs),
            min: min(xs),
            median: percentile(xs, 50.0),
            max: max(xs),
        }
    }

    /// Summarizes `xs` after Tukey outlier removal (paper footnote 3).
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty.
    pub fn of_tukey(xs: &[f64]) -> Summary {
        let kept = tukey_filter(xs);
        Summary::of(&kept)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std_of_known_sample() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((std_dev(&xs) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_sample_degenerates_gracefully() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[]), 0.0);
        assert_eq!(harmonic_mean(&[]), 0.0);
    }

    #[test]
    fn harmonic_mean_of_rates() {
        let xs = [1.0, 2.0, 4.0];
        let hm = harmonic_mean(&xs);
        assert!((hm - 3.0 / (1.0 + 0.5 + 0.25)).abs() < 1e-12);
    }

    #[test]
    fn harmonic_mean_rejects_nonpositive() {
        assert_eq!(harmonic_mean(&[1.0, 0.0]), 0.0);
        assert_eq!(harmonic_mean(&[1.0, -2.0]), 0.0);
    }

    #[test]
    fn percentile_endpoints() {
        let xs = [3.0, 1.0, 2.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 50.0), 2.0);
        assert_eq!(percentile(&xs, 100.0), 3.0);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [0.0, 10.0];
        assert!((percentile(&xs, 25.0) - 2.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "percentile of empty sample")]
    fn percentile_empty_panics() {
        percentile(&[], 50.0);
    }

    #[test]
    fn tukey_strips_the_scheduler_outlier() {
        let mut xs: Vec<f64> = (0..100).map(|i| 1000.0 + (i % 7) as f64).collect();
        xs.push(250_000.0); // A descheduling event.
        let kept = tukey_filter(&xs);
        assert_eq!(kept.len(), 100);
        assert!(kept.iter().all(|&x| x < 2000.0));
    }

    #[test]
    fn tukey_keeps_small_samples_verbatim() {
        let xs = [1.0, 100.0, 10_000.0];
        assert_eq!(tukey_filter(&xs), xs.to_vec());
    }

    #[test]
    fn summary_matches_components() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let s = Summary::of(&xs);
        assert_eq!(s.n, 4);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.median - 2.5).abs() < 1e-12);
    }
}
