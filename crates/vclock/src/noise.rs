//! Deterministic measurement-noise model.
//!
//! The paper's figures carry error bars from host scheduling events and the
//! host network stack (§4.2 notes "several outliers in all cases, likely due
//! to host kernel scheduling events"). This module reproduces that texture
//! with a seeded RNG so experiments stay bit-for-bit reproducible:
//!
//! * multiplicative jitter around each charged cost, and
//! * rare, large "scheduling event" outliers, which experiment harnesses can
//!   strip with the same Tukey filter the paper uses (footnote 3).

use crate::rng::Rng;

/// Default probability of a host-scheduling outlier per sampled value.
const OUTLIER_PROBABILITY: f64 = 0.004;

/// A seeded jitter source.
///
/// # Examples
///
/// ```
/// use vclock::noise::NoiseModel;
///
/// let mut a = NoiseModel::seeded(7);
/// let mut b = NoiseModel::seeded(7);
/// assert_eq!(a.jitter(10_000, 0.02), b.jitter(10_000, 0.02));
/// ```
#[derive(Debug, Clone)]
pub struct NoiseModel {
    rng: Rng,
    enabled: bool,
}

impl NoiseModel {
    /// Creates a noise model from a seed.
    pub fn seeded(seed: u64) -> NoiseModel {
        NoiseModel {
            rng: Rng::seeded(seed),
            enabled: true,
        }
    }

    /// Creates a disabled model: every call returns its input unchanged.
    /// Used by unit tests and by experiments that want exact minima
    /// (e.g. Table 1 reports *minimum* observed latencies).
    pub fn disabled() -> NoiseModel {
        NoiseModel {
            rng: Rng::seeded(0),
            enabled: false,
        }
    }

    /// Returns whether jitter is applied.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Applies symmetric multiplicative jitter of relative magnitude
    /// `spread` (e.g. `0.02` for ±2 %) to `base` cycles.
    pub fn jitter(&mut self, base: u64, spread: f64) -> u64 {
        if !self.enabled || base == 0 || spread <= 0.0 {
            return base;
        }
        let f = 1.0 + self.rng.range_f64(-spread, spread);
        ((base as f64) * f).round().max(0.0) as u64
    }

    /// Samples a host-scheduling outlier: with small probability returns an
    /// extra delay of 10–80 µs worth of cycles (a descheduling event),
    /// otherwise zero.
    pub fn scheduling_outlier(&mut self) -> u64 {
        if !self.enabled {
            return 0;
        }
        if self.rng.bool(OUTLIER_PROBABILITY) {
            // 10–80 µs at 2.69 GHz.
            self.rng.range_u64(26_900, 215_200)
        } else {
            0
        }
    }

    /// Network-stack variance: heavier-tailed jitter used for loopback
    /// socket operations (Figure 4's large standard deviations).
    pub fn net_jitter(&mut self, base: u64) -> u64 {
        if !self.enabled {
            return base;
        }
        // Log-normal-ish: usually close to base, occasionally 2-4x.
        let roll: f64 = self.rng.f64();
        let factor = if roll < 0.85 {
            self.rng.range_f64(0.9, 1.3)
        } else if roll < 0.98 {
            self.rng.range_f64(1.3, 2.2)
        } else {
            self.rng.range_f64(2.2, 4.0)
        };
        ((base as f64) * factor).round() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_model_is_identity() {
        let mut n = NoiseModel::disabled();
        assert_eq!(n.jitter(1234, 0.5), 1234);
        assert_eq!(n.scheduling_outlier(), 0);
        assert_eq!(n.net_jitter(999), 999);
        assert!(!n.is_enabled());
    }

    #[test]
    fn same_seed_same_sequence() {
        let mut a = NoiseModel::seeded(42);
        let mut b = NoiseModel::seeded(42);
        for _ in 0..100 {
            assert_eq!(a.jitter(50_000, 0.05), b.jitter(50_000, 0.05));
            assert_eq!(a.scheduling_outlier(), b.scheduling_outlier());
            assert_eq!(a.net_jitter(10_000), b.net_jitter(10_000));
        }
    }

    #[test]
    fn jitter_stays_within_spread() {
        let mut n = NoiseModel::seeded(1);
        for _ in 0..1000 {
            let v = n.jitter(100_000, 0.02);
            assert!((98_000..=102_000).contains(&v), "jitter escaped: {v}");
        }
    }

    #[test]
    fn outliers_are_rare_but_present() {
        let mut n = NoiseModel::seeded(3);
        let mut hits = 0;
        for _ in 0..20_000 {
            if n.scheduling_outlier() > 0 {
                hits += 1;
            }
        }
        assert!((10..300).contains(&hits), "outlier count {hits}");
    }

    #[test]
    fn net_jitter_is_heavier_tailed_than_base() {
        let mut n = NoiseModel::seeded(9);
        let base = 10_000u64;
        let samples: Vec<u64> = (0..5_000).map(|_| n.net_jitter(base)).collect();
        let max = *samples.iter().max().unwrap();
        let min = *samples.iter().min().unwrap();
        assert!(max > 2 * base, "expected heavy tail, max={max}");
        assert!(min >= (base as f64 * 0.9) as u64 - 1);
    }
}
