//! Virtual time-keeping for the virtines reproduction.
//!
//! Every component of the simulated stack (the guest CPU, the simulated host
//! kernel, the KVM-shaped hypervisor interface, and the Wasp runtime) charges
//! its work to a single shared [`Clock`] measured in CPU cycles. The
//! calibration constants in [`costs`] anchor the simulated machine to the
//! paper's `tinker` testbed (AMD EPYC 7281 "Naples", 16 cores @ 2.69 GHz),
//! so results are reported in the same units the paper uses: cycles, or
//! microseconds at 2.69 GHz.
//!
//! The clock is deliberately *virtual*: experiments are deterministic and
//! reproducible bit-for-bit, independent of the machine running the
//! simulation. A seeded [`noise::NoiseModel`] reintroduces the measurement
//! jitter (host scheduling events, network-stack variance) that the paper's
//! figures display as error bars, without sacrificing reproducibility.

pub mod costs;
pub mod noise;
pub mod rng;
pub mod stats;

use std::cell::Cell;
use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::rc::Rc;

/// Clock frequency of the paper's `tinker` machine in GHz (AMD EPYC 7281).
pub const TINKER_GHZ: f64 = 2.69;

/// A quantity of CPU cycles on the simulated machine.
///
/// `Cycles` is an additive newtype over `u64`. Use [`Cycles::as_micros`] to
/// convert to wall-clock time at the calibrated 2.69 GHz frequency.
///
/// # Examples
///
/// ```
/// use vclock::Cycles;
///
/// let c = Cycles(2_690);
/// assert!((c.as_micros() - 1.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycles(pub u64);

impl Cycles {
    /// The zero duration.
    pub const ZERO: Cycles = Cycles(0);

    /// Returns the raw cycle count.
    pub fn get(self) -> u64 {
        self.0
    }

    /// Converts cycles to microseconds at the `tinker` frequency (2.69 GHz).
    pub fn as_micros(self) -> f64 {
        self.0 as f64 / (TINKER_GHZ * 1_000.0)
    }

    /// Converts cycles to milliseconds at the `tinker` frequency.
    pub fn as_millis(self) -> f64 {
        self.as_micros() / 1_000.0
    }

    /// Converts cycles to seconds at the `tinker` frequency.
    pub fn as_secs(self) -> f64 {
        self.as_micros() / 1_000_000.0
    }

    /// Builds a cycle count from microseconds at the `tinker` frequency.
    pub fn from_micros(us: f64) -> Cycles {
        Cycles((us * TINKER_GHZ * 1_000.0).round() as u64)
    }

    /// Saturating subtraction; clamps at zero instead of wrapping.
    pub fn saturating_sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(rhs.0))
    }
}

impl Add for Cycles {
    type Output = Cycles;
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl AddAssign for Cycles {
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycles {
    type Output = Cycles;
    fn sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 - rhs.0)
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cyc", self.0)
    }
}

/// A monotonically increasing virtual cycle counter shared by every layer of
/// the simulated stack.
///
/// The clock is cheap to clone (`Rc` internally) so the guest CPU, the
/// simulated kernel, and the Wasp runtime can all advance the same timeline.
/// The simulation is single-threaded by design; "asynchronous" background
/// work (e.g. Wasp's asynchronous shell cleaning) is modelled by *not*
/// charging its cycles to this clock (see `wasp::pool`).
///
/// # Examples
///
/// ```
/// use vclock::{Clock, Cycles};
///
/// let clock = Clock::new();
/// let t0 = clock.now();
/// clock.advance(Cycles(100));
/// assert_eq!(clock.now() - t0, Cycles(100));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Clock {
    cycles: Rc<Cell<u64>>,
}

impl Clock {
    /// Creates a clock starting at cycle zero.
    pub fn new() -> Clock {
        Clock::default()
    }

    /// Returns the current timestamp.
    pub fn now(&self) -> Cycles {
        Cycles(self.cycles.get())
    }

    /// Advances the clock by `delta` cycles.
    pub fn advance(&self, delta: Cycles) {
        self.cycles.set(self.cycles.get() + delta.0);
    }

    /// Advances the clock by a raw cycle count.
    pub fn tick(&self, delta: u64) {
        self.cycles.set(self.cycles.get() + delta);
    }

    /// Measures the cycles consumed by `f` on this clock.
    pub fn time<T>(&self, f: impl FnOnce() -> T) -> (T, Cycles) {
        let t0 = self.now();
        let out = f();
        (out, self.now() - t0)
    }
}

/// A labelled span of virtual time, used to attribute costs in experiment
/// breakdowns (e.g. Table 1's per-component boot costs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Human-readable label for the span (e.g. `"protected transition"`).
    pub label: String,
    /// Start timestamp.
    pub start: Cycles,
    /// End timestamp.
    pub end: Cycles,
}

impl Span {
    /// Duration of the span.
    pub fn duration(&self) -> Cycles {
        self.end - self.start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_starts_at_zero() {
        let c = Clock::new();
        assert_eq!(c.now(), Cycles::ZERO);
    }

    #[test]
    fn clock_advances_monotonically() {
        let c = Clock::new();
        c.advance(Cycles(5));
        c.tick(7);
        assert_eq!(c.now(), Cycles(12));
    }

    #[test]
    fn clones_share_the_timeline() {
        let a = Clock::new();
        let b = a.clone();
        a.advance(Cycles(10));
        b.advance(Cycles(32));
        assert_eq!(a.now(), Cycles(42));
        assert_eq!(b.now(), Cycles(42));
    }

    #[test]
    fn cycles_micros_round_trip() {
        let c = Cycles(123_456);
        let us = c.as_micros();
        assert_eq!(Cycles::from_micros(us), c);
    }

    #[test]
    fn cycles_unit_conversions_are_consistent() {
        let c = Cycles(2_690_000_000);
        assert!((c.as_secs() - 1.0).abs() < 1e-9);
        assert!((c.as_millis() - 1_000.0).abs() < 1e-6);
    }

    #[test]
    fn time_measures_closure_cost() {
        let c = Clock::new();
        let (val, d) = c.time(|| {
            c.advance(Cycles(99));
            "done"
        });
        assert_eq!(val, "done");
        assert_eq!(d, Cycles(99));
    }

    #[test]
    fn saturating_sub_clamps() {
        assert_eq!(Cycles(3).saturating_sub(Cycles(10)), Cycles::ZERO);
    }

    #[test]
    fn span_duration() {
        let s = Span {
            label: "x".into(),
            start: Cycles(10),
            end: Cycles(25),
        };
        assert_eq!(s.duration(), Cycles(15));
    }
}
