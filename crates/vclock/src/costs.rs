//! Calibrated cycle-cost model for the simulated `tinker` machine.
//!
//! Every constant is anchored to a number the paper reports (cited in the
//! doc comment) or to a widely measured property of the referenced hardware
//! generation. Composite costs in the paper (e.g. Table 1's 28 109-cycle
//! identity-map row) are *not* single constants here: they emerge from the
//! simulator executing the same sequence of operations the real boot code
//! executes, with these per-operation costs.
//!
//! Grouping:
//!
//! * `GUEST_*` — per-instruction costs charged by the `visa` interpreter.
//! * `MODE_*`  — costs of x86 mode-transition events (Table 1).
//! * `KVM_*` / `VM*` — hypervisor-interface costs (Figures 2 and 8).
//! * `HOST_*` — host-OS abstraction costs (Figures 2 and 8).
//! * `SGX_*`  — SGX comparison points (Figure 8).
//! * `MEM_*`  — memory-bandwidth model (Figure 12).

/// Cost of a simple ALU instruction (`add`, `sub`, `and`, `mov r,r`, ...).
pub const GUEST_ALU: u64 = 1;

/// Cost of an integer multiply.
pub const GUEST_MUL: u64 = 3;

/// Cost of an integer divide/modulo (x86 `div` latency class).
pub const GUEST_DIV: u64 = 22;

/// Cost of a load or store that hits the simulated TLB/cache path.
pub const GUEST_MEM: u64 = 4;

/// Additional cost of a hardware page-table walk on a simulated TLB miss
/// (three levels with 2 MB pages; the paper notes "12KB of memory
/// references" for the full identity map, §4.2).
pub const GUEST_TLB_MISS_WALK: u64 = 40;

/// Cost of a not-taken conditional branch.
pub const GUEST_BRANCH: u64 = 1;

/// Extra cost when a branch is taken (front-end redirect).
pub const GUEST_BRANCH_TAKEN: u64 = 1;

/// Cost of `call`/`ret` (stack engine assisted).
pub const GUEST_CALLRET: u64 = 2;

/// Cost of `push`/`pop`.
pub const GUEST_STACK: u64 = 2;

/// Cost of an `in`/`out` port instruction *before* the VM exit it triggers.
pub const GUEST_PIO: u64 = 20;

/// Cost of `hlt` before the VM exit it triggers.
pub const GUEST_HLT: u64 = 5;

/// Cost of loading the GDT from 16-bit real mode.
///
/// Table 1 reports "Load 32-bit GDT (lgdt)" at 4 118 cycles; the real-mode
/// `lgdt` is slow because the descriptor load is uncached and serializing.
pub const MODE_LGDT_REAL: u64 = 4_050;

/// Cost of re-loading the GDT from protected mode.
///
/// Table 1 reports "Long transition (lgdt)" at 681 cycles.
pub const MODE_LGDT_PROT: u64 = 640;

/// Cost of flipping CR0.PE (the protected-mode transition).
///
/// Table 1 reports "Protected transition" at 3 217 cycles — a serializing
/// control-register write that drains the pipeline and re-checks segment
/// state. The paper calls this cost "a bit surprising" for a single bit flip.
pub const MODE_CR0_PE: u64 = 3_150;

/// Cost of a far jump that switches to 32-bit code.
///
/// Table 1 reports "Jump to 32-bit (ljmp)" at 175 cycles.
pub const MODE_LJMP32: u64 = 170;

/// Cost of a far jump that switches to 64-bit code.
///
/// Table 1 reports "Jump to 64-bit (ljmp)" at 190 cycles.
pub const MODE_LJMP64: u64 = 185;

/// Cost of a write to CR3 (page-table base) including TLB shootdown.
pub const MODE_CR3_WRITE: u64 = 230;

/// Cost of a write to CR4 (PAE enable).
pub const MODE_CR4_WRITE: u64 = 150;

/// Cost of `wrmsr` to EFER (LME enable).
pub const MODE_WRMSR_EFER: u64 = 180;

/// Cost of flipping CR0.PG, excluding the EPT work it triggers.
pub const MODE_CR0_PG: u64 = 400;

/// Hypervisor-side cost of constructing the nested page table (EPT/NPT)
/// the first time the guest enables paging.
///
/// Table 1's identity-map row (28 109 cycles) bundles the guest's
/// page-table-build loop (~514 two-megabyte PDEs plus two upper-level
/// entries), the CR writes, and "construction of an EPT inside KVM" (§4.2);
/// this constant is the KVM-side share.
pub const KVM_EPT_BUILD: u64 = 22_000;

/// Base cycle cost per guest instruction *class*, indexed by the
/// discriminant of `visa::inst::OpClass` (Alu, Mul, Div, Mem, Branch,
/// CallRet, Stack, Pio, Halt, System, Mark — in that order).
///
/// This is the per-class cost table the predecoded interpreter dispatches
/// from; the constants are exactly the per-instruction `GUEST_*` ticks the
/// reference interpreter charges, so the two engines stay cycle-identical.
/// Classes whose timing lives elsewhere carry zero here: `Mem` ticks
/// [`GUEST_MEM`] inside the access helper, `System` costs depend on the
/// processor mode and the bits written, and `Mark` is free by design.
pub const GUEST_CLASS_BASE: [u64; 11] = [
    GUEST_ALU,     // Alu
    GUEST_MUL,     // Mul
    GUEST_DIV,     // Div
    0,             // Mem (charged per access by the helper)
    GUEST_BRANCH,  // Branch (+GUEST_BRANCH_TAKEN when taken)
    GUEST_CALLRET, // CallRet
    GUEST_STACK,   // Stack
    GUEST_PIO,     // Pio
    GUEST_HLT,     // Halt
    0,             // System (mode-dependent MODE_* costs)
    0,             // Mark (free rdtsc stand-in)
];

/// Pipeline-fill cost of the first instruction after VM entry.
///
/// Table 1 reports "First Instruction" at 74 cycles.
pub const GUEST_FIRST_INSTRUCTION: u64 = 74;

/// Cost of the `vmrun`/`vmlaunch` instruction proper (world switch in).
pub const VMENTRY: u64 = 1_050;

/// Cost of a VM exit (world switch out, exit-reason decode in KVM).
pub const VMEXIT: u64 = 750;

/// One user/kernel ring transition (syscall entry *or* return).
///
/// §6.3 notes hypercall exits are "doubly expensive due to the ring
/// transitions necessitated by KVM": each exit that reaches user space pays
/// a kernel→user return and a user→kernel re-entry on top of the world
/// switches.
pub const HOST_RING_TRANSITION: u64 = 400;

/// Fixed kernel-side dispatch cost of an `ioctl` (argument checks, fd
/// lookup, KVM sanity checks before `vmrun`, §4.2).
pub const KVM_IOCTL_DISPATCH: u64 = 700;

/// Kernel-side cost of `KVM_CREATE_VM`: allocating and initializing the
/// VMCS/VMCB and associated state (§5.2 "we pay a higher cost to construct
/// a virtine due to the host kernel's internal allocation of the VM state").
pub const KVM_CREATE_VM: u64 = 195_000;

/// Kernel-side cost of `KVM_CREATE_VCPU`.
pub const KVM_CREATE_VCPU: u64 = 28_000;

/// Fixed cost of `KVM_SET_USER_MEMORY_REGION` (slot bookkeeping).
pub const KVM_SET_MEMORY_FIXED: u64 = 6_000;

/// Per-4KiB-page cost of registering a memory region.
pub const KVM_SET_MEMORY_PER_PAGE: u64 = 12;

/// Cost of a null function call and return on the host ("function" bar of
/// Figure 2 — tens of cycles).
pub const HOST_FUNCTION_CALL: u64 = 30;

/// Cost of `pthread_create` immediately joined by `pthread_join`
/// ("Linux pthread" bar of Figure 2 — an order of magnitude above `vmrun`,
/// an order below full KVM VM creation).
pub const HOST_PTHREAD_CREATE_JOIN: u64 = 34_000;

/// Cost of `fork`+`exec`+`wait` for a minimal process (Figure 8's
/// "process" bar, included "for scale").
pub const HOST_PROCESS_SPAWN: u64 = 470_000;

/// Base cost of an ordinary (non-KVM) system call, excluding ring
/// transitions.
pub const HOST_SYSCALL_BASE: u64 = 250;

/// Per-byte cost of copying between user and kernel space.
pub const HOST_COPY_PER_BYTE_X1000: u64 = 120; // 0.120 cycles/byte.

/// Kernel network-stack cost per send/recv on a loopback socket, excluding
/// the copy (§4.2 notes the host network stack introduces large variance).
pub const HOST_NET_STACK: u64 = 5_200;

/// Cost of `accept` on a pending loopback connection.
pub const HOST_NET_ACCEPT: u64 = 7_000;

/// Queue-management cost per cross-virtine channel send/recv, excluding
/// the per-byte copy. Channels are in-kernel byte queues — no network
/// stack to run — so moving a message is much cheaper than a loopback
/// socket hop ([`HOST_NET_STACK`]).
pub const HOST_CHAN_OP: u64 = 900;

/// Cost of creating an SGX enclave ("SGX Create" of Figure 8; enclave
/// creation adds and measures EPC pages and is millisecond-scale —
/// the slowest bar on the log-scale axis).
pub const SGX_CREATE: u64 = 41_000_000;

/// Cost of entering an existing enclave ("ECALL" of Figure 8,
/// reusing a previously created context).
pub const SGX_ECALL: u64 = 14_300;

/// User-space bookkeeping to pop/push a virtine shell from Wasp's pool
/// (§5.2). Small by design: with caching plus asynchronous cleaning, shell
/// provisioning lands "within 4% of a bare vmrun".
pub const WASP_POOL_BOOKKEEPING: u64 = 60;

/// User-space bookkeeping to look up and pop a *warm* shell — a keyed
/// (tenant, virtine) list probe rather than the clean list's plain pop, so
/// slightly heavier than [`WASP_POOL_BOOKKEEPING`]. The warm path's real
/// saving is downstream: re-arming copies only the dirty-page delta
/// ([`memcpy_cycles`] over a handful of pages) instead of the full sparse
/// snapshot.
pub const WASP_WARM_BOOKKEEPING: u64 = 90;

/// memcpy bandwidth of `tinker` in bytes per cycle, times 1000.
///
/// §6.2 measures 6.7 GB/s; at 2.69 GHz that is 2.49 bytes/cycle, i.e.
/// ≈0.401 cycles/byte. A 16 MB image therefore costs ≈2.3 ms to copy,
/// matching Figure 12.
pub const MEM_BYTES_PER_KCYCLE: u64 = 2_490;

/// Cycle cost of copying `bytes` at the measured memcpy bandwidth.
pub fn memcpy_cycles(bytes: usize) -> u64 {
    // cycles = bytes / 2.49 = bytes * 1000 / 2490.
    (bytes as u64 * 1_000).div_ceil(MEM_BYTES_PER_KCYCLE)
}

/// Cycle cost of zeroing `bytes` (memset runs at memcpy-class bandwidth).
pub fn memset_cycles(bytes: usize) -> u64 {
    memcpy_cycles(bytes)
}

/// Cost of a complete `KVM_RUN` ioctl round trip, excluding guest execution:
/// user→kernel entry, dispatch, `vmrun`, one exit, and the return to user
/// space. This is the "vmrun" floor of Figures 2 and 8.
pub fn kvm_run_round_trip() -> u64 {
    HOST_RING_TRANSITION + KVM_IOCTL_DISPATCH + VMENTRY + VMEXIT + HOST_RING_TRANSITION
}

// ---------------------------------------------------------------------------
// vsched dispatcher costs (multi-tenant layer above Wasp). These model the
// per-request bookkeeping of a scheduling layer that must not disturb the
// microsecond-scale hot path the paper establishes: each is a handful of
// cache lines, orders of magnitude below `KVM_CREATE_VM`.

/// Admission control per request: token-bucket refill/charge plus the
/// in-flight-cap check (a few arithmetic ops and two cache lines).
pub const VSCHED_ADMISSION: u64 = 120;

/// One run-queue operation (binary-heap push or pop) on a shard.
pub const VSCHED_QUEUE_OP: u64 = 80;

/// Stealing a clean shell from a sibling shard: the one cross-shard
/// synchronization on the acquire path (lock hand-off plus the cache-line
/// migration of the pool entry). Charged only on steal, keeping the
/// shard-local hit path contention-free. This is the *same-CCX* floor of
/// the per-hop transfer model below; `vsched`'s topology layer picks the
/// constant matching the donor→thief distance.
pub const VSCHED_STEAL_TRANSFER: u64 = 1_400;

// Per-hop transfer costs: moving a shell (steal) or a suspended run
// (resume-time migration) between shards is priced by how far the cache
// lines travel on the simulated 2-socket `tinker` host. The same-CCX
// case is the historical flat cost above; the farther hops add the extra
// coherence latency real parts measure.

/// Transfer between shards sharing a core complex (one L3 slice): the
/// pool entry and shell metadata move within a shared last-level cache —
/// the [`VSCHED_STEAL_TRANSFER`] floor.
pub const VSCHED_TRANSFER_SAME_CCX: u64 = VSCHED_STEAL_TRANSFER;

/// Transfer between CCXs on the same socket: lines cross the on-die
/// fabric between L3 slices (measured CCX-to-CCX latency is ~2-3x the
/// shared-L3 hit on the referenced hardware generation).
pub const VSCHED_TRANSFER_CROSS_CCX: u64 = 3_400;

/// Transfer across sockets: every line crosses the inter-socket
/// interconnect, NUMA-remote at roughly 7x the shared-L3 cost — the
/// distance a topology-aware policy exists to avoid.
pub const VSCHED_TRANSFER_CROSS_SOCKET: u64 = 9_800;

/// Transfer between *nodes*: the run's state (arguments, suspended-run
/// image, admission record) leaves shared memory entirely and crosses
/// the cluster network — one simulated-net RPC round trip plus
/// serialization, ~8.5x the cross-socket hop. Kept below
/// [`KVM_CREATE_VM`] on purpose: evacuating a queued run to a healthy
/// node is still cheaper than letting the work die and re-minting a
/// cold VM for its retry, which is why cross-node evacuation rides the
/// same priced `Candidate` machinery as a steal instead of a bespoke
/// recovery path.
pub const VSCHED_TRANSFER_CROSS_NODE: u64 = 84_000;

/// Recording one trace span into the bounded in-memory ring when
/// invocation tracing is enabled: a timestamp read, a bucket index, and
/// a ring slot write (~two cache lines). Charged per span so the
/// tracing-on vs tracing-off ablation is deterministic in virtual time;
/// tracing disabled charges nothing, keeping traced-off runs
/// bit-identical to historical baselines.
pub const VTRACE_SPAN: u64 = 40;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Cycles;

    #[test]
    fn memcpy_16mb_is_about_2_3_ms() {
        let cycles = memcpy_cycles(16 * 1024 * 1024);
        let ms = Cycles(cycles).as_millis();
        assert!((2.0..2.8).contains(&ms), "16MB copy took {ms} ms");
    }

    #[test]
    fn memcpy_is_monotone_and_zero_safe() {
        assert_eq!(memcpy_cycles(0), 0);
        assert!(memcpy_cycles(1) >= 1);
        assert!(memcpy_cycles(4096) < memcpy_cycles(8192));
    }

    #[test]
    fn vmrun_floor_is_a_few_thousand_cycles() {
        let floor = kvm_run_round_trip();
        assert!(
            (2_000..6_000).contains(&floor),
            "vmrun floor = {floor} cycles"
        );
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn abstraction_ordering_matches_figure_2() {
        // function < vmrun < pthread < KVM create < process (Figure 2/8).
        // The operands are calibration constants on purpose: the test
        // pins their relative order against future re-calibration.
        assert!(HOST_FUNCTION_CALL < kvm_run_round_trip());
        assert!(kvm_run_round_trip() < HOST_PTHREAD_CREATE_JOIN);
        assert!(HOST_PTHREAD_CREATE_JOIN < KVM_CREATE_VM);
        assert!(KVM_CREATE_VM < HOST_PROCESS_SPAWN);
        assert!(HOST_PROCESS_SPAWN < SGX_CREATE);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn transfer_costs_grow_with_distance() {
        // Same CCX < cross CCX < cross socket, and even the farthest hop
        // stays far below minting a new VM — stealing across sockets is
        // still worth it when the alternative is KVM_CREATE_VM.
        assert_eq!(VSCHED_TRANSFER_SAME_CCX, VSCHED_STEAL_TRANSFER);
        assert!(VSCHED_TRANSFER_SAME_CCX < VSCHED_TRANSFER_CROSS_CCX);
        assert!(VSCHED_TRANSFER_CROSS_CCX < VSCHED_TRANSFER_CROSS_SOCKET);
        assert!(VSCHED_TRANSFER_CROSS_SOCKET < KVM_CREATE_VM / 10);
        // The node hop leaves shared memory for the network: far above
        // any intra-node hop, but still below minting a cold VM, so
        // evacuating work off a failing node beats abandoning it.
        assert!(VSCHED_TRANSFER_CROSS_SOCKET < VSCHED_TRANSFER_CROSS_NODE);
        assert!(VSCHED_TRANSFER_CROSS_NODE < KVM_CREATE_VM);
    }

    #[test]
    fn class_table_uses_the_per_instruction_constants() {
        // The predecoded interpreter indexes this table by OpClass
        // discriminant; the entries must stay byte-for-byte the ticks the
        // reference interpreter charges or cycle-identity breaks.
        assert_eq!(GUEST_CLASS_BASE.len(), 11);
        assert_eq!(GUEST_CLASS_BASE[0], GUEST_ALU);
        assert_eq!(GUEST_CLASS_BASE[1], GUEST_MUL);
        assert_eq!(GUEST_CLASS_BASE[2], GUEST_DIV);
        assert_eq!(GUEST_CLASS_BASE[3], 0); // Mem: helper-charged.
        assert_eq!(GUEST_CLASS_BASE[4], GUEST_BRANCH);
        assert_eq!(GUEST_CLASS_BASE[5], GUEST_CALLRET);
        assert_eq!(GUEST_CLASS_BASE[6], GUEST_STACK);
        assert_eq!(GUEST_CLASS_BASE[7], GUEST_PIO);
        assert_eq!(GUEST_CLASS_BASE[8], GUEST_HLT);
        assert_eq!(GUEST_CLASS_BASE[9], 0); // System: mode-dependent.
        assert_eq!(GUEST_CLASS_BASE[10], 0); // Mark: free.
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn mode_costs_match_table_1_ordering() {
        // Table 1: ident map >> protected transition > lgdt16 > lgdt32
        // > ljmp64 > ljmp32 > first instruction.
        assert!(MODE_CR0_PE > MODE_LGDT_PROT);
        assert!(MODE_LGDT_REAL > MODE_CR0_PE);
        assert!(MODE_LJMP64 > MODE_LJMP32);
        assert!(MODE_LJMP32 > GUEST_FIRST_INSTRUCTION);
    }
}
