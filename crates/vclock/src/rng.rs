//! A small, seeded, dependency-free PRNG for deterministic simulation.
//!
//! The container environment bakes in no external crates, so the noise
//! model ([`crate::noise`]) and the repository's randomized tests draw
//! from this splitmix64/xoshiro-style generator instead of `rand`. It is
//! not cryptographic; it exists to make jitter and property-style tests
//! reproducible bit-for-bit from a seed.

/// A seeded pseudo-random number generator (splitmix64 core).
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    pub fn seeded(seed: u64) -> Rng {
        Rng {
            // Avoid the all-zeros fixed point without disturbing other seeds.
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next raw 64-bit output (splitmix64 step).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A uniform `f64` in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo < hi, "empty range {lo}..{hi}");
        lo + (hi - lo) * self.f64()
    }

    /// A uniform `u64` in `[lo, hi)` (modulo bias is irrelevant for the
    /// simulation ranges used here).
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.next_u64() % (hi - lo)
    }

    /// A uniform `usize` in `[0, n)`.
    pub fn below(&mut self, n: usize) -> usize {
        self.range_u64(0, n as u64) as usize
    }

    /// `true` with probability `p`.
    pub fn bool(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// A vector of `len` uniform bytes.
    pub fn bytes(&mut self, len: usize) -> Vec<u8> {
        (0..len).map(|_| self.next_u64() as u8).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::seeded(7);
        let mut b = Rng::seeded(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::seeded(1);
        let mut b = Rng::seeded(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn f64_stays_in_unit_interval() {
        let mut r = Rng::seeded(3);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x), "{x}");
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut r = Rng::seeded(4);
        for _ in 0..10_000 {
            let x = r.range_u64(10, 20);
            assert!((10..20).contains(&x));
            let y = r.range_f64(-0.5, 0.5);
            assert!((-0.5..0.5).contains(&y));
        }
    }

    #[test]
    fn bool_probability_is_roughly_honoured() {
        let mut r = Rng::seeded(5);
        let hits = (0..100_000).filter(|_| r.bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "hits={hits}");
    }
}
