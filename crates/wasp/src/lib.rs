//! # Wasp — the embeddable virtine micro-hypervisor runtime
//!
//! The primary contribution of *Isolating Functions at the Hardware Limit
//! with Virtines* (EuroSys '22). Wasp lets a host program (the *virtine
//! client*) run individual functions in disposable, hardware-virtualized
//! execution contexts with microsecond-scale start-up:
//!
//! * **Hypercall interposition** ([`hypercall`]) — a virtine's only window
//!   to the outside world is a single-`out` hypercall ABI, checked against
//!   a default-deny [`HypercallMask`] and the client's custom handlers
//!   (Figure 5).
//! * **Shell pooling** ([`pool`]) — used contexts are wiped and cached so
//!   later requests skip `KVM_CREATE_VM`; with asynchronous cleaning the
//!   provisioning cost lands within a few percent of a bare `vmrun` (§5.2,
//!   Figure 8).
//! * **Snapshotting** ([`runtime`]) — a virtine can checkpoint itself after
//!   initialization; subsequent invocations of the same function resume
//!   from the snapshot and skip the boot path entirely (§5.2, Figure 7).
//! * **Cross-virtine channels** ([`hypercall`], "vchan") — virtines
//!   compose into pipelines over host-mediated bounded byte queues,
//!   reachable only through mask-gated `chan_*` hypercalls; blocking
//!   sends/recvs are exits that suspend the run ([`SuspendedRun`]), never
//!   busy-waits. See the lifecycle diagram in the [`hypercall`] docs.
//! * **Native baseline** ([`native`]) — the same binaries run natively for
//!   apples-to-apples comparisons, with hypercalls downgraded to syscalls.
//!
//! ```
//! use wasp::{Wasp, HypercallMask, Invocation};
//!
//! let wasp = Wasp::new_kvm_default();
//! let image = visa::assemble(".org 0x8000\n mov r0, 42\n hlt\n").unwrap();
//! let out = wasp
//!     .launch_once(image, 64 * 1024, HypercallMask::DENY_ALL, Invocation::default())
//!     .unwrap();
//! assert_eq!(out.ret, 42);
//! ```

pub mod hypercall;
pub mod native;
pub mod pool;
pub mod runtime;

pub use hypercall::{
    nr, GuestMem, HcOutcome, HypercallMask, Invocation, WaitReason, WaitTarget, CHAN_NONBLOCK,
    HYPERCALL_PORT, RECV_NONBLOCK, WOULD_BLOCK,
};
pub use native::{NativeExit, NativeOutcome, NativeRunner};
pub use pool::{Pool, PoolMode, PoolStats, WarmExport, DEFAULT_WARM_CAPACITY};
pub use runtime::{
    Breakdown, ExitKind, RunOutcome, RunResult, ShellSource, SuspendedRun, VirtineId, VirtineSpec,
    VirtineWarmStats, Wasp, WaspConfig, WaspError, WaspStats, ARGS_ADDR, LOAD_ADDR,
    NO_SNAPSHOT_ENV,
};
