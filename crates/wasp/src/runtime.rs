//! The Wasp runtime: registering virtine specs and running invocations.
//!
//! Wasp is "a specialized, embeddable micro-hypervisor runtime that deploys
//! virtines with an easy-to-use interface" (§5.1). A *virtine client* (host
//! program) registers a [`VirtineSpec`] — binary image, memory size,
//! hypercall policy — and then [`Wasp::run`]s invocations against it. Each
//! invocation:
//!
//! 1. acquires a hardware context from the shell [`Pool`] (§5.2) — a
//!    *warm* shell parked by a previous run of the same virtine when one
//!    exists, a clean shell otherwise;
//! 2. installs the execution state, cheapest mechanism first:
//!    * **warm delta re-arm** — the shell still holds the snapshot state;
//!      only the pages the previous invocation dirtied are copied back
//!      (`kvmsim::VmFd::restore_delta`), collapsing the `image` term of
//!      [`Breakdown`] from the sparse-snapshot memcpy to a handful of
//!      pages;
//!    * **full sparse restore** — the spec has a snapshot but the shell is
//!      clean (§5.2 snapshotting, Figure 7);
//!    * **cold image install** — no snapshot yet;
//! 3. writes the marshalled arguments at guest address 0x0 (§6.1);
//! 4. runs the guest, interposing on every hypercall: the policy mask is
//!    checked first (default-deny, §5.1), then a client-supplied custom
//!    handler, then Wasp's canned handlers;
//! 5. releases the shell back to the pool: *warm* (state kept resident,
//!    keyed to this virtine) after a normal snapshotted run, wiped clean
//!    per the pool mode otherwise.
//!
//! ## Warm/clean shell lifecycle and isolation
//!
//! See the [`crate::pool`] module docs for the lifecycle diagram. The
//! runtime upholds the two invariants warm caching rests on:
//!
//! * a shell is only parked warm when its state provably equals *the
//!   spec's current snapshot plus the dirty-page log* — i.e. the run
//!   restored that exact snapshot (full or delta) or captured it, and
//!   exited normally; the `Rc` identity of the snapshot is the token
//!   ([`RunOutcome::warm_state`]) that travels with the shell;
//! * a warm shell handed back for the *same* `(tenant, virtine)` key is
//!   re-armed before the guest runs, erasing every page the previous
//!   invocation touched; any other path out of the warm list is a full
//!   wipe. Either way no bit of a prior invocation's data is observable,
//!   so §5.2's no-information-leakage guarantee survives the optimization.
//!
//! ## Blocked/suspended runs (event-driven I/O)
//!
//! Runs are *resumable*: a blocking hypercall that cannot complete (today a
//! `recv` on an open-but-empty connection) is an **exit, not a busy-wait**.
//! [`Wasp::run_on_shell_resumable`] returns [`RunResult::Blocked`] carrying
//! a [`SuspendedRun`] — shell (vCPU registers + guest memory), invocation
//! state, and segmented accounting — and the caller's event loop decides
//! when the wait is over:
//!
//! ```text
//!        HcOutcome::Block                    wait satisfied
//! run ────────────────────► SuspendedRun ────────────────────► resume
//!  ▲                         (parked:          (resume_on_shell re-enters
//!  │                          unstealable,      the guest at the faulting
//!  │   RunResult::Done        undemotable)      hypercall with the bytes)
//!  └────────────────────────────┐ │
//!                               │ │ timeout / kill (abort_suspended)
//!                               ▼ ▼
//!                        ExitKind::Blocked → wiped release (§5.2)
//! ```
//!
//! While parked the shell is owned by the `SuspendedRun`, structurally
//! outside every pool: no steal, demotion, or re-arm path can observe it.
//! Accounting is segmented so a blocked-then-resumed run charges exactly
//! the guest cycles an unblocked run does ([`Breakdown::blocked`] absorbs
//! the parked wall-time; `exec`/`total` never include it, and the delivery
//! at resume is the one charged syscall the blocking `recv` is). Callers
//! without an event loop ([`Wasp::run`], [`Wasp::run_on_shell`]) see
//! blocking calls degraded to their non-blocking form
//! ([`crate::hypercall::WOULD_BLOCK`]).

use std::cell::RefCell;
use std::rc::Rc;

use hostsim::HostKernel;
use kvmsim::{Hypervisor, VmExit, VmFd, VmSnapshot};
use vclock::{Clock, Cycles};
use visa::asm::Image;
use visa::cpu::Fault;
use visa::Reg;

use crate::hypercall::{
    self, GuestMem, HcOutcome, HypercallMask, Invocation, WaitReason, HYPERCALL_PORT,
};
use crate::pool::{Pool, PoolMode, PoolStats};

/// Guest address where marshalled arguments are placed ("the argument, n,
/// is loaded into the virtine's address space at address 0x0", §6.1).
pub const ARGS_ADDR: u64 = 0x0;

/// Guest address images are loaded at ("Wasp simply accepts a binary image,
/// loads it at guest virtual address 0x8000", §5.1).
pub const LOAD_ADDR: u64 = 0x8000;

/// Environment variable that disables snapshotting for language-extension
/// virtines ("all virtines created via our language extensions use Wasp's
/// snapshot feature by default. This can be disabled with the use of an
/// environment variable", §5.3).
pub const NO_SNAPSHOT_ENV: &str = "VIRTINE_NO_SNAPSHOT";

/// Runtime configuration for a [`Wasp`] instance.
#[derive(Debug, Clone)]
pub struct WaspConfig {
    /// Shell pooling mode (§5.2).
    pub pool_mode: PoolMode,
    /// Instruction budget per `KVM_RUN` before the watchdog fires.
    pub step_budget: u64,
    /// When `true`, snapshotting is disabled for every spec regardless of
    /// its own flag (the [`NO_SNAPSHOT_ENV`] escape hatch).
    pub disable_snapshots: bool,
    /// Bound on warm shells kept resident in the internal pool; zero
    /// disables warm caching (every release wipes, the pre-warm-cache
    /// behavior).
    pub warm_capacity: usize,
}

impl Default for WaspConfig {
    fn default() -> WaspConfig {
        WaspConfig {
            pool_mode: PoolMode::CachedAsync,
            step_budget: 500_000_000,
            disable_snapshots: false,
            warm_capacity: crate::pool::DEFAULT_WARM_CAPACITY,
        }
    }
}

impl WaspConfig {
    /// Default configuration, honouring [`NO_SNAPSHOT_ENV`] from the
    /// process environment.
    pub fn from_env() -> WaspConfig {
        WaspConfig {
            disable_snapshots: std::env::var_os(NO_SNAPSHOT_ENV).is_some(),
            ..WaspConfig::default()
        }
    }
}

/// A registered virtine: the unit the `virtine` keyword compiles to.
#[derive(Debug, Clone)]
pub struct VirtineSpec {
    /// Diagnostic name (usually the annotated function's name).
    pub name: String,
    /// The toolchain-produced binary image.
    pub image: Rc<Image>,
    /// Guest-physical memory size for this virtine's contexts.
    pub mem_size: usize,
    /// Hypercall policy (default-deny unless widened, §5.3).
    pub policy: HypercallMask,
    /// Whether invocations snapshot after initialization (§5.2).
    pub snapshot: bool,
}

impl VirtineSpec {
    /// Builds a spec with the default-deny policy and snapshotting enabled
    /// (the language-extension defaults of §5.3).
    pub fn new(name: impl Into<String>, image: Image, mem_size: usize) -> VirtineSpec {
        VirtineSpec {
            name: name.into(),
            image: Rc::new(image),
            mem_size,
            policy: HypercallMask::DENY_ALL,
            snapshot: true,
        }
    }

    /// Widens the policy (builder style).
    pub fn with_policy(mut self, policy: HypercallMask) -> VirtineSpec {
        self.policy = policy;
        self
    }

    /// Enables or disables snapshotting (builder style).
    pub fn with_snapshot(mut self, snapshot: bool) -> VirtineSpec {
        self.snapshot = snapshot;
        self
    }
}

/// Handle to a registered virtine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VirtineId(usize);

impl VirtineId {
    /// The registration index, for dispatch layers that key tables by
    /// virtine. Only meaningful against the `Wasp` that issued the handle.
    pub fn into_raw(self) -> usize {
        self.0
    }

    /// Rebuilds a handle from [`VirtineId::into_raw`]. Running an id that
    /// was never registered yields [`WaspError::NoSuchVirtine`].
    pub fn from_raw(raw: usize) -> VirtineId {
        VirtineId(raw)
    }
}

/// How an invocation ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExitKind {
    /// The guest executed `hlt`; the value is `r0`.
    Halted(u64),
    /// The guest issued the `exit` hypercall with this code.
    Exited(u64),
    /// A hypercall was denied by the client's policy; the virtine was
    /// killed (the "request denied" arrow of Figure 5).
    Denied {
        /// The refused hypercall number.
        nr: u64,
    },
    /// A handler killed the virtine (malformed request, repeated one-shot
    /// call, unknown port, ...).
    Killed(&'static str),
    /// The guest faulted; the context was torn down.
    Faulted(Fault),
    /// The instruction budget ran out.
    StepLimit,
    /// The run was abandoned while suspended in a blocking wait (e.g. a
    /// scheduler's block timeout killed it). The shell still holds the
    /// parked invocation's state and must take a wiped release.
    Blocked,
}

impl ExitKind {
    /// Whether the invocation completed by normal means.
    pub fn is_normal(&self) -> bool {
        matches!(self, ExitKind::Halted(_) | ExitKind::Exited(_))
    }
}

/// Where the shell an invocation runs on came from. Layers that manage
/// their own pools (e.g. `vsched`) acquire shells themselves and tell
/// [`Wasp::run_on_shell`] the provenance so the install step can pick the
/// matching (and cheapest sound) re-arm mechanism.
#[derive(Debug, Clone)]
pub enum ShellSource {
    /// Freshly created via `KVM_CREATE_VM`: guest memory is zero.
    Created,
    /// Reused from a clean list: wiped on release, guest memory is zero.
    Clean,
    /// Parked warm: still holds the state of a previous snapshotted run of
    /// the *same* `(tenant, virtine)`, derived from this snapshot, with
    /// the dirty-page log recording the divergence. Eligible for a delta
    /// re-arm iff the snapshot is still the spec's current one (compared
    /// by `Rc` identity); otherwise the runtime wipes it in place.
    Warm(Rc<VmSnapshot>),
}

impl ShellSource {
    /// Whether the shell came from a pool rather than `KVM_CREATE_VM`.
    pub fn is_reused(&self) -> bool {
        !matches!(self, ShellSource::Created)
    }
}

/// Cycle attribution for one invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Breakdown {
    /// Acquiring a shell (pool hit or `KVM_CREATE_VM`).
    pub acquire: Cycles,
    /// Installing the image or restoring the snapshot (full, or the
    /// dirty-page delta on a warm hit), plus marshalling.
    pub image: Cycles,
    /// Guest execution including hypercall servicing.
    pub exec: Cycles,
    /// Releasing the shell (synchronous cleaning shows up here).
    pub release: Cycles,
    /// End-to-end invocation latency.
    pub total: Cycles,
    /// Whether the shell came from the pool.
    pub reused_shell: bool,
    /// Whether a snapshot was restored instead of a cold boot.
    pub restored_snapshot: bool,
    /// Whether the restore was a warm-shell delta re-arm rather than a
    /// full sparse copy.
    pub warm_hit: bool,
    /// Pages copied by the delta re-arm (zero unless `warm_hit`).
    pub delta_pages: u64,
    /// Virtual time spent suspended in blocking waits — *excluded* from
    /// `exec` and `total`, which therefore sum a blocked-then-resumed
    /// run's execution segments to the same guest-cycle figure an
    /// unblocked run reports (no double-charged re-entry).
    pub blocked: Cycles,
    /// Times the run blocked and was later resumed (zero for a run that
    /// never waited).
    pub resumes: u32,
}

/// The result of one virtine invocation.
#[derive(Debug)]
pub struct RunOutcome {
    /// How the guest ended.
    pub exit: ExitKind,
    /// `r0` at exit (the unmarshalled return value for `vcc` virtines).
    pub ret: u64,
    /// Invocation state: `return_data` result, captured stdout, fd table.
    pub invocation: Invocation,
    /// Milestones recorded by guest `mark` instructions.
    pub marks: Vec<(u8, Cycles)>,
    /// Number of hypercalls serviced.
    pub hypercalls: u64,
    /// Cycle attribution.
    pub breakdown: Breakdown,
    /// When `Some`, the shell this outcome ran on was left in a state that
    /// provably equals this snapshot plus the dirty-page log — the caller
    /// may park it *warm* ([`Pool::release_warm`]) instead of wiping it.
    /// `None` means the shell must take the ordinary wiped release.
    pub warm_state: Option<Rc<VmSnapshot>>,
}

impl RunOutcome {
    /// Convenience: the guest's `return_data` bytes.
    pub fn result_bytes(&self) -> &[u8] {
        &self.invocation.result
    }
}

/// How a resumable run left the shell: finished (outcome plus the dirty
/// shell, exactly like [`Wasp::run_on_shell`]), or suspended at a blocking
/// hypercall with the shell parked inside the [`SuspendedRun`].
#[derive(Debug)]
pub enum RunResult {
    /// The invocation completed; route the shell through a pool.
    Done(RunOutcome, VmFd),
    /// The invocation is parked on a [`WaitReason`]. Resume it with
    /// [`Wasp::resume_on_shell`] once the condition holds, or kill it with
    /// [`Wasp::abort_suspended`].
    Blocked(SuspendedRun),
}

/// A virtine suspended mid-invocation at a blocking hypercall.
///
/// The shell (and with it the vCPU register file and guest memory) rides
/// inside, so the suspended state *is* the parked shell: it cannot be
/// stolen, demoted, or re-armed by any pool path while the run is blocked —
/// the only exits are [`Wasp::resume_on_shell`] (deliver the awaited bytes
/// and continue exactly at the faulting hypercall) and
/// [`Wasp::abort_suspended`] (give the shell back for a wiped release).
/// Cycle accounting is segmented: execution before the block is already in
/// [`Breakdown::exec`]; parked time accrues to [`Breakdown::blocked`] and
/// never to `exec`/`total`.
#[derive(Debug)]
pub struct SuspendedRun {
    vm: VmFd,
    id: VirtineId,
    policy: HypercallMask,
    snapshot_enabled: bool,
    invocation: Invocation,
    wait: WaitReason,
    hypercalls: u64,
    marks: Vec<(u8, Cycles)>,
    armed: Option<Rc<VmSnapshot>>,
    breakdown: Breakdown,
    blocked_at: Cycles,
}

impl SuspendedRun {
    /// The condition this run waits on.
    pub fn wait(&self) -> &WaitReason {
        &self.wait
    }

    /// The virtine being run.
    pub fn virtine(&self) -> VirtineId {
        self.id
    }

    /// When the run (last) blocked, on the shared virtual clock.
    pub fn blocked_at(&self) -> Cycles {
        self.blocked_at
    }

    /// Accounting accumulated so far (`exec` covers the segments already
    /// executed; `blocked` the waits already completed).
    pub fn breakdown(&self) -> &Breakdown {
        &self.breakdown
    }
}

/// Errors raised before a virtine ever runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WaspError {
    /// Unknown [`VirtineId`].
    NoSuchVirtine,
    /// The image does not fit below `mem_size`.
    ImageTooLarge {
        /// End address of the image.
        image_end: u64,
        /// Configured guest memory size.
        mem_size: usize,
    },
    /// A shell handed to [`Wasp::run_on_shell`] was sized for a different
    /// guest-memory footprint than the spec requires. Shards must segregate
    /// shells by size, exactly as the internal pool does.
    ShellSizeMismatch {
        /// The shell's guest-memory size.
        shell: usize,
        /// The spec's guest-memory size.
        spec: usize,
    },
}

impl std::fmt::Display for WaspError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WaspError::NoSuchVirtine => write!(f, "no such virtine"),
            WaspError::ImageTooLarge {
                image_end,
                mem_size,
            } => write!(
                f,
                "image ends at {image_end:#x} but guest memory is only {mem_size:#x} bytes"
            ),
            WaspError::ShellSizeMismatch { shell, spec } => write!(
                f,
                "shell has {shell:#x} bytes of guest memory but the spec needs {spec:#x}"
            ),
        }
    }
}

impl std::error::Error for WaspError {}

/// Aggregate runtime statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WaspStats {
    /// Invocations launched.
    pub invocations: u64,
    /// Hypercalls serviced.
    pub hypercalls: u64,
    /// Hypercalls denied by policy.
    pub denials: u64,
    /// Snapshots taken.
    pub snapshots_taken: u64,
    /// Invocations that started from a snapshot.
    pub snapshot_restores: u64,
    /// Snapshot restores served by a warm-shell delta re-arm (a subset of
    /// `snapshot_restores`).
    pub warm_hits: u64,
    /// Total pages copied across all delta re-arms.
    pub delta_pages_copied: u64,
    /// Runs suspended at a blocking hypercall (each block event counts,
    /// so one run can contribute several).
    pub blocks: u64,
    /// Suspended runs resumed after their wait completed.
    pub resumes: u64,
}

/// Per-virtine warm-path statistics (surfaced alongside [`WaspStats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VirtineWarmStats {
    /// Invocations re-armed from a warm shell (delta restore).
    pub warm_hits: u64,
    /// Invocations that paid the full sparse restore.
    pub full_restores: u64,
    /// Invocations that cold-booted from the image.
    pub cold_boots: u64,
    /// Total pages copied by delta re-arms.
    pub delta_pages: u64,
    /// Runs that left their shell warm-parkable (normal exit with the
    /// spec's current snapshot armed).
    pub warm_ready: u64,
}

struct SpecEntry {
    spec: VirtineSpec,
    snapshot: Option<Rc<VmSnapshot>>,
    warm: VirtineWarmStats,
}

/// A client-supplied hypercall handler. Returning `None` falls through to
/// Wasp's canned handlers; returning `Some(outcome)` overrides them.
/// This is the "client hypercall handler" box of Figure 5.
pub type CustomHandler<'a> =
    &'a mut dyn FnMut(u64, [u64; 5], &mut dyn GuestMem, &mut Invocation) -> Option<HcOutcome>;

/// The embeddable Wasp runtime (one per virtine client).
pub struct Wasp {
    hv: Hypervisor,
    kernel: HostKernel,
    config: WaspConfig,
    pool: RefCell<Pool>,
    specs: RefCell<Vec<SpecEntry>>,
    stats: RefCell<WaspStats>,
}

/// How one guest-execution segment ended: the invocation finished (in any
/// of the classic ways) or parked at a blocking hypercall.
enum SegmentEnd {
    Exit(ExitKind),
    Block(WaitReason),
}

/// Adapter giving hypercall handlers bounds-checked guest-memory access.
struct VmMem<'a>(&'a VmFd);

impl GuestMem for VmMem<'_> {
    fn read_guest(&self, addr: u64, len: usize) -> Result<Vec<u8>, Fault> {
        self.0.read_guest(addr, len)
    }
    fn write_guest(&mut self, addr: u64, data: &[u8]) -> Result<(), Fault> {
        self.0.write_guest(addr, data)
    }
}

impl Wasp {
    /// Creates a runtime over the given hypervisor.
    pub fn new(hv: Hypervisor, config: WaspConfig) -> Wasp {
        let kernel = hv.kernel().clone();
        let pool = Pool::new(config.pool_mode, LOAD_ADDR).with_warm_capacity(config.warm_capacity);
        Wasp {
            hv,
            kernel,
            config,
            pool: RefCell::new(pool),
            specs: RefCell::new(Vec::new()),
            stats: RefCell::new(WaspStats::default()),
        }
    }

    /// Convenience: a KVM-backed runtime on a fresh deterministic host.
    pub fn new_kvm_default() -> Wasp {
        let clock = Clock::new();
        let kernel = HostKernel::new(clock, None);
        Wasp::new(Hypervisor::kvm(kernel), WaspConfig::default())
    }

    /// The shared clock.
    pub fn clock(&self) -> Clock {
        self.kernel.clock().clone()
    }

    /// The simulated host kernel.
    pub fn kernel(&self) -> &HostKernel {
        &self.kernel
    }

    /// The underlying hypervisor handle.
    pub fn hypervisor(&self) -> &Hypervisor {
        &self.hv
    }

    /// Runtime statistics so far.
    pub fn stats(&self) -> WaspStats {
        *self.stats.borrow()
    }

    /// Pool statistics so far.
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.borrow().stats()
    }

    /// Pre-creates `count` clean shells of `mem_size` bytes.
    pub fn prewarm(&self, mem_size: usize, count: usize) {
        self.pool.borrow_mut().prewarm(&self.hv, mem_size, count);
    }

    /// Registers a virtine spec, returning its handle.
    pub fn register(&self, mut spec: VirtineSpec) -> Result<VirtineId, WaspError> {
        let image_end = spec.image.base + spec.image.bytes.len() as u64;
        if image_end > spec.mem_size as u64 {
            return Err(WaspError::ImageTooLarge {
                image_end,
                mem_size: spec.mem_size,
            });
        }
        if self.config.disable_snapshots {
            spec.snapshot = false;
        }
        let mut specs = self.specs.borrow_mut();
        specs.push(SpecEntry {
            spec,
            snapshot: None,
            warm: VirtineWarmStats::default(),
        });
        Ok(VirtineId(specs.len() - 1))
    }

    /// Drops the stored snapshot for a spec (tests and experiments). Warm
    /// shells parked against the dropped snapshot become stale; the next
    /// acquire detects the mismatch (by `Rc` identity) and wipes them.
    pub fn invalidate_snapshot(&self, id: VirtineId) {
        if let Some(e) = self.specs.borrow_mut().get_mut(id.0) {
            e.snapshot = None;
        }
    }

    /// The spec's current snapshot, if one has been captured.
    pub fn current_snapshot(&self, id: VirtineId) -> Option<Rc<VmSnapshot>> {
        self.specs
            .borrow()
            .get(id.0)
            .and_then(|e| e.snapshot.clone())
    }

    /// Per-virtine warm-path statistics.
    pub fn virtine_warm_stats(&self, id: VirtineId) -> Option<VirtineWarmStats> {
        self.specs.borrow().get(id.0).map(|e| e.warm)
    }

    /// Runs one invocation with the canned handlers only.
    pub fn run(
        &self,
        id: VirtineId,
        args: &[u8],
        invocation: Invocation,
    ) -> Result<RunOutcome, WaspError> {
        self.run_with_handler(id, args, invocation, &mut |_, _, _, _| None)
    }

    /// Tenant tag the runtime's internal pool keys warm shells under: Wasp
    /// embeds in a single virtine client, so there is exactly one tenant.
    const SELF_TENANT: u64 = 0;

    /// Runs one invocation, giving `handler` first refusal on every
    /// permitted hypercall.
    pub fn run_with_handler(
        &self,
        id: VirtineId,
        args: &[u8],
        invocation: Invocation,
        handler: CustomHandler<'_>,
    ) -> Result<RunOutcome, WaspError> {
        let (mem_size, warm_eligible) = {
            let specs = self.specs.borrow();
            let e = specs.get(id.0).ok_or(WaspError::NoSuchVirtine)?;
            (e.spec.mem_size, e.spec.snapshot && e.snapshot.is_some())
        };
        let clock = self.kernel.clock().clone();
        let t0 = clock.now();

        // 1. Acquire a hardware context (Figure 6: reuse or provision) —
        // warm shell for this virtine first, clean shell otherwise.
        let warm = if warm_eligible {
            self.pool
                .borrow_mut()
                .acquire_warm(&self.hv, Self::SELF_TENANT, id.0, mem_size)
        } else {
            None
        };
        let (vm, source) = match warm {
            Some((vm, snap)) => (vm, ShellSource::Warm(snap)),
            None => {
                let (vm, reused) = self.pool.borrow_mut().acquire(&self.hv, mem_size);
                let source = if reused {
                    ShellSource::Clean
                } else {
                    ShellSource::Created
                };
                (vm, source)
            }
        };
        let t_acquired = clock.now();

        // 2.–4. Execute on the acquired shell.
        let (mut outcome, vm) = self.run_on_shell(
            vm,
            source,
            id,
            args,
            invocation,
            HypercallMask::ALLOW_ALL,
            handler,
        )?;

        // 5. Recycle the shell: park it warm when the run left it in
        // snapshot-derived state, wipe it otherwise.
        let t_exec = clock.now();
        match outcome.warm_state.clone() {
            Some(snap) => self
                .pool
                .borrow_mut()
                .release_warm(vm, Self::SELF_TENANT, id.0, snap),
            None => self.pool.borrow_mut().release(vm),
        }
        let t_end = clock.now();

        outcome.breakdown.acquire = t_acquired - t0;
        outcome.breakdown.release = t_end - t_exec;
        outcome.breakdown.total = t_end - t0;
        Ok(outcome)
    }

    /// Runs one invocation on a caller-provided shell, returning the used
    /// shell instead of releasing it into Wasp's internal pool. This is the
    /// dispatcher entry point: a scheduling layer (e.g. `vsched`) that keeps
    /// its own sharded shell pools acquires a shell itself, hands it here
    /// with its [`ShellSource`] provenance, and decides afterwards which
    /// shard's pool the shell is parked in (and whether warm or clean —
    /// see [`RunOutcome::warm_state`]).
    ///
    /// `narrow` is intersected with the spec's [`HypercallMask`]: a tenant
    /// profile can only further restrict what the spec permits. Pass
    /// [`HypercallMask::ALLOW_ALL`] for spec-policy-only behavior.
    ///
    /// The returned shell is *dirty* — the caller must route it through a
    /// [`Pool`] (whose release wipes it, §5.2, or parks it warm when
    /// `warm_state` permits) before any reuse.
    ///
    /// The `breakdown.acquire`/`release` fields of the outcome are zero;
    /// they belong to whoever manages the shell's lifecycle.
    ///
    /// This entry point is *non-resumable*: a blocking hypercall that
    /// cannot complete (see [`HcOutcome::Block`]) is degraded to its
    /// non-blocking form and the guest receives
    /// [`crate::hypercall::WOULD_BLOCK`]. Callers with an event loop use
    /// [`Wasp::run_on_shell_resumable`] instead, which suspends the run.
    #[allow(clippy::too_many_arguments)]
    pub fn run_on_shell(
        &self,
        vm: VmFd,
        source: ShellSource,
        id: VirtineId,
        args: &[u8],
        invocation: Invocation,
        narrow: HypercallMask,
        handler: CustomHandler<'_>,
    ) -> Result<(RunOutcome, VmFd), WaspError> {
        match self.run_shell_inner(vm, source, id, args, invocation, narrow, false, handler)? {
            RunResult::Done(outcome, vm) => Ok((outcome, vm)),
            RunResult::Blocked(_) => unreachable!("non-resumable runs never suspend"),
        }
    }

    /// [`Wasp::run_on_shell`] with the run-loop contract of event-driven
    /// dispatch: a blocking hypercall that cannot complete returns
    /// [`RunResult::Blocked`] — the run exits the shard worker instead of
    /// busy-waiting, carrying shell, invocation, and accounting in a
    /// [`SuspendedRun`] until [`Wasp::resume_on_shell`] re-enters the guest
    /// at the faulting hypercall.
    #[allow(clippy::too_many_arguments)]
    pub fn run_on_shell_resumable(
        &self,
        vm: VmFd,
        source: ShellSource,
        id: VirtineId,
        args: &[u8],
        invocation: Invocation,
        narrow: HypercallMask,
        handler: CustomHandler<'_>,
    ) -> Result<RunResult, WaspError> {
        self.run_shell_inner(vm, source, id, args, invocation, narrow, true, handler)
    }

    #[allow(clippy::too_many_arguments)]
    fn run_shell_inner(
        &self,
        vm: VmFd,
        source: ShellSource,
        id: VirtineId,
        args: &[u8],
        mut invocation: Invocation,
        narrow: HypercallMask,
        resumable: bool,
        handler: CustomHandler<'_>,
    ) -> Result<RunResult, WaspError> {
        let (image, mem_size, policy, snapshot_enabled, snap) = {
            let specs = self.specs.borrow();
            let entry = specs.get(id.0).ok_or(WaspError::NoSuchVirtine)?;
            (
                Rc::clone(&entry.spec.image),
                entry.spec.mem_size,
                entry.spec.policy.intersect(narrow),
                entry.spec.snapshot,
                entry.snapshot.clone(),
            )
        };
        if vm.mem_size() != mem_size {
            return Err(WaspError::ShellSizeMismatch {
                shell: vm.mem_size(),
                spec: mem_size,
            });
        }
        self.stats.borrow_mut().invocations += 1;
        let clock = self.kernel.clock().clone();
        let t_acquired = clock.now();
        let reused = source.is_reused();

        // 2. Install the execution state: warm delta re-arm when the shell
        // already holds the spec's current snapshot, else full sparse
        // restore, else cold image.
        let mut armed: Option<Rc<VmSnapshot>> = None;
        let mut warm_hit = false;
        let mut delta_pages = 0u64;
        let restored = match source {
            ShellSource::Warm(shell_snap)
                if snapshot_enabled
                    && snap
                        .as_ref()
                        .is_some_and(|cur| Rc::ptr_eq(cur, &shell_snap)) =>
            {
                delta_pages = vm.restore_delta(&shell_snap) as u64;
                warm_hit = true;
                {
                    let mut stats = self.stats.borrow_mut();
                    stats.snapshot_restores += 1;
                    stats.warm_hits += 1;
                    stats.delta_pages_copied += delta_pages;
                }
                {
                    let mut specs = self.specs.borrow_mut();
                    let warm = &mut specs[id.0].warm;
                    warm.warm_hits += 1;
                    warm.delta_pages += delta_pages;
                }
                armed = Some(shell_snap);
                true
            }
            other => {
                if matches!(other, ShellSource::Warm(_)) {
                    // Stale warm shell: the snapshot it derives from is no
                    // longer the spec's current one (invalidated or
                    // re-registered since it parked). Demote in place with
                    // a full, charged wipe before the ordinary install.
                    vm.clean(LOAD_ADDR);
                }
                if let (true, Some(cur)) = (snapshot_enabled, &snap) {
                    vm.restore(cur);
                    self.stats.borrow_mut().snapshot_restores += 1;
                    self.specs.borrow_mut()[id.0].warm.full_restores += 1;
                    armed = Some(Rc::clone(cur));
                    true
                } else {
                    vm.load_image(&image);
                    self.specs.borrow_mut()[id.0].warm.cold_boots += 1;
                    false
                }
            }
        };
        // 3. Marshal arguments into the address space (charged as a copy).
        if !args.is_empty() {
            self.kernel.memcpy(args.len());
            vm.write_guest(ARGS_ADDR, args)
                .expect("argument region must be inside guest memory");
        }
        let t_image = clock.now();

        // 4. Run, interposing on hypercalls, until the guest finishes or —
        // in resumable mode — parks at a blocking hypercall.
        let mut hypercalls = 0u64;
        let end = self.exec_segment(
            &vm,
            id,
            policy,
            snapshot_enabled,
            resumable,
            &mut invocation,
            &mut hypercalls,
            &mut armed,
            handler,
        );
        let t_exec = clock.now();
        let breakdown = Breakdown {
            acquire: Cycles::ZERO,
            image: t_image - t_acquired,
            exec: t_exec - t_image,
            release: Cycles::ZERO,
            total: t_exec - t_acquired,
            reused_shell: reused,
            restored_snapshot: restored,
            warm_hit,
            delta_pages,
            blocked: Cycles::ZERO,
            resumes: 0,
        };
        match end {
            SegmentEnd::Block(wait) => {
                let marks = vm.vcpu().take_marks();
                Ok(RunResult::Blocked(SuspendedRun {
                    vm,
                    id,
                    policy,
                    snapshot_enabled,
                    invocation,
                    wait,
                    hypercalls,
                    marks,
                    armed,
                    breakdown,
                    blocked_at: t_exec,
                }))
            }
            SegmentEnd::Exit(exit) => {
                let (outcome, vm) = self.finish_run(
                    vm,
                    id,
                    snapshot_enabled,
                    exit,
                    invocation,
                    Vec::new(),
                    hypercalls,
                    armed,
                    breakdown,
                );
                Ok(RunResult::Done(outcome, vm))
            }
        }
    }

    /// Re-enters a [`SuspendedRun`] whose wait condition should now hold:
    /// delivers the awaited bytes straight into the parked hypercall's
    /// buffer (the one syscall the blocking `recv` is, charged here where
    /// the data actually arrives), places the count in `r0`, and continues
    /// guest execution at the instruction after the faulting hypercall. If
    /// the condition does not hold after all (a spurious wake-up), the run
    /// re-parks and [`RunResult::Blocked`] is returned again.
    pub fn resume_on_shell(
        &self,
        s: SuspendedRun,
        handler: CustomHandler<'_>,
    ) -> Result<RunResult, WaspError> {
        let SuspendedRun {
            vm,
            id,
            policy,
            snapshot_enabled,
            mut invocation,
            wait,
            mut hypercalls,
            mut marks,
            mut armed,
            mut breakdown,
            blocked_at,
        } = s;
        let clock = self.kernel.clock().clone();
        let t_resume = clock.now();

        // Spurious wake-ups re-park without charging anything: every
        // still-blocked probe is the same free kernel-internal poll the
        // block decision used. Channels wake *every* parked waiter, so a
        // run can lose the race for the message it was woken for.
        let still_blocked = match &wait {
            WaitReason::RecvReady { sock, .. } => matches!(
                self.kernel.net_poll(*sock),
                Ok(hostsim::SockReady::WouldBlock)
            ),
            WaitReason::ChanReady { chan, .. } => matches!(
                self.kernel.chan_poll_recv(*chan),
                Ok(hostsim::ChanRecvReady::WouldBlock)
            ),
            // A closed channel is *not* still blocked: the wait ends with
            // the send failing, not with an eternal park.
            WaitReason::ChanSendReady { chan, len, .. } => {
                matches!(self.kernel.chan_send_fits(*chan, *len), Ok(false))
            }
        };
        if still_blocked {
            breakdown.blocked += t_resume - blocked_at;
            return Ok(RunResult::Blocked(SuspendedRun {
                vm,
                id,
                policy,
                snapshot_enabled,
                invocation,
                wait,
                hypercalls,
                marks,
                armed,
                breakdown,
                blocked_at: t_resume,
            }));
        }
        breakdown.blocked += t_resume - blocked_at;
        breakdown.resumes += 1;
        self.stats.borrow_mut().resumes += 1;

        // Deliver the awaited condition, completing the parked hypercall —
        // the one charged syscall the blocking call is.
        let vcpu = vm.vcpu();
        let mut delivery_fault = None;
        match wait {
            WaitReason::RecvReady { sock, buf, max_len } => {
                match self.kernel.net_recv(sock, max_len) {
                    Ok(Some(data)) => match vm.write_guest(buf, &data) {
                        Ok(()) => vcpu.set_reg(Reg(0), data.len() as u64),
                        // A hostile buffer pointer surfaces exactly as it
                        // would have on the unblocked data path: the guest
                        // faults.
                        Err(fault) => delivery_fault = Some(fault),
                    },
                    // Drained and the peer is gone while we were parked.
                    Ok(None) => vcpu.set_reg(Reg(0), 0),
                    Err(e) => vcpu.set_reg(Reg(0), hypercall::guest_ret(e.class())),
                }
            }
            WaitReason::ChanReady { chan, buf, max_len } => {
                match self.kernel.chan_recv(chan, max_len) {
                    Ok(Some(data)) => match vm.write_guest(buf, &data) {
                        Ok(()) => vcpu.set_reg(Reg(0), data.len() as u64),
                        Err(fault) => delivery_fault = Some(fault),
                    },
                    // Drained and closed while we were parked: EOF.
                    Ok(None) => vcpu.set_reg(Reg(0), 0),
                    Err(e) => vcpu.set_reg(Reg(0), hypercall::guest_ret(e.class())),
                }
            }
            WaitReason::ChanSendReady { chan, buf, len } => {
                match vm.read_guest(buf, len) {
                    Ok(data) => match self.kernel.chan_send(chan, &data) {
                        Ok(()) => vcpu.set_reg(Reg(0), len as u64),
                        // Closed while parked: the send fails cleanly.
                        Err(e) => vcpu.set_reg(Reg(0), hypercall::guest_ret(e.class())),
                    },
                    Err(fault) => delivery_fault = Some(fault),
                }
            }
        }

        let end = match delivery_fault {
            Some(fault) => SegmentEnd::Exit(ExitKind::Faulted(fault)),
            None => self.exec_segment(
                &vm,
                id,
                policy,
                snapshot_enabled,
                true,
                &mut invocation,
                &mut hypercalls,
                &mut armed,
                handler,
            ),
        };
        let t_end = clock.now();
        breakdown.exec += t_end - t_resume;
        breakdown.total = breakdown.image + breakdown.exec;
        match end {
            SegmentEnd::Block(wait) => {
                marks.extend(vm.vcpu().take_marks());
                Ok(RunResult::Blocked(SuspendedRun {
                    vm,
                    id,
                    policy,
                    snapshot_enabled,
                    invocation,
                    wait,
                    hypercalls,
                    marks,
                    armed,
                    breakdown,
                    blocked_at: t_end,
                }))
            }
            SegmentEnd::Exit(exit) => {
                let (outcome, vm) = self.finish_run(
                    vm,
                    id,
                    snapshot_enabled,
                    exit,
                    invocation,
                    marks,
                    hypercalls,
                    armed,
                    breakdown,
                );
                Ok(RunResult::Done(outcome, vm))
            }
        }
    }

    /// Kills a [`SuspendedRun`] without resuming it (e.g. a scheduler's
    /// block timeout fired). Returns the outcome — [`ExitKind::Blocked`],
    /// never warm-parkable — and the shell, which still holds the dead
    /// invocation's state and **must** take a wiped release before reuse.
    pub fn abort_suspended(&self, s: SuspendedRun) -> (RunOutcome, VmFd) {
        let SuspendedRun {
            vm,
            invocation,
            mut marks,
            hypercalls,
            mut breakdown,
            blocked_at,
            ..
        } = s;
        let clock = self.kernel.clock().clone();
        breakdown.blocked += clock.now() - blocked_at;
        breakdown.total = breakdown.image + breakdown.exec;
        self.release_guest_chans(&invocation);
        let vcpu = vm.vcpu();
        marks.extend(vcpu.take_marks());
        let ret = vcpu.reg(Reg(0));
        (
            RunOutcome {
                exit: ExitKind::Blocked,
                ret,
                invocation,
                marks,
                hypercalls,
                breakdown,
                warm_state: None,
            },
            vm,
        )
    }

    /// One guest-execution segment: runs until the guest finishes or, in
    /// resumable mode, hits a blocking hypercall. Non-resumable callers
    /// see blocking calls degraded to their non-blocking form
    /// ([`crate::hypercall::WOULD_BLOCK`] in `r0`).
    #[allow(clippy::too_many_arguments)]
    fn exec_segment(
        &self,
        vm: &VmFd,
        id: VirtineId,
        policy: HypercallMask,
        snapshot_enabled: bool,
        resumable: bool,
        invocation: &mut Invocation,
        hypercalls: &mut u64,
        armed: &mut Option<Rc<VmSnapshot>>,
        handler: CustomHandler<'_>,
    ) -> SegmentEnd {
        let vcpu = vm.vcpu();
        loop {
            match vcpu.run(self.config.step_budget) {
                Err(fault) => return SegmentEnd::Exit(ExitKind::Faulted(fault)),
                Ok(VmExit::Hlt) => return SegmentEnd::Exit(ExitKind::Halted(vcpu.reg(Reg(0)))),
                Ok(VmExit::StepLimit) => return SegmentEnd::Exit(ExitKind::StepLimit),
                Ok(VmExit::IoIn { .. }) => {
                    return SegmentEnd::Exit(ExitKind::Killed("unexpected port read"))
                }
                Ok(VmExit::IoOut { port, value }) if port == HYPERCALL_PORT => {
                    *hypercalls += 1;
                    self.stats.borrow_mut().hypercalls += 1;
                    let n = value;
                    if !policy.allows(n) {
                        self.stats.borrow_mut().denials += 1;
                        return SegmentEnd::Exit(ExitKind::Denied { nr: n });
                    }
                    let hc_args = [
                        vcpu.reg(Reg(1)),
                        vcpu.reg(Reg(2)),
                        vcpu.reg(Reg(3)),
                        vcpu.reg(Reg(4)),
                        vcpu.reg(Reg(5)),
                    ];
                    let mut mem = VmMem(vm);
                    let outcome = match handler(n, hc_args, &mut mem, invocation) {
                        Some(custom) => Ok(custom),
                        None => {
                            hypercall::handle_canned(n, hc_args, &mut mem, &self.kernel, invocation)
                        }
                    };
                    match outcome {
                        Err(fault) => return SegmentEnd::Exit(ExitKind::Faulted(fault)),
                        Ok(HcOutcome::Resume(v)) => vcpu.set_reg(Reg(0), v),
                        Ok(HcOutcome::Exit(code)) => {
                            return SegmentEnd::Exit(ExitKind::Exited(code))
                        }
                        Ok(HcOutcome::Kill(reason)) => {
                            return SegmentEnd::Exit(ExitKind::Killed(reason))
                        }
                        Ok(HcOutcome::Block(reason)) => {
                            if resumable {
                                self.stats.borrow_mut().blocks += 1;
                                return SegmentEnd::Block(reason);
                            }
                            // No event loop above us: degrade to the
                            // non-blocking form. The probe-and-fail is a
                            // full syscall round trip, like EAGAIN.
                            self.kernel.syscall_overhead();
                            vcpu.set_reg(Reg(0), hypercall::WOULD_BLOCK);
                        }
                        Ok(HcOutcome::TakeSnapshot) => {
                            // Resume value is fixed *before* the snapshot so
                            // restored invocations observe the same state.
                            vcpu.set_reg(Reg(0), 0);
                            if snapshot_enabled {
                                let mut specs = self.specs.borrow_mut();
                                let entry = &mut specs[id.0];
                                if entry.snapshot.is_none() {
                                    let taken = Rc::new(vm.snapshot());
                                    entry.snapshot = Some(Rc::clone(&taken));
                                    // The capture reset the dirty log, so
                                    // from here the shell's state is this
                                    // snapshot plus the log: warm-parkable.
                                    *armed = Some(taken);
                                    self.stats.borrow_mut().snapshots_taken += 1;
                                }
                            }
                        }
                    }
                }
                Ok(VmExit::IoOut { .. }) => {
                    return SegmentEnd::Exit(ExitKind::Killed("write to unknown port"))
                }
            }
        }
    }

    /// Closes every channel the guest `chan_open`ed during the ending
    /// invocation: guest-created channels are invocation-private, so the
    /// host reclaims them here (double closes — the guest already closed
    /// — are fine). Host-bound channels are untouched: their lifecycle
    /// belongs to the pipeline that wired them.
    fn release_guest_chans(&self, invocation: &Invocation) {
        for &chan in invocation.guest_opened_chans() {
            let _ = self.kernel.chan_close(chan);
        }
    }

    /// Epilogue shared by first-segment and resumed completions: decides
    /// warm-parkability and assembles the [`RunOutcome`].
    #[allow(clippy::too_many_arguments)]
    fn finish_run(
        &self,
        vm: VmFd,
        id: VirtineId,
        snapshot_enabled: bool,
        exit: ExitKind,
        invocation: Invocation,
        mut marks: Vec<(u8, Cycles)>,
        hypercalls: u64,
        armed: Option<Rc<VmSnapshot>>,
        breakdown: Breakdown,
    ) -> (RunOutcome, VmFd) {
        let vcpu = vm.vcpu();
        let ret = vcpu.reg(Reg(0));
        marks.extend(vcpu.take_marks());
        self.release_guest_chans(&invocation);

        // The shell may park warm only when its state provably derives
        // from the spec's *current* snapshot (compared by Rc identity — a
        // concurrent invalidate/re-register voids the token) and the run
        // ended by normal means; abnormal exits take the wiped release out
        // of caution and hygiene.
        let warm_state = if snapshot_enabled && exit.is_normal() {
            let current = self
                .specs
                .borrow()
                .get(id.0)
                .and_then(|e| e.snapshot.clone());
            match (armed, current) {
                (Some(a), Some(c)) if Rc::ptr_eq(&a, &c) => {
                    self.specs.borrow_mut()[id.0].warm.warm_ready += 1;
                    Some(a)
                }
                _ => None,
            }
        } else {
            None
        };

        (
            RunOutcome {
                exit,
                ret,
                invocation,
                marks,
                hypercalls,
                breakdown,
                warm_state,
            },
            vm,
        )
    }

    /// One-shot convenience: registers a throwaway spec (no snapshotting)
    /// and runs it once. Used by microbenchmarks.
    pub fn launch_once(
        &self,
        image: Image,
        mem_size: usize,
        policy: HypercallMask,
        invocation: Invocation,
    ) -> Result<RunOutcome, WaspError> {
        let spec = VirtineSpec::new("<oneshot>", image, mem_size)
            .with_policy(policy)
            .with_snapshot(false);
        let id = self.register(spec)?;
        self.run(id, &[], invocation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hypercall::nr;
    use vclock::costs;

    fn wasp(mode: PoolMode) -> Wasp {
        let clock = Clock::new();
        let kernel = HostKernel::new(clock, None);
        Wasp::new(
            Hypervisor::kvm(kernel),
            WaspConfig {
                pool_mode: mode,
                ..WaspConfig::default()
            },
        )
    }

    const MEM: usize = 64 * 1024;

    fn image(src: &str) -> Image {
        visa::assemble(src).expect("assemble")
    }

    #[test]
    fn halting_virtine_returns_r0() {
        let w = wasp(PoolMode::CachedAsync);
        let img = image(".org 0x8000\n mov r0, 41\n add r0, 1\n hlt\n");
        let out = w
            .launch_once(img, MEM, HypercallMask::DENY_ALL, Invocation::default())
            .unwrap();
        assert_eq!(out.exit, ExitKind::Halted(42));
        assert_eq!(out.ret, 42);
        assert!(out.breakdown.total.get() > 0);
    }

    #[test]
    fn exit_hypercall_is_always_allowed() {
        let w = wasp(PoolMode::CachedAsync);
        let img = image(".org 0x8000\n mov r0, 0\n mov r1, 7\n out 0x1, r0\n");
        let out = w
            .launch_once(img, MEM, HypercallMask::DENY_ALL, Invocation::default())
            .unwrap();
        assert_eq!(out.exit, ExitKind::Exited(7));
    }

    #[test]
    fn default_deny_kills_other_hypercalls() {
        let w = wasp(PoolMode::CachedAsync);
        // Attempt a write under deny-all.
        let img = image(".org 0x8000\n mov r0, 1\n mov r1, 1\n mov r2, 0x8000\n mov r3, 4\n out 0x1, r0\n hlt\n");
        let out = w
            .launch_once(img, MEM, HypercallMask::DENY_ALL, Invocation::default())
            .unwrap();
        assert_eq!(out.exit, ExitKind::Denied { nr: nr::WRITE });
        assert_eq!(w.stats().denials, 1);
    }

    #[test]
    fn permissive_policy_lets_write_reach_stdout() {
        let w = wasp(PoolMode::CachedAsync);
        let img = image(
            "
.org 0x8000
  mov r0, 1          ; write
  mov r1, 1          ; fd 1
  mov r2, msg
  mov r3, 5
  out 0x1, r0
  mov r4, r0         ; bytes written
  mov r0, 0          ; exit(0)
  mov r1, 0
  out 0x1, r0
msg: .ascii \"hello\"
",
        );
        let out = w
            .launch_once(img, MEM, HypercallMask::ALLOW_ALL, Invocation::default())
            .unwrap();
        assert_eq!(out.exit, ExitKind::Exited(0));
        assert_eq!(out.invocation.stdout, b"hello");
        assert_eq!(out.hypercalls, 2);
    }

    #[test]
    fn args_are_marshalled_to_address_zero() {
        let w = wasp(PoolMode::CachedAsync);
        let img = image(".org 0x8000\n mov r1, 0\n load.q r0, [r1]\n hlt\n");
        let spec = VirtineSpec::new("args", img, MEM).with_snapshot(false);
        let id = w.register(spec).unwrap();
        let out = w
            .run(id, &1234u64.to_le_bytes(), Invocation::default())
            .unwrap();
        assert_eq!(out.exit, ExitKind::Halted(1234));
    }

    #[test]
    fn snapshot_skips_reinitialization_on_second_run() {
        let w = wasp(PoolMode::CachedAsync);
        // "Init" stores 7 at 0x7000 slowly; snapshot; then read args and add.
        let img = image(
            "
.org 0x8000
  mov r1, 0x7000
  mov r2, 0
  mov r3, 0
init:
  add r2, 7
  add r3, 1
  cmp r3, 1000
  jl init
  store.q [r1], r2
  mov r0, 8            ; snapshot()
  out 0x1, r0
  mov r4, 0
  load.q r5, [r4]      ; arg
  load.q r6, [r1]
  mov r0, r5
  add r0, r6
  hlt
",
        );
        let spec = VirtineSpec::new("snap", img, MEM); // Snapshot on by default.
        let id = w.register(spec).unwrap();

        let out1 = w
            .run(id, &1u64.to_le_bytes(), Invocation::default())
            .unwrap();
        assert_eq!(out1.exit, ExitKind::Halted(7001));
        assert!(!out1.breakdown.restored_snapshot);
        assert_eq!(w.stats().snapshots_taken, 1);

        let out2 = w
            .run(id, &2u64.to_le_bytes(), Invocation::default())
            .unwrap();
        assert_eq!(out2.exit, ExitKind::Halted(7002));
        assert!(out2.breakdown.restored_snapshot);
        assert_eq!(w.stats().snapshot_restores, 1);
        // The restored run skips the init loop: far fewer executed cycles.
        assert!(
            out2.breakdown.exec < out1.breakdown.exec,
            "restore exec {} !< cold exec {}",
            out2.breakdown.exec,
            out1.breakdown.exec
        );
    }

    /// The snapshot fixture: a slow init loop, a snapshot, then
    /// args-dependent work — run N's result is 7000 + arg.
    fn snap_image() -> Image {
        image(
            "
.org 0x8000
  mov r1, 0x7000
  mov r2, 0
  mov r3, 0
init:
  add r2, 7
  add r3, 1
  cmp r3, 1000
  jl init
  store.q [r1], r2
  mov r0, 8            ; snapshot()
  out 0x1, r0
  mov r4, 0
  load.q r5, [r4]      ; arg
  load.q r6, [r1]
  mov r0, r5
  add r0, r6
  hlt
",
        )
    }

    #[test]
    fn second_run_is_a_warm_hit_with_a_tiny_delta() {
        let w = wasp(PoolMode::CachedAsync);
        let id = w
            .register(VirtineSpec::new("warm", snap_image(), MEM))
            .unwrap();

        // Run 1: cold boot, takes the snapshot mid-run, parks warm.
        let out1 = w
            .run(id, &1u64.to_le_bytes(), Invocation::default())
            .unwrap();
        assert_eq!(out1.exit, ExitKind::Halted(7001));
        assert!(!out1.breakdown.warm_hit);

        // Run 2: re-armed from the warm shell — a delta of a couple of
        // pages (the args page and any post-snapshot writes), not the full
        // sparse snapshot.
        let out2 = w
            .run(id, &2u64.to_le_bytes(), Invocation::default())
            .unwrap();
        assert_eq!(out2.exit, ExitKind::Halted(7002), "re-arm must be exact");
        assert!(out2.breakdown.warm_hit && out2.breakdown.restored_snapshot);
        assert!(out2.breakdown.reused_shell);
        // Run 1's args write predates its snapshot, so the first re-arm
        // can even be empty; run 3 must copy back exactly the pages run 2
        // dirtied after its re-arm (the args page).
        assert!(
            out2.breakdown.delta_pages <= 4,
            "delta of {} pages",
            out2.breakdown.delta_pages
        );
        let out3 = w
            .run(id, &3u64.to_le_bytes(), Invocation::default())
            .unwrap();
        assert_eq!(out3.exit, ExitKind::Halted(7003));
        assert!(out3.breakdown.warm_hit);
        assert!(
            (1..=4).contains(&out3.breakdown.delta_pages),
            "delta of {} pages",
            out3.breakdown.delta_pages
        );
        assert!(
            out2.breakdown.image < out1.breakdown.image,
            "delta image {} !< cold image {}",
            out2.breakdown.image,
            out1.breakdown.image
        );
        let stats = w.stats();
        assert_eq!(stats.warm_hits, 2);
        assert_eq!(
            stats.delta_pages_copied,
            out2.breakdown.delta_pages + out3.breakdown.delta_pages
        );
        let vw = w.virtine_warm_stats(id).unwrap();
        assert_eq!((vw.warm_hits, vw.cold_boots), (2, 1));
        assert_eq!(vw.warm_ready, 3, "all runs left the shell parkable");
    }

    #[test]
    fn warm_hit_lands_near_the_vmrun_floor() {
        // Acceptance: warm-hit acquire+image must be within 2x of a bare
        // KVM_RUN round trip for a small-dirty-footprint virtine, versus
        // the full sparse restore on the cold (clean-shell) path.
        let w = wasp(PoolMode::CachedAsync);
        let id = w
            .register(VirtineSpec::new("floor", snap_image(), MEM))
            .unwrap();
        w.run(id, &1u64.to_le_bytes(), Invocation::default())
            .unwrap();
        let warm = w
            .run(id, &2u64.to_le_bytes(), Invocation::default())
            .unwrap();
        assert!(warm.breakdown.warm_hit);
        let warm_cost = (warm.breakdown.acquire + warm.breakdown.image).get();
        assert!(
            warm_cost <= 2 * costs::kvm_run_round_trip(),
            "warm acquire+image {warm_cost} > 2x vmrun floor {}",
            2 * costs::kvm_run_round_trip()
        );

        // Same virtine without warm caching: the full sparse restore.
        let clock = Clock::new();
        let cold_w = Wasp::new(
            Hypervisor::kvm(HostKernel::new(clock, None)),
            WaspConfig {
                warm_capacity: 0,
                ..WaspConfig::default()
            },
        );
        let id = cold_w
            .register(VirtineSpec::new("full", snap_image(), MEM))
            .unwrap();
        cold_w
            .run(id, &1u64.to_le_bytes(), Invocation::default())
            .unwrap();
        let full = cold_w
            .run(id, &2u64.to_le_bytes(), Invocation::default())
            .unwrap();
        assert!(full.breakdown.restored_snapshot && !full.breakdown.warm_hit);
        let full_cost = (full.breakdown.acquire + full.breakdown.image).get();
        assert!(
            warm_cost < full_cost,
            "warm {warm_cost} must beat full restore {full_cost}"
        );
    }

    #[test]
    fn invalidated_snapshot_makes_warm_shells_stale_and_wiped() {
        let w = wasp(PoolMode::CachedAsync);
        let id = w
            .register(VirtineSpec::new("stale", snap_image(), MEM))
            .unwrap();
        w.run(id, &1u64.to_le_bytes(), Invocation::default())
            .unwrap();
        w.invalidate_snapshot(id);
        // The parked warm shell no longer matches any current snapshot:
        // the runtime wipes it in place and cold-boots (retaking the
        // snapshot mid-run).
        let out = w
            .run(id, &2u64.to_le_bytes(), Invocation::default())
            .unwrap();
        assert_eq!(out.exit, ExitKind::Halted(7002));
        assert!(!out.breakdown.warm_hit && !out.breakdown.restored_snapshot);
        assert_eq!(w.stats().warm_hits, 0);
        // The shell parks warm against the *new* snapshot and hits again.
        let out = w
            .run(id, &3u64.to_le_bytes(), Invocation::default())
            .unwrap();
        assert!(out.breakdown.warm_hit);
        assert_eq!(out.exit, ExitKind::Halted(7003));
    }

    #[test]
    fn zero_warm_capacity_preserves_the_full_restore_path() {
        let clock = Clock::new();
        let w = Wasp::new(
            Hypervisor::kvm(HostKernel::new(clock, None)),
            WaspConfig {
                warm_capacity: 0,
                ..WaspConfig::default()
            },
        );
        let id = w
            .register(VirtineSpec::new("off", snap_image(), MEM))
            .unwrap();
        w.run(id, &1u64.to_le_bytes(), Invocation::default())
            .unwrap();
        let out = w
            .run(id, &2u64.to_le_bytes(), Invocation::default())
            .unwrap();
        assert_eq!(out.exit, ExitKind::Halted(7002));
        assert!(out.breakdown.restored_snapshot && !out.breakdown.warm_hit);
        assert_eq!(w.stats().warm_hits, 0);
    }

    #[test]
    fn abnormal_exits_never_park_warm() {
        let w = wasp(PoolMode::CachedAsync);
        // Snapshots, then attempts a denied hypercall (write under
        // deny-all): the run ends Denied and the shell must be wiped, not
        // parked warm.
        let img = image(
            ".org 0x8000\n mov r0, 8\n out 0x1, r0\n mov r0, 1\n mov r1, 1\n mov r2, 0x8000\n mov r3, 4\n out 0x1, r0\n hlt\n",
        );
        let id = w.register(VirtineSpec::new("deny", img, MEM)).unwrap();
        let out = w.run(id, &[], Invocation::default()).unwrap();
        assert!(matches!(out.exit, ExitKind::Denied { .. }));
        assert!(out.warm_state.is_none());
        let out2 = w.run(id, &[], Invocation::default()).unwrap();
        assert!(
            !out2.breakdown.warm_hit,
            "no warm shell may survive an abnormal exit"
        );
    }

    #[test]
    fn snapshot_disabled_by_config_flag() {
        let clock = Clock::new();
        let kernel = HostKernel::new(clock, None);
        let w = Wasp::new(
            Hypervisor::kvm(kernel),
            WaspConfig {
                disable_snapshots: true,
                ..WaspConfig::default()
            },
        );
        let img = image(".org 0x8000\n mov r0, 8\n out 0x1, r0\n hlt\n");
        let id = w.register(VirtineSpec::new("s", img, MEM)).unwrap();
        w.run(id, &[], Invocation::default()).unwrap();
        let out = w.run(id, &[], Invocation::default()).unwrap();
        assert!(!out.breakdown.restored_snapshot);
        assert_eq!(w.stats().snapshots_taken, 0);
    }

    #[test]
    fn custom_handler_overrides_canned() {
        let w = wasp(PoolMode::CachedAsync);
        let img = image(".org 0x8000\n mov r0, 9\n mov r1, 5\n out 0x1, r0\n hlt\n");
        let id = w
            .register(
                VirtineSpec::new("h", img, MEM)
                    .with_policy(HypercallMask::ALLOW_ALL)
                    .with_snapshot(false),
            )
            .unwrap();
        let mut seen = Vec::new();
        let out = w
            .run_with_handler(
                id,
                &[],
                Invocation::default(),
                &mut |n, args, _mem, _inv| {
                    seen.push((n, args[0]));
                    Some(HcOutcome::Resume(777))
                },
            )
            .unwrap();
        assert_eq!(out.exit, ExitKind::Halted(777));
        assert_eq!(seen, vec![(nr::GET_DATA, 5)]);
    }

    #[test]
    fn guest_fault_is_contained_and_reported() {
        let w = wasp(PoolMode::CachedAsync);
        let img = image(".org 0x8000\n mov r1, 0x200000\n load.q r0, [r1]\n hlt\n");
        let out = w
            .launch_once(img, MEM, HypercallMask::DENY_ALL, Invocation::default())
            .unwrap();
        assert!(matches!(out.exit, ExitKind::Faulted(_)));
        // The runtime survives and can run more virtines.
        let ok = w
            .launch_once(
                image(".org 0x8000\n hlt\n"),
                MEM,
                HypercallMask::DENY_ALL,
                Invocation::default(),
            )
            .unwrap();
        assert_eq!(ok.exit, ExitKind::Halted(0));
    }

    #[test]
    fn virtines_cannot_see_each_others_data() {
        // Virtine A writes a secret; virtine B (same spec, new invocation)
        // reads the same address and must see zero (§3.1 virtine isolation).
        let w = wasp(PoolMode::CachedAsync);
        let writer =
            image(".org 0x8000\n mov r1, 0x5000\n mov r2, 0xDEAD\n store.q [r1], r2\n hlt\n");
        let reader = image(".org 0x8000\n mov r1, 0x5000\n load.q r0, [r1]\n hlt\n");
        let wid = w
            .register(VirtineSpec::new("w", writer, MEM).with_snapshot(false))
            .unwrap();
        let rid = w
            .register(VirtineSpec::new("r", reader, MEM).with_snapshot(false))
            .unwrap();
        w.run(wid, &[], Invocation::default()).unwrap();
        let out = w.run(rid, &[], Invocation::default()).unwrap();
        assert_eq!(
            out.exit,
            ExitKind::Halted(0),
            "secret leaked across virtines"
        );
    }

    #[test]
    fn image_too_large_is_rejected() {
        let w = wasp(PoolMode::CachedAsync);
        let mut img = image(".org 0x8000\n hlt\n");
        img.pad_to(MEM);
        let err = w.register(VirtineSpec::new("big", img, MEM)).unwrap_err();
        assert!(matches!(err, WaspError::ImageTooLarge { .. }));
    }

    #[test]
    fn pool_reuse_shows_up_in_breakdown() {
        let w = wasp(PoolMode::CachedAsync);
        let img = image(".org 0x8000\n hlt\n");
        let id = w
            .register(VirtineSpec::new("p", img, MEM).with_snapshot(false))
            .unwrap();
        let cold = w.run(id, &[], Invocation::default()).unwrap();
        let warm = w.run(id, &[], Invocation::default()).unwrap();
        assert!(!cold.breakdown.reused_shell);
        assert!(warm.breakdown.reused_shell);
        assert!(
            warm.breakdown.acquire.get() * 50 < cold.breakdown.acquire.get(),
            "warm acquire {} vs cold acquire {}",
            warm.breakdown.acquire,
            cold.breakdown.acquire
        );
    }

    /// A connection-bound guest: stores a sentinel, blocking-recvs into
    /// 0x4000, and halts with the recv return value in `r0`.
    fn recv_image() -> Image {
        image(
            "
.org 0x8000
  mov r4, 0x5000
  mov r5, 0xDEAD
  store.q [r4], r5     ; per-invocation secret (wipe-on-kill check)
  mov r0, 7            ; recv
  mov r1, 0x4000       ; buf
  mov r2, 64           ; max_len
  mov r3, 0            ; flags: blocking
  out 0x1, r0
  hlt
",
        )
    }

    /// A listening kernel plus an accepted connection pair.
    fn conn_pair(w: &Wasp, port: u16) -> (hostsim::SockId, hostsim::SockId) {
        let k = w.kernel();
        k.net_listen(port).unwrap();
        let client = k.net_connect(port).unwrap();
        let server = k.net_accept(port).unwrap().unwrap();
        (client, server)
    }

    fn recv_spec(w: &Wasp) -> VirtineId {
        w.register(
            VirtineSpec::new("recv", recv_image(), MEM)
                .with_policy(HypercallMask::allowing(&[nr::RECV]))
                .with_snapshot(false),
        )
        .unwrap()
    }

    #[test]
    fn blocked_then_resumed_run_charges_the_same_guest_cycles_as_unblocked() {
        // Run A: the data is already queued, so the run never blocks.
        let w = wasp(PoolMode::CachedAsync);
        let (client, server) = conn_pair(&w, 80);
        let id = recv_spec(&w);
        w.kernel().net_send(client, b"ping").unwrap();
        let vm = w.hypervisor().create_vm(MEM, LOAD_ADDR);
        let RunResult::Done(out_a, _) = w
            .run_on_shell_resumable(
                vm,
                ShellSource::Created,
                id,
                &[],
                Invocation::with_conn(server),
                HypercallMask::ALLOW_ALL,
                &mut |_, _, _, _| None,
            )
            .unwrap()
        else {
            panic!("pre-sent data must not block");
        };
        assert_eq!(out_a.exit, ExitKind::Halted(4));
        assert_eq!(out_a.breakdown.resumes, 0);
        assert_eq!(out_a.breakdown.blocked, Cycles::ZERO);

        // Run B: same guest, empty socket — blocks, waits out some virtual
        // time, then resumes when the bytes arrive.
        let w = wasp(PoolMode::CachedAsync);
        let (client, server) = conn_pair(&w, 80);
        let id = recv_spec(&w);
        let vm = w.hypervisor().create_vm(MEM, LOAD_ADDR);
        let RunResult::Blocked(s) = w
            .run_on_shell_resumable(
                vm,
                ShellSource::Created,
                id,
                &[],
                Invocation::with_conn(server),
                HypercallMask::ALLOW_ALL,
                &mut |_, _, _, _| None,
            )
            .unwrap()
        else {
            panic!("empty socket must block");
        };
        assert_eq!(w.stats().blocks, 1);
        // Unrelated platform work passes while the run is parked.
        w.clock().tick(1_000_000);
        w.kernel().net_send(client, b"ping").unwrap();
        let RunResult::Done(out_b, _) = w.resume_on_shell(s, &mut |_, _, _, _| None).unwrap()
        else {
            panic!("readable socket must resume to completion");
        };
        assert_eq!(out_b.exit, ExitKind::Halted(4));
        assert_eq!(out_b.breakdown.resumes, 1);
        assert!(out_b.breakdown.blocked.get() >= 1_000_000);
        assert_eq!(w.stats().resumes, 1);

        // The acceptance invariant: segments sum to the unblocked figure —
        // no double-charged re-entry, and parked time stays out of
        // exec/total.
        assert_eq!(
            out_b.breakdown.exec, out_a.breakdown.exec,
            "blocked-then-resumed exec must equal the unblocked run's"
        );
        assert_eq!(out_b.breakdown.total, out_a.breakdown.total);
        assert_eq!(out_b.hypercalls, out_a.hypercalls);
    }

    /// A guest that blocking-chan_recvs from handle 0 into 0x4000 and
    /// halts with the return value in `r0`.
    fn chan_recv_image() -> Image {
        image(
            "
.org 0x8000
  mov r0, 13           ; chan_recv
  mov r1, 0            ; handle 0
  mov r2, 0x4000       ; buf
  mov r3, 64           ; max_len
  mov r4, 0            ; flags: blocking
  out 0x1, r0
  hlt
",
        )
    }

    fn chan_recv_spec(w: &Wasp) -> VirtineId {
        w.register(
            VirtineSpec::new("chan_recv", chan_recv_image(), MEM)
                .with_policy(HypercallMask::allowing(&[nr::CHAN_RECV]))
                .with_snapshot(false),
        )
        .unwrap()
    }

    #[test]
    fn chan_blocked_then_resumed_run_charges_the_same_guest_cycles_as_unblocked() {
        // Run A: the message is already queued — no park.
        let w = wasp(PoolMode::CachedAsync);
        let chan = w.kernel().chan_open(256);
        let id = chan_recv_spec(&w);
        w.kernel().chan_send(chan, b"ping").unwrap();
        let vm = w.hypervisor().create_vm(MEM, LOAD_ADDR);
        let RunResult::Done(out_a, _) = w
            .run_on_shell_resumable(
                vm,
                ShellSource::Created,
                id,
                &[],
                Invocation::default().with_chans(vec![chan]),
                HypercallMask::ALLOW_ALL,
                &mut |_, _, _, _| None,
            )
            .unwrap()
        else {
            panic!("pre-sent message must not block");
        };
        assert_eq!(out_a.exit, ExitKind::Halted(4));
        assert_eq!(out_a.breakdown.resumes, 0);

        // Run B: empty channel — parks, waits out virtual time, resumes.
        let w = wasp(PoolMode::CachedAsync);
        let chan = w.kernel().chan_open(256);
        let id = chan_recv_spec(&w);
        let vm = w.hypervisor().create_vm(MEM, LOAD_ADDR);
        let RunResult::Blocked(s) = w
            .run_on_shell_resumable(
                vm,
                ShellSource::Created,
                id,
                &[],
                Invocation::default().with_chans(vec![chan]),
                HypercallMask::ALLOW_ALL,
                &mut |_, _, _, _| None,
            )
            .unwrap()
        else {
            panic!("empty channel must block");
        };
        assert!(matches!(
            s.wait(),
            crate::hypercall::WaitReason::ChanReady { .. }
        ));
        // A spurious resume (still empty) re-parks without charging.
        let RunResult::Blocked(s) = w.resume_on_shell(s, &mut |_, _, _, _| None).unwrap() else {
            panic!("still empty: must re-park");
        };
        w.clock().tick(1_000_000);
        w.kernel().chan_send(chan, b"ping").unwrap();
        let RunResult::Done(out_b, _) = w.resume_on_shell(s, &mut |_, _, _, _| None).unwrap()
        else {
            panic!("readable channel must resume to completion");
        };
        assert_eq!(out_b.exit, ExitKind::Halted(4));
        assert_eq!(out_b.breakdown.resumes, 1);
        assert!(out_b.breakdown.blocked.get() >= 1_000_000);

        // The acceptance invariant, extended to channels: a parked
        // consumer charges byte-identical guest cycles to an unparked one.
        assert_eq!(
            out_b.breakdown.exec, out_a.breakdown.exec,
            "chan-blocked-then-resumed exec must equal the unblocked run's"
        );
        assert_eq!(out_b.breakdown.total, out_a.breakdown.total);
        assert_eq!(out_b.hypercalls, out_a.hypercalls);
    }

    #[test]
    fn guest_opened_channels_die_with_the_invocation() {
        // The guest opens a channel and exits without closing it; the
        // runtime must close it so host channel state cannot outlive the
        // invocation. (Host-bound channels are untouched: the pipeline
        // that wired them owns their lifecycle.)
        let img = image(
            "
.org 0x8000
  mov r0, 11           ; chan_open(16)
  mov r1, 16
  out 0x1, r0
  hlt
",
        );
        let w = wasp(PoolMode::CachedAsync);
        let host_chan = w.kernel().chan_open(16);
        let id = w
            .register(
                VirtineSpec::new("opener", img, MEM)
                    .with_policy(HypercallMask::allowing(&[nr::CHAN_OPEN]))
                    .with_snapshot(false),
            )
            .unwrap();
        let out = w
            .run(id, &[], Invocation::default().with_chans(vec![host_chan]))
            .unwrap();
        assert!(out.exit.is_normal());
        assert_eq!(out.invocation.guest_opened_chans().len(), 1);
        let guest_chan = out.invocation.guest_opened_chans()[0];
        // The guest-opened channel was closed (and, empty, reaped); the
        // host-bound one is still live.
        assert_eq!(
            w.kernel().chan_send(guest_chan, b"x"),
            Err(hostsim::ChanError::Closed(guest_chan)),
            "guest-opened channel must not outlive the invocation"
        );
        w.kernel().chan_send(host_chan, b"x").unwrap();
    }

    #[test]
    fn chan_send_backpressure_parks_and_resumes_after_capacity_frees() {
        // A guest that chan_sends 8 bytes at 0x100 into handle 0.
        let img = image(
            "
.org 0x8000
  mov r1, 0x100
  mov r5, 0x41414141
  store.q [r1], r5
  mov r0, 12           ; chan_send
  mov r1, 0            ; handle 0
  mov r2, 0x100        ; buf
  mov r3, 8            ; len
  mov r4, 0            ; flags: blocking
  out 0x1, r0
  hlt
",
        );
        let w = wasp(PoolMode::CachedAsync);
        let chan = w.kernel().chan_open(8);
        // Pre-fill the channel so the guest's send cannot fit.
        w.kernel().chan_send(chan, b"xxxxxx").unwrap();
        let id = w
            .register(
                VirtineSpec::new("chan_send", img, MEM)
                    .with_policy(HypercallMask::allowing(&[nr::CHAN_SEND]))
                    .with_snapshot(false),
            )
            .unwrap();
        let vm = w.hypervisor().create_vm(MEM, LOAD_ADDR);
        let RunResult::Blocked(s) = w
            .run_on_shell_resumable(
                vm,
                ShellSource::Created,
                id,
                &[],
                Invocation::default().with_chans(vec![chan]),
                HypercallMask::ALLOW_ALL,
                &mut |_, _, _, _| None,
            )
            .unwrap()
        else {
            panic!("full channel must block the sender");
        };
        assert!(matches!(
            s.wait(),
            crate::hypercall::WaitReason::ChanSendReady { .. }
        ));
        // Draining the queue frees capacity; the resume performs the send.
        w.kernel().chan_recv(chan, 64).unwrap().unwrap();
        let RunResult::Done(out, _) = w.resume_on_shell(s, &mut |_, _, _, _| None).unwrap() else {
            panic!("freed capacity must resume the sender");
        };
        assert_eq!(out.exit, ExitKind::Halted(8), "send completed at resume");
        let msg = w.kernel().chan_recv(chan, 64).unwrap().unwrap();
        assert_eq!(&msg[..4], b"AAAA", "the queued bytes landed");
    }

    #[test]
    fn chan_closed_while_sender_parked_resumes_to_a_clean_failure() {
        let img = image(
            "
.org 0x8000
  mov r0, 12           ; chan_send(0, 0x100, 8)
  mov r1, 0
  mov r2, 0x100
  mov r3, 8
  mov r4, 0
  out 0x1, r0
  hlt
",
        );
        let w = wasp(PoolMode::CachedAsync);
        let chan = w.kernel().chan_open(8);
        w.kernel().chan_send(chan, b"fullfull").unwrap();
        let id = w
            .register(
                VirtineSpec::new("s", img, MEM)
                    .with_policy(HypercallMask::allowing(&[nr::CHAN_SEND]))
                    .with_snapshot(false),
            )
            .unwrap();
        let vm = w.hypervisor().create_vm(MEM, LOAD_ADDR);
        let RunResult::Blocked(s) = w
            .run_on_shell_resumable(
                vm,
                ShellSource::Created,
                id,
                &[],
                Invocation::default().with_chans(vec![chan]),
                HypercallMask::ALLOW_ALL,
                &mut |_, _, _, _| None,
            )
            .unwrap()
        else {
            panic!("must block");
        };
        w.kernel().chan_close(chan).unwrap();
        let RunResult::Done(out, _) = w.resume_on_shell(s, &mut |_, _, _, _| None).unwrap() else {
            panic!("close ends the send wait");
        };
        // The send failed with -1: the wait ended, the guest decides.
        assert_eq!(out.exit, ExitKind::Halted(u64::MAX));
    }

    #[test]
    fn spurious_resume_reparks_without_charging_exec() {
        let w = wasp(PoolMode::CachedAsync);
        let (client, server) = conn_pair(&w, 80);
        let id = recv_spec(&w);
        let vm = w.hypervisor().create_vm(MEM, LOAD_ADDR);
        let RunResult::Blocked(s) = w
            .run_on_shell_resumable(
                vm,
                ShellSource::Created,
                id,
                &[],
                Invocation::with_conn(server),
                HypercallMask::ALLOW_ALL,
                &mut |_, _, _, _| None,
            )
            .unwrap()
        else {
            panic!("must block");
        };
        let exec_before = s.breakdown().exec;
        let RunResult::Blocked(s) = w.resume_on_shell(s, &mut |_, _, _, _| None).unwrap() else {
            panic!("still no data: must re-park");
        };
        assert_eq!(s.breakdown().exec, exec_before);
        assert_eq!(s.breakdown().resumes, 0);
        assert_eq!(w.stats().resumes, 0);
        w.kernel().net_send(client, b"ok").unwrap();
        let RunResult::Done(out, _) = w.resume_on_shell(s, &mut |_, _, _, _| None).unwrap() else {
            panic!("must complete");
        };
        assert_eq!(out.exit, ExitKind::Halted(2));
    }

    #[test]
    fn peer_close_while_parked_resumes_to_a_clean_eof() {
        let w = wasp(PoolMode::CachedAsync);
        let (client, server) = conn_pair(&w, 80);
        let id = recv_spec(&w);
        let vm = w.hypervisor().create_vm(MEM, LOAD_ADDR);
        let RunResult::Blocked(s) = w
            .run_on_shell_resumable(
                vm,
                ShellSource::Created,
                id,
                &[],
                Invocation::with_conn(server),
                HypercallMask::ALLOW_ALL,
                &mut |_, _, _, _| None,
            )
            .unwrap()
        else {
            panic!("must block");
        };
        w.kernel().net_close(client).unwrap();
        let RunResult::Done(out, _) = w.resume_on_shell(s, &mut |_, _, _, _| None).unwrap() else {
            panic!("EOF is readable");
        };
        assert_eq!(out.exit, ExitKind::Halted(0), "EOF is 0, not an error");
    }

    #[test]
    fn aborted_suspended_run_reports_blocked_and_the_shell_wipes_clean() {
        let w = wasp(PoolMode::CachedAsync);
        let (_client, server) = conn_pair(&w, 80);
        let id = recv_spec(&w);
        let vm = w.hypervisor().create_vm(MEM, LOAD_ADDR);
        let RunResult::Blocked(s) = w
            .run_on_shell_resumable(
                vm,
                ShellSource::Created,
                id,
                &[],
                Invocation::with_conn(server),
                HypercallMask::ALLOW_ALL,
                &mut |_, _, _, _| None,
            )
            .unwrap()
        else {
            panic!("must block");
        };
        assert!(matches!(
            s.wait(),
            crate::hypercall::WaitReason::RecvReady { .. }
        ));
        let (out, vm) = w.abort_suspended(s);
        assert_eq!(out.exit, ExitKind::Blocked);
        assert!(!out.exit.is_normal());
        assert!(out.warm_state.is_none(), "a killed block never parks warm");
        // The shell still holds the parked invocation's secret; the wiped
        // release erases it before any reuse.
        assert_eq!(
            u64::from_le_bytes(vm.read_guest(0x5000, 8).unwrap().try_into().unwrap()),
            0xDEAD
        );
        let mut pool = Pool::new(PoolMode::CachedAsync, LOAD_ADDR);
        pool.release(vm);
        let (vm, reused) = pool.acquire(w.hypervisor(), MEM);
        assert!(reused);
        assert!(
            vm.read_guest(0x5000, 8).unwrap().iter().all(|&b| b == 0),
            "secret survived the wipe"
        );
    }

    #[test]
    fn non_resumable_run_degrades_blocking_recv_to_would_block() {
        let w = wasp(PoolMode::CachedAsync);
        let (_client, server) = conn_pair(&w, 80);
        let id = recv_spec(&w);
        // Wasp::run has no event loop: the guest sees the sentinel rather
        // than the runtime deadlocking on a wait nobody will satisfy.
        let out = w.run(id, &[], Invocation::with_conn(server)).unwrap();
        assert_eq!(out.exit, ExitKind::Halted(crate::hypercall::WOULD_BLOCK));
        assert_eq!(w.stats().blocks, 0, "degraded calls are not suspensions");
    }

    #[test]
    fn step_limit_watchdog() {
        let clock = Clock::new();
        let kernel = HostKernel::new(clock, None);
        let w = Wasp::new(
            Hypervisor::kvm(kernel),
            WaspConfig {
                step_budget: 1_000,
                ..WaspConfig::default()
            },
        );
        let img = image(".org 0x8000\nspin: jmp spin\n");
        let out = w
            .launch_once(img, MEM, HypercallMask::DENY_ALL, Invocation::default())
            .unwrap();
        assert_eq!(out.exit, ExitKind::StepLimit);
    }
}
