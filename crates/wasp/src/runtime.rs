//! The Wasp runtime: registering virtine specs and running invocations.
//!
//! Wasp is "a specialized, embeddable micro-hypervisor runtime that deploys
//! virtines with an easy-to-use interface" (§5.1). A *virtine client* (host
//! program) registers a [`VirtineSpec`] — binary image, memory size,
//! hypercall policy — and then [`Wasp::run`]s invocations against it. Each
//! invocation:
//!
//! 1. acquires a hardware context from the shell [`Pool`] (§5.2);
//! 2. installs the image, or restores the spec's snapshot if one was taken
//!    by a previous invocation (§5.2 snapshotting, Figure 7);
//! 3. writes the marshalled arguments at guest address 0x0 (§6.1);
//! 4. runs the guest, interposing on every hypercall: the policy mask is
//!    checked first (default-deny, §5.1), then a client-supplied custom
//!    handler, then Wasp's canned handlers;
//! 5. releases the shell back to the pool (cleaned per the pool mode).

use std::cell::RefCell;
use std::rc::Rc;

use hostsim::HostKernel;
use kvmsim::{Hypervisor, VmExit, VmFd, VmSnapshot};
use vclock::{Clock, Cycles};
use visa::asm::Image;
use visa::cpu::Fault;
use visa::Reg;

use crate::hypercall::{self, GuestMem, HcOutcome, HypercallMask, Invocation, HYPERCALL_PORT};
use crate::pool::{Pool, PoolMode, PoolStats};

/// Guest address where marshalled arguments are placed ("the argument, n,
/// is loaded into the virtine's address space at address 0x0", §6.1).
pub const ARGS_ADDR: u64 = 0x0;

/// Guest address images are loaded at ("Wasp simply accepts a binary image,
/// loads it at guest virtual address 0x8000", §5.1).
pub const LOAD_ADDR: u64 = 0x8000;

/// Environment variable that disables snapshotting for language-extension
/// virtines ("all virtines created via our language extensions use Wasp's
/// snapshot feature by default. This can be disabled with the use of an
/// environment variable", §5.3).
pub const NO_SNAPSHOT_ENV: &str = "VIRTINE_NO_SNAPSHOT";

/// Runtime configuration for a [`Wasp`] instance.
#[derive(Debug, Clone)]
pub struct WaspConfig {
    /// Shell pooling mode (§5.2).
    pub pool_mode: PoolMode,
    /// Instruction budget per `KVM_RUN` before the watchdog fires.
    pub step_budget: u64,
    /// When `true`, snapshotting is disabled for every spec regardless of
    /// its own flag (the [`NO_SNAPSHOT_ENV`] escape hatch).
    pub disable_snapshots: bool,
}

impl Default for WaspConfig {
    fn default() -> WaspConfig {
        WaspConfig {
            pool_mode: PoolMode::CachedAsync,
            step_budget: 500_000_000,
            disable_snapshots: false,
        }
    }
}

impl WaspConfig {
    /// Default configuration, honouring [`NO_SNAPSHOT_ENV`] from the
    /// process environment.
    pub fn from_env() -> WaspConfig {
        WaspConfig {
            disable_snapshots: std::env::var_os(NO_SNAPSHOT_ENV).is_some(),
            ..WaspConfig::default()
        }
    }
}

/// A registered virtine: the unit the `virtine` keyword compiles to.
#[derive(Debug, Clone)]
pub struct VirtineSpec {
    /// Diagnostic name (usually the annotated function's name).
    pub name: String,
    /// The toolchain-produced binary image.
    pub image: Rc<Image>,
    /// Guest-physical memory size for this virtine's contexts.
    pub mem_size: usize,
    /// Hypercall policy (default-deny unless widened, §5.3).
    pub policy: HypercallMask,
    /// Whether invocations snapshot after initialization (§5.2).
    pub snapshot: bool,
}

impl VirtineSpec {
    /// Builds a spec with the default-deny policy and snapshotting enabled
    /// (the language-extension defaults of §5.3).
    pub fn new(name: impl Into<String>, image: Image, mem_size: usize) -> VirtineSpec {
        VirtineSpec {
            name: name.into(),
            image: Rc::new(image),
            mem_size,
            policy: HypercallMask::DENY_ALL,
            snapshot: true,
        }
    }

    /// Widens the policy (builder style).
    pub fn with_policy(mut self, policy: HypercallMask) -> VirtineSpec {
        self.policy = policy;
        self
    }

    /// Enables or disables snapshotting (builder style).
    pub fn with_snapshot(mut self, snapshot: bool) -> VirtineSpec {
        self.snapshot = snapshot;
        self
    }
}

/// Handle to a registered virtine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VirtineId(usize);

impl VirtineId {
    /// The registration index, for dispatch layers that key tables by
    /// virtine. Only meaningful against the `Wasp` that issued the handle.
    pub fn into_raw(self) -> usize {
        self.0
    }

    /// Rebuilds a handle from [`VirtineId::into_raw`]. Running an id that
    /// was never registered yields [`WaspError::NoSuchVirtine`].
    pub fn from_raw(raw: usize) -> VirtineId {
        VirtineId(raw)
    }
}

/// How an invocation ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExitKind {
    /// The guest executed `hlt`; the value is `r0`.
    Halted(u64),
    /// The guest issued the `exit` hypercall with this code.
    Exited(u64),
    /// A hypercall was denied by the client's policy; the virtine was
    /// killed (the "request denied" arrow of Figure 5).
    Denied {
        /// The refused hypercall number.
        nr: u64,
    },
    /// A handler killed the virtine (malformed request, repeated one-shot
    /// call, unknown port, ...).
    Killed(&'static str),
    /// The guest faulted; the context was torn down.
    Faulted(Fault),
    /// The instruction budget ran out.
    StepLimit,
}

impl ExitKind {
    /// Whether the invocation completed by normal means.
    pub fn is_normal(&self) -> bool {
        matches!(self, ExitKind::Halted(_) | ExitKind::Exited(_))
    }
}

/// Cycle attribution for one invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Breakdown {
    /// Acquiring a shell (pool hit or `KVM_CREATE_VM`).
    pub acquire: Cycles,
    /// Installing the image or restoring the snapshot, plus marshalling.
    pub image: Cycles,
    /// Guest execution including hypercall servicing.
    pub exec: Cycles,
    /// Releasing the shell (synchronous cleaning shows up here).
    pub release: Cycles,
    /// End-to-end invocation latency.
    pub total: Cycles,
    /// Whether the shell came from the pool.
    pub reused_shell: bool,
    /// Whether a snapshot was restored instead of a cold boot.
    pub restored_snapshot: bool,
}

/// The result of one virtine invocation.
#[derive(Debug)]
pub struct RunOutcome {
    /// How the guest ended.
    pub exit: ExitKind,
    /// `r0` at exit (the unmarshalled return value for `vcc` virtines).
    pub ret: u64,
    /// Invocation state: `return_data` result, captured stdout, fd table.
    pub invocation: Invocation,
    /// Milestones recorded by guest `mark` instructions.
    pub marks: Vec<(u8, Cycles)>,
    /// Number of hypercalls serviced.
    pub hypercalls: u64,
    /// Cycle attribution.
    pub breakdown: Breakdown,
}

impl RunOutcome {
    /// Convenience: the guest's `return_data` bytes.
    pub fn result_bytes(&self) -> &[u8] {
        &self.invocation.result
    }
}

/// Errors raised before a virtine ever runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WaspError {
    /// Unknown [`VirtineId`].
    NoSuchVirtine,
    /// The image does not fit below `mem_size`.
    ImageTooLarge {
        /// End address of the image.
        image_end: u64,
        /// Configured guest memory size.
        mem_size: usize,
    },
    /// A shell handed to [`Wasp::run_on_shell`] was sized for a different
    /// guest-memory footprint than the spec requires. Shards must segregate
    /// shells by size, exactly as the internal pool does.
    ShellSizeMismatch {
        /// The shell's guest-memory size.
        shell: usize,
        /// The spec's guest-memory size.
        spec: usize,
    },
}

impl std::fmt::Display for WaspError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WaspError::NoSuchVirtine => write!(f, "no such virtine"),
            WaspError::ImageTooLarge {
                image_end,
                mem_size,
            } => write!(
                f,
                "image ends at {image_end:#x} but guest memory is only {mem_size:#x} bytes"
            ),
            WaspError::ShellSizeMismatch { shell, spec } => write!(
                f,
                "shell has {shell:#x} bytes of guest memory but the spec needs {spec:#x}"
            ),
        }
    }
}

impl std::error::Error for WaspError {}

/// Aggregate runtime statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WaspStats {
    /// Invocations launched.
    pub invocations: u64,
    /// Hypercalls serviced.
    pub hypercalls: u64,
    /// Hypercalls denied by policy.
    pub denials: u64,
    /// Snapshots taken.
    pub snapshots_taken: u64,
    /// Invocations that started from a snapshot.
    pub snapshot_restores: u64,
}

struct SpecEntry {
    spec: VirtineSpec,
    snapshot: Option<Rc<VmSnapshot>>,
}

/// A client-supplied hypercall handler. Returning `None` falls through to
/// Wasp's canned handlers; returning `Some(outcome)` overrides them.
/// This is the "client hypercall handler" box of Figure 5.
pub type CustomHandler<'a> =
    &'a mut dyn FnMut(u64, [u64; 5], &mut dyn GuestMem, &mut Invocation) -> Option<HcOutcome>;

/// The embeddable Wasp runtime (one per virtine client).
pub struct Wasp {
    hv: Hypervisor,
    kernel: HostKernel,
    config: WaspConfig,
    pool: RefCell<Pool>,
    specs: RefCell<Vec<SpecEntry>>,
    stats: RefCell<WaspStats>,
}

/// Adapter giving hypercall handlers bounds-checked guest-memory access.
struct VmMem<'a>(&'a VmFd);

impl GuestMem for VmMem<'_> {
    fn read_guest(&self, addr: u64, len: usize) -> Result<Vec<u8>, Fault> {
        self.0.read_guest(addr, len)
    }
    fn write_guest(&mut self, addr: u64, data: &[u8]) -> Result<(), Fault> {
        self.0.write_guest(addr, data)
    }
}

impl Wasp {
    /// Creates a runtime over the given hypervisor.
    pub fn new(hv: Hypervisor, config: WaspConfig) -> Wasp {
        let kernel = hv.kernel().clone();
        let pool = Pool::new(config.pool_mode, LOAD_ADDR);
        Wasp {
            hv,
            kernel,
            config,
            pool: RefCell::new(pool),
            specs: RefCell::new(Vec::new()),
            stats: RefCell::new(WaspStats::default()),
        }
    }

    /// Convenience: a KVM-backed runtime on a fresh deterministic host.
    pub fn new_kvm_default() -> Wasp {
        let clock = Clock::new();
        let kernel = HostKernel::new(clock, None);
        Wasp::new(Hypervisor::kvm(kernel), WaspConfig::default())
    }

    /// The shared clock.
    pub fn clock(&self) -> Clock {
        self.kernel.clock().clone()
    }

    /// The simulated host kernel.
    pub fn kernel(&self) -> &HostKernel {
        &self.kernel
    }

    /// The underlying hypervisor handle.
    pub fn hypervisor(&self) -> &Hypervisor {
        &self.hv
    }

    /// Runtime statistics so far.
    pub fn stats(&self) -> WaspStats {
        *self.stats.borrow()
    }

    /// Pool statistics so far.
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.borrow().stats()
    }

    /// Pre-creates `count` clean shells of `mem_size` bytes.
    pub fn prewarm(&self, mem_size: usize, count: usize) {
        self.pool.borrow_mut().prewarm(&self.hv, mem_size, count);
    }

    /// Registers a virtine spec, returning its handle.
    pub fn register(&self, mut spec: VirtineSpec) -> Result<VirtineId, WaspError> {
        let image_end = spec.image.base + spec.image.bytes.len() as u64;
        if image_end > spec.mem_size as u64 {
            return Err(WaspError::ImageTooLarge {
                image_end,
                mem_size: spec.mem_size,
            });
        }
        if self.config.disable_snapshots {
            spec.snapshot = false;
        }
        let mut specs = self.specs.borrow_mut();
        specs.push(SpecEntry {
            spec,
            snapshot: None,
        });
        Ok(VirtineId(specs.len() - 1))
    }

    /// Drops the stored snapshot for a spec (tests and experiments).
    pub fn invalidate_snapshot(&self, id: VirtineId) {
        if let Some(e) = self.specs.borrow_mut().get_mut(id.0) {
            e.snapshot = None;
        }
    }

    /// Runs one invocation with the canned handlers only.
    pub fn run(
        &self,
        id: VirtineId,
        args: &[u8],
        invocation: Invocation,
    ) -> Result<RunOutcome, WaspError> {
        self.run_with_handler(id, args, invocation, &mut |_, _, _, _| None)
    }

    /// Runs one invocation, giving `handler` first refusal on every
    /// permitted hypercall.
    pub fn run_with_handler(
        &self,
        id: VirtineId,
        args: &[u8],
        invocation: Invocation,
        handler: CustomHandler<'_>,
    ) -> Result<RunOutcome, WaspError> {
        let mem_size = {
            let specs = self.specs.borrow();
            specs
                .get(id.0)
                .ok_or(WaspError::NoSuchVirtine)?
                .spec
                .mem_size
        };
        let clock = self.kernel.clock().clone();
        let t0 = clock.now();

        // 1. Acquire a hardware context (Figure 6: reuse or provision).
        let (vm, reused) = self.pool.borrow_mut().acquire(&self.hv, mem_size);
        let t_acquired = clock.now();

        // 2.–4. Execute on the acquired shell.
        let (mut outcome, vm) = self.run_on_shell(
            vm,
            reused,
            id,
            args,
            invocation,
            HypercallMask::ALLOW_ALL,
            handler,
        )?;

        // 5. Recycle the shell.
        let t_exec = clock.now();
        self.pool.borrow_mut().release(vm);
        let t_end = clock.now();

        outcome.breakdown.acquire = t_acquired - t0;
        outcome.breakdown.release = t_end - t_exec;
        outcome.breakdown.total = t_end - t0;
        Ok(outcome)
    }

    /// Runs one invocation on a caller-provided shell, returning the used
    /// shell instead of releasing it into Wasp's internal pool. This is the
    /// dispatcher entry point: a scheduling layer (e.g. `vsched`) that keeps
    /// its own sharded shell pools acquires a shell itself, hands it here,
    /// and decides afterwards which shard's pool the shell is parked in.
    ///
    /// `narrow` is intersected with the spec's [`HypercallMask`]: a tenant
    /// profile can only further restrict what the spec permits. Pass
    /// [`HypercallMask::ALLOW_ALL`] for spec-policy-only behavior.
    ///
    /// The returned shell is *dirty* — the caller must route it through a
    /// [`Pool`] (whose release wipes it, §5.2) before any reuse.
    ///
    /// The `breakdown.acquire`/`release` fields of the outcome are zero;
    /// they belong to whoever manages the shell's lifecycle.
    #[allow(clippy::too_many_arguments)]
    pub fn run_on_shell(
        &self,
        vm: VmFd,
        reused: bool,
        id: VirtineId,
        args: &[u8],
        mut invocation: Invocation,
        narrow: HypercallMask,
        handler: CustomHandler<'_>,
    ) -> Result<(RunOutcome, VmFd), WaspError> {
        let (image, mem_size, policy, snapshot_enabled, snap) = {
            let specs = self.specs.borrow();
            let entry = specs.get(id.0).ok_or(WaspError::NoSuchVirtine)?;
            (
                Rc::clone(&entry.spec.image),
                entry.spec.mem_size,
                entry.spec.policy.intersect(narrow),
                entry.spec.snapshot,
                entry.snapshot.clone(),
            )
        };
        if vm.mem_size() != mem_size {
            return Err(WaspError::ShellSizeMismatch {
                shell: vm.mem_size(),
                spec: mem_size,
            });
        }
        self.stats.borrow_mut().invocations += 1;
        let clock = self.kernel.clock().clone();
        let t_acquired = clock.now();

        // 2. Install the execution state: snapshot fast path or cold image.
        let restored = if let (true, Some(snap)) = (snapshot_enabled, &snap) {
            vm.restore(snap);
            self.stats.borrow_mut().snapshot_restores += 1;
            true
        } else {
            vm.load_image(&image);
            false
        };
        // 3. Marshal arguments into the address space (charged as a copy).
        if !args.is_empty() {
            self.kernel.memcpy(args.len());
            vm.write_guest(ARGS_ADDR, args)
                .expect("argument region must be inside guest memory");
        }
        let t_image = clock.now();

        // 4. Run, interposing on hypercalls.
        let vcpu = vm.vcpu();
        let mut hypercalls = 0u64;
        let exit = loop {
            match vcpu.run(self.config.step_budget) {
                Err(fault) => break ExitKind::Faulted(fault),
                Ok(VmExit::Hlt) => break ExitKind::Halted(vcpu.reg(Reg(0))),
                Ok(VmExit::StepLimit) => break ExitKind::StepLimit,
                Ok(VmExit::IoIn { .. }) => break ExitKind::Killed("unexpected port read"),
                Ok(VmExit::IoOut { port, value }) if port == HYPERCALL_PORT => {
                    hypercalls += 1;
                    self.stats.borrow_mut().hypercalls += 1;
                    let n = value;
                    if !policy.allows(n) {
                        self.stats.borrow_mut().denials += 1;
                        break ExitKind::Denied { nr: n };
                    }
                    let hc_args = [
                        vcpu.reg(Reg(1)),
                        vcpu.reg(Reg(2)),
                        vcpu.reg(Reg(3)),
                        vcpu.reg(Reg(4)),
                        vcpu.reg(Reg(5)),
                    ];
                    let mut mem = VmMem(&vm);
                    let outcome = match handler(n, hc_args, &mut mem, &mut invocation) {
                        Some(custom) => Ok(custom),
                        None => hypercall::handle_canned(
                            n,
                            hc_args,
                            &mut mem,
                            &self.kernel,
                            &mut invocation,
                        ),
                    };
                    match outcome {
                        Err(fault) => break ExitKind::Faulted(fault),
                        Ok(HcOutcome::Resume(v)) => vcpu.set_reg(Reg(0), v),
                        Ok(HcOutcome::Exit(code)) => break ExitKind::Exited(code),
                        Ok(HcOutcome::Kill(reason)) => break ExitKind::Killed(reason),
                        Ok(HcOutcome::TakeSnapshot) => {
                            // Resume value is fixed *before* the snapshot so
                            // restored invocations observe the same state.
                            vcpu.set_reg(Reg(0), 0);
                            if snapshot_enabled {
                                let mut specs = self.specs.borrow_mut();
                                let entry = &mut specs[id.0];
                                if entry.snapshot.is_none() {
                                    entry.snapshot = Some(Rc::new(vm.snapshot()));
                                    self.stats.borrow_mut().snapshots_taken += 1;
                                }
                            }
                        }
                    }
                }
                Ok(VmExit::IoOut { .. }) => break ExitKind::Killed("write to unknown port"),
            }
        };
        let t_exec = clock.now();
        let ret = vcpu.reg(Reg(0));
        let marks = vcpu.take_marks();

        let outcome = RunOutcome {
            exit,
            ret,
            invocation,
            marks,
            hypercalls,
            breakdown: Breakdown {
                acquire: Cycles::ZERO,
                image: t_image - t_acquired,
                exec: t_exec - t_image,
                release: Cycles::ZERO,
                total: t_exec - t_acquired,
                reused_shell: reused,
                restored_snapshot: restored,
            },
        };
        Ok((outcome, vm))
    }

    /// One-shot convenience: registers a throwaway spec (no snapshotting)
    /// and runs it once. Used by microbenchmarks.
    pub fn launch_once(
        &self,
        image: Image,
        mem_size: usize,
        policy: HypercallMask,
        invocation: Invocation,
    ) -> Result<RunOutcome, WaspError> {
        let spec = VirtineSpec::new("<oneshot>", image, mem_size)
            .with_policy(policy)
            .with_snapshot(false);
        let id = self.register(spec)?;
        self.run(id, &[], invocation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hypercall::nr;

    fn wasp(mode: PoolMode) -> Wasp {
        let clock = Clock::new();
        let kernel = HostKernel::new(clock, None);
        Wasp::new(
            Hypervisor::kvm(kernel),
            WaspConfig {
                pool_mode: mode,
                ..WaspConfig::default()
            },
        )
    }

    const MEM: usize = 64 * 1024;

    fn image(src: &str) -> Image {
        visa::assemble(src).expect("assemble")
    }

    #[test]
    fn halting_virtine_returns_r0() {
        let w = wasp(PoolMode::CachedAsync);
        let img = image(".org 0x8000\n mov r0, 41\n add r0, 1\n hlt\n");
        let out = w
            .launch_once(img, MEM, HypercallMask::DENY_ALL, Invocation::default())
            .unwrap();
        assert_eq!(out.exit, ExitKind::Halted(42));
        assert_eq!(out.ret, 42);
        assert!(out.breakdown.total.get() > 0);
    }

    #[test]
    fn exit_hypercall_is_always_allowed() {
        let w = wasp(PoolMode::CachedAsync);
        let img = image(".org 0x8000\n mov r0, 0\n mov r1, 7\n out 0x1, r0\n");
        let out = w
            .launch_once(img, MEM, HypercallMask::DENY_ALL, Invocation::default())
            .unwrap();
        assert_eq!(out.exit, ExitKind::Exited(7));
    }

    #[test]
    fn default_deny_kills_other_hypercalls() {
        let w = wasp(PoolMode::CachedAsync);
        // Attempt a write under deny-all.
        let img = image(".org 0x8000\n mov r0, 1\n mov r1, 1\n mov r2, 0x8000\n mov r3, 4\n out 0x1, r0\n hlt\n");
        let out = w
            .launch_once(img, MEM, HypercallMask::DENY_ALL, Invocation::default())
            .unwrap();
        assert_eq!(out.exit, ExitKind::Denied { nr: nr::WRITE });
        assert_eq!(w.stats().denials, 1);
    }

    #[test]
    fn permissive_policy_lets_write_reach_stdout() {
        let w = wasp(PoolMode::CachedAsync);
        let img = image(
            "
.org 0x8000
  mov r0, 1          ; write
  mov r1, 1          ; fd 1
  mov r2, msg
  mov r3, 5
  out 0x1, r0
  mov r4, r0         ; bytes written
  mov r0, 0          ; exit(0)
  mov r1, 0
  out 0x1, r0
msg: .ascii \"hello\"
",
        );
        let out = w
            .launch_once(img, MEM, HypercallMask::ALLOW_ALL, Invocation::default())
            .unwrap();
        assert_eq!(out.exit, ExitKind::Exited(0));
        assert_eq!(out.invocation.stdout, b"hello");
        assert_eq!(out.hypercalls, 2);
    }

    #[test]
    fn args_are_marshalled_to_address_zero() {
        let w = wasp(PoolMode::CachedAsync);
        let img = image(".org 0x8000\n mov r1, 0\n load.q r0, [r1]\n hlt\n");
        let spec = VirtineSpec::new("args", img, MEM).with_snapshot(false);
        let id = w.register(spec).unwrap();
        let out = w
            .run(id, &1234u64.to_le_bytes(), Invocation::default())
            .unwrap();
        assert_eq!(out.exit, ExitKind::Halted(1234));
    }

    #[test]
    fn snapshot_skips_reinitialization_on_second_run() {
        let w = wasp(PoolMode::CachedAsync);
        // "Init" stores 7 at 0x7000 slowly; snapshot; then read args and add.
        let img = image(
            "
.org 0x8000
  mov r1, 0x7000
  mov r2, 0
  mov r3, 0
init:
  add r2, 7
  add r3, 1
  cmp r3, 1000
  jl init
  store.q [r1], r2
  mov r0, 8            ; snapshot()
  out 0x1, r0
  mov r4, 0
  load.q r5, [r4]      ; arg
  load.q r6, [r1]
  mov r0, r5
  add r0, r6
  hlt
",
        );
        let spec = VirtineSpec::new("snap", img, MEM); // Snapshot on by default.
        let id = w.register(spec).unwrap();

        let out1 = w
            .run(id, &1u64.to_le_bytes(), Invocation::default())
            .unwrap();
        assert_eq!(out1.exit, ExitKind::Halted(7001));
        assert!(!out1.breakdown.restored_snapshot);
        assert_eq!(w.stats().snapshots_taken, 1);

        let out2 = w
            .run(id, &2u64.to_le_bytes(), Invocation::default())
            .unwrap();
        assert_eq!(out2.exit, ExitKind::Halted(7002));
        assert!(out2.breakdown.restored_snapshot);
        assert_eq!(w.stats().snapshot_restores, 1);
        // The restored run skips the init loop: far fewer executed cycles.
        assert!(
            out2.breakdown.exec < out1.breakdown.exec,
            "restore exec {} !< cold exec {}",
            out2.breakdown.exec,
            out1.breakdown.exec
        );
    }

    #[test]
    fn snapshot_disabled_by_config_flag() {
        let clock = Clock::new();
        let kernel = HostKernel::new(clock, None);
        let w = Wasp::new(
            Hypervisor::kvm(kernel),
            WaspConfig {
                disable_snapshots: true,
                ..WaspConfig::default()
            },
        );
        let img = image(".org 0x8000\n mov r0, 8\n out 0x1, r0\n hlt\n");
        let id = w.register(VirtineSpec::new("s", img, MEM)).unwrap();
        w.run(id, &[], Invocation::default()).unwrap();
        let out = w.run(id, &[], Invocation::default()).unwrap();
        assert!(!out.breakdown.restored_snapshot);
        assert_eq!(w.stats().snapshots_taken, 0);
    }

    #[test]
    fn custom_handler_overrides_canned() {
        let w = wasp(PoolMode::CachedAsync);
        let img = image(".org 0x8000\n mov r0, 9\n mov r1, 5\n out 0x1, r0\n hlt\n");
        let id = w
            .register(
                VirtineSpec::new("h", img, MEM)
                    .with_policy(HypercallMask::ALLOW_ALL)
                    .with_snapshot(false),
            )
            .unwrap();
        let mut seen = Vec::new();
        let out = w
            .run_with_handler(
                id,
                &[],
                Invocation::default(),
                &mut |n, args, _mem, _inv| {
                    seen.push((n, args[0]));
                    Some(HcOutcome::Resume(777))
                },
            )
            .unwrap();
        assert_eq!(out.exit, ExitKind::Halted(777));
        assert_eq!(seen, vec![(nr::GET_DATA, 5)]);
    }

    #[test]
    fn guest_fault_is_contained_and_reported() {
        let w = wasp(PoolMode::CachedAsync);
        let img = image(".org 0x8000\n mov r1, 0x200000\n load.q r0, [r1]\n hlt\n");
        let out = w
            .launch_once(img, MEM, HypercallMask::DENY_ALL, Invocation::default())
            .unwrap();
        assert!(matches!(out.exit, ExitKind::Faulted(_)));
        // The runtime survives and can run more virtines.
        let ok = w
            .launch_once(
                image(".org 0x8000\n hlt\n"),
                MEM,
                HypercallMask::DENY_ALL,
                Invocation::default(),
            )
            .unwrap();
        assert_eq!(ok.exit, ExitKind::Halted(0));
    }

    #[test]
    fn virtines_cannot_see_each_others_data() {
        // Virtine A writes a secret; virtine B (same spec, new invocation)
        // reads the same address and must see zero (§3.1 virtine isolation).
        let w = wasp(PoolMode::CachedAsync);
        let writer =
            image(".org 0x8000\n mov r1, 0x5000\n mov r2, 0xDEAD\n store.q [r1], r2\n hlt\n");
        let reader = image(".org 0x8000\n mov r1, 0x5000\n load.q r0, [r1]\n hlt\n");
        let wid = w
            .register(VirtineSpec::new("w", writer, MEM).with_snapshot(false))
            .unwrap();
        let rid = w
            .register(VirtineSpec::new("r", reader, MEM).with_snapshot(false))
            .unwrap();
        w.run(wid, &[], Invocation::default()).unwrap();
        let out = w.run(rid, &[], Invocation::default()).unwrap();
        assert_eq!(
            out.exit,
            ExitKind::Halted(0),
            "secret leaked across virtines"
        );
    }

    #[test]
    fn image_too_large_is_rejected() {
        let w = wasp(PoolMode::CachedAsync);
        let mut img = image(".org 0x8000\n hlt\n");
        img.pad_to(MEM);
        let err = w.register(VirtineSpec::new("big", img, MEM)).unwrap_err();
        assert!(matches!(err, WaspError::ImageTooLarge { .. }));
    }

    #[test]
    fn pool_reuse_shows_up_in_breakdown() {
        let w = wasp(PoolMode::CachedAsync);
        let img = image(".org 0x8000\n hlt\n");
        let id = w
            .register(VirtineSpec::new("p", img, MEM).with_snapshot(false))
            .unwrap();
        let cold = w.run(id, &[], Invocation::default()).unwrap();
        let warm = w.run(id, &[], Invocation::default()).unwrap();
        assert!(!cold.breakdown.reused_shell);
        assert!(warm.breakdown.reused_shell);
        assert!(
            warm.breakdown.acquire.get() * 50 < cold.breakdown.acquire.get(),
            "warm acquire {} vs cold acquire {}",
            warm.breakdown.acquire,
            cold.breakdown.acquire
        );
    }

    #[test]
    fn step_limit_watchdog() {
        let clock = Clock::new();
        let kernel = HostKernel::new(clock, None);
        let w = Wasp::new(
            Hypervisor::kvm(kernel),
            WaspConfig {
                step_budget: 1_000,
                ..WaspConfig::default()
            },
        );
        let img = image(".org 0x8000\nspin: jmp spin\n");
        let out = w
            .launch_once(img, MEM, HypercallMask::DENY_ALL, Invocation::default())
            .unwrap();
        assert_eq!(out.exit, ExitKind::StepLimit);
    }
}
