//! The Wasp hypercall interface: numbers, policies, and canned handlers.
//!
//! "Hypercalls in Wasp are not meant to emulate low-level virtual devices,
//! but are instead designed to provide high-level hypervisor services with
//! as few exits as possible" (§5.1). A guest issues a hypercall with a
//! single `out` to [`HYPERCALL_PORT`]: the written value is the hypercall
//! number, arguments travel in registers `r1`–`r5`, and the handler's return
//! value is placed in `r0` before the guest resumes — one exit per call.
//!
//! Virtines live in a default-deny environment: "Wasp provides no externally
//! observable behavior through hypercalls other than the ability to exit the
//! virtual context" (§5.1). The [`HypercallMask`] is the client-specified
//! bitmask policy of `virtine_config(cfg)` (§5.3); clients may further
//! interpose a custom filter or full custom handlers.
//!
//! ## Cross-virtine channels (vchan)
//!
//! Virtines compose into pipelines over host-mediated channels
//! (`hostsim::chan`): bounded byte queues reachable only through the
//! `chan_*` hypercalls, so two virtines exchange bytes without ever
//! sharing memory — every transfer is an exit the host mediates and the
//! mask gates. The lifecycle mirrors the warm-shell diagram in
//! [`crate::pool`]:
//!
//! ```text
//!        chan_open / host bind            chan_send (fits)
//!   ───────────────────────► open ◄──────────────────────── producer
//!                             │ ▲                              │
//!            chan_recv        │ │ recv frees capacity          │ full:
//!            (data queued)    │ │ (wakes parked senders)       ▼
//!   consumer ◄────────────────┘ └──────────────── blocked in ChanSendReady
//!      │                                          (backpressure park)
//!      │ empty: blocked in ChanReady
//!      ▼            (park; send/close wakes *every* parked waiter)
//!   ChanReady park ── wake ──► resume at the faulting hypercall
//!                             │
//!                  chan_close ▼
//!   open ────────────────► closed: sends refused, queued data drains,
//!                          then EOF (`0`) — both sides' waiters woken
//! ```
//!
//! Unlike a socket (one waiter per end), *many* runs may park on one
//! channel; a wake is delivered to all of them and the losers re-park —
//! the wake-storm contract the dispatcher's resume placement relies on.

use std::collections::HashMap;

use hostsim::{ChanId, Fd, HostKernel, IoClass, SockId, SockReady};
use visa::cpu::Fault;

/// The I/O port virtines issue hypercalls on.
pub const HYPERCALL_PORT: u16 = 0x1;

/// `recv` flag: return [`WOULD_BLOCK`] instead of blocking when no data is
/// queued (the guest ABI's `MSG_DONTWAIT`). Rides in the hypercall's third
/// argument register.
pub const RECV_NONBLOCK: u64 = 1;

/// Sentinel a *non-blocking* `recv` returns when the socket is open but
/// empty. Distinct from `0` (EOF: peer closed and drained) and from the
/// errno-style `-1` error (no connection bound); as a signed integer it
/// reads as -2, mirroring the contract guests already check with
/// `n <= 0`.
pub const WOULD_BLOCK: u64 = u64::MAX - 1;

/// `chan_send`/`chan_recv` flag: return [`WOULD_BLOCK`] instead of
/// blocking when the channel is full (send) or empty (recv). Rides in the
/// hypercall's fourth argument register.
pub const CHAN_NONBLOCK: u64 = 1;

/// Bound on channels one invocation may hold (host-bound plus
/// `chan_open`ed): a guest looping `chan_open` must not grow host state
/// without limit.
pub const MAX_CHANS_PER_INVOCATION: usize = 64;

/// Hypercall numbers for Wasp's canned, general-purpose handlers (§5.1:
/// clients "can also choose from a variety of general-purpose handlers that
/// Wasp provides out-of-the-box; these canned hypercalls are used by our
/// language extensions").
pub mod nr {
    /// `exit(code)` — always permitted; the only default-allowed call.
    pub const EXIT: u64 = 0;
    /// `write(fd, buf, len)`.
    pub const WRITE: u64 = 1;
    /// `read(fd, buf, max_len)`.
    pub const READ: u64 = 2;
    /// `open(path_ptr, path_len) -> fd`.
    pub const OPEN: u64 = 3;
    /// `close(fd)`.
    pub const CLOSE: u64 = 4;
    /// `stat(path_ptr, path_len, out_ptr)` — writes the size as a `u64`.
    pub const STAT: u64 = 5;
    /// `send(buf, len)` on the bound connection.
    pub const SEND: u64 = 6;
    /// `recv(buf, max_len) -> len` on the bound connection.
    pub const RECV: u64 = 7;
    /// `snapshot()` — asks the runtime to checkpoint the virtine here.
    pub const SNAPSHOT: u64 = 8;
    /// `get_data(buf, max_len) -> len` — copies the invocation payload in.
    pub const GET_DATA: u64 = 9;
    /// `return_data(buf, len)` — copies the invocation result out.
    pub const RETURN_DATA: u64 = 10;
    /// `chan_open(capacity) -> h` — creates a channel, bound into the
    /// invocation's private handle table.
    pub const CHAN_OPEN: u64 = 11;
    /// `chan_send(h, buf, len, flags)` — queues one message; blocks (or
    /// returns [`super::WOULD_BLOCK`] under [`super::CHAN_NONBLOCK`]) when
    /// the channel is at its byte bound.
    pub const CHAN_SEND: u64 = 12;
    /// `chan_recv(h, buf, max_len, flags) -> len` — pops one message;
    /// blocks (or [`super::WOULD_BLOCK`]) when empty, `0` at EOF.
    pub const CHAN_RECV: u64 = 13;
    /// `chan_close(h)` — closes the channel and wakes every waiter.
    pub const CHAN_CLOSE: u64 = 14;
    /// Number of defined hypercalls.
    pub const COUNT: u64 = 15;
}

/// Returns a human-readable name for a hypercall number.
pub fn name(n: u64) -> &'static str {
    match n {
        nr::EXIT => "exit",
        nr::WRITE => "write",
        nr::READ => "read",
        nr::OPEN => "open",
        nr::CLOSE => "close",
        nr::STAT => "stat",
        nr::SEND => "send",
        nr::RECV => "recv",
        nr::SNAPSHOT => "snapshot",
        nr::GET_DATA => "get_data",
        nr::RETURN_DATA => "return_data",
        nr::CHAN_OPEN => "chan_open",
        nr::CHAN_SEND => "chan_send",
        nr::CHAN_RECV => "chan_recv",
        nr::CHAN_CLOSE => "chan_close",
        _ => "unknown",
    }
}

/// A bitmask of permitted hypercalls — the `virtine_config(cfg)` policy
/// object of §5.3 ("a configuration structure that contains a bit mask of
/// allowed hypercalls").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HypercallMask(u64);

impl HypercallMask {
    /// The default-deny policy. §5.1: "Wasp provides no externally
    /// observable behavior through hypercalls other than the ability to
    /// exit the virtual context." `exit` and the runtime-internal
    /// `snapshot` (which observes nothing outside the virtine and is
    /// one-shot) are therefore the only calls that survive deny-all.
    pub const DENY_ALL: HypercallMask = HypercallMask((1 << nr::EXIT) | (1 << nr::SNAPSHOT));

    /// The `virtine_permissive` policy: everything allowed (§5.3).
    pub const ALLOW_ALL: HypercallMask = HypercallMask(u64::MAX);

    /// Builds a mask allowing exactly the listed hypercalls (plus `exit`,
    /// which cannot be revoked — a virtine must always be able to die).
    pub fn allowing(calls: &[u64]) -> HypercallMask {
        let mut m = HypercallMask::DENY_ALL;
        for &c in calls {
            m.0 |= 1 << c;
        }
        m
    }

    /// Whether hypercall `n` is permitted.
    pub fn allows(self, n: u64) -> bool {
        n < 64 && self.0 & (1 << n) != 0
    }

    /// Intersects two policies: a call survives only if both masks allow
    /// it. Used by multi-tenant dispatch, where a tenant profile can only
    /// *narrow* what a virtine spec already permits — never widen it.
    /// `exit` (and the runtime-internal `snapshot`) remain allowed, since
    /// both operands always carry them.
    pub fn intersect(self, other: HypercallMask) -> HypercallMask {
        HypercallMask(self.0 & other.0)
    }
}

impl Default for HypercallMask {
    fn default() -> HypercallMask {
        HypercallMask::DENY_ALL
    }
}

/// Per-invocation state a virtine's hypercalls operate on: its payload,
/// result buffer, optional bound connection, captured stdout, and the
/// private guest-fd table (guests never see host descriptors).
#[derive(Debug, Default)]
pub struct Invocation {
    /// Data handed to the virtine (`get_data`).
    pub payload: Vec<u8>,
    /// Data the virtine returned (`return_data`).
    pub result: Vec<u8>,
    /// Host socket bound as the virtine's connection (guest fd 0/1 and
    /// `send`/`recv`), e.g. the accepted HTTP connection of §6.3.
    pub conn: Option<SockId>,
    /// Bytes the virtine wrote to fd 1 with no connection bound.
    pub stdout: Vec<u8>,
    /// Guest fd → host fd translation for files opened by this invocation.
    open_fds: HashMap<u64, Fd>,
    next_guest_fd: u64,
    /// Channels bound to this invocation: the guest handle is the index.
    /// The host wires a pipeline by binding the *same* [`ChanId`] into a
    /// producer's and a consumer's invocation (by convention upstream
    /// first); `chan_open` appends to the table at run time.
    chans: Vec<ChanId>,
    /// Channels the *guest* created via `chan_open` (a subset of
    /// `chans`). Host-bound channels belong to whoever wired the
    /// pipeline; guest-opened ones are invocation-private and the
    /// runtime closes them when the run ends, so a guest cannot grow
    /// host channel state beyond its own lifetime.
    guest_opened: Vec<ChanId>,
    /// Number of `snapshot` requests seen (the JS co-design of §6.5 rejects
    /// repeats: "snapshot and get_data cannot be called more than once").
    pub snapshot_requests: u32,
    /// Number of `get_data` requests seen.
    pub get_data_requests: u32,
}

impl Invocation {
    /// Creates an invocation delivering `payload` to the guest.
    pub fn with_payload(payload: Vec<u8>) -> Invocation {
        Invocation {
            payload,
            ..Invocation::default()
        }
    }

    /// Creates an invocation bound to a host connection.
    pub fn with_conn(conn: SockId) -> Invocation {
        Invocation {
            conn: Some(conn),
            ..Invocation::default()
        }
    }

    /// A fresh invocation carrying the same *inputs* — payload, bound
    /// connection, host-wired channels — with virgin runtime state (no
    /// result, no stdout, no open fds, no guest-opened channels). This is
    /// the seed a dispatcher-level retry or hedge re-submits: `Invocation`
    /// is deliberately not `Clone` (mid-run state must not be duplicated),
    /// but its input half can be re-issued for an idempotent re-run.
    pub fn respawn(&self) -> Invocation {
        Invocation {
            payload: self.payload.clone(),
            conn: self.conn,
            chans: self.chans.clone(),
            ..Invocation::default()
        }
    }

    /// Binds pre-opened channels (builder style): the pipeline wiring a
    /// dispatcher performs before the virtine runs. Guest handle `i` is
    /// `chans[i]`.
    pub fn with_chans(mut self, chans: Vec<ChanId>) -> Invocation {
        self.chans = chans;
        self
    }

    /// Binds one more channel, returning its guest handle.
    pub fn bind_chan(&mut self, chan: ChanId) -> u64 {
        self.chans.push(chan);
        (self.chans.len() - 1) as u64
    }

    /// Channels the guest created via `chan_open`, which die with the
    /// invocation (the runtime closes them at run end).
    pub fn guest_opened_chans(&self) -> &[ChanId] {
        &self.guest_opened
    }

    /// Resolves a guest channel handle.
    fn chan_at(&self, h: u64) -> Option<ChanId> {
        usize::try_from(h)
            .ok()
            .and_then(|i| self.chans.get(i))
            .copied()
    }

    fn register_fd(&mut self, host: Fd) -> u64 {
        // Guest fds start at 3 (0/1/2 are the conventional std streams).
        let fd = self.next_guest_fd.max(3);
        self.next_guest_fd = fd + 1;
        self.open_fds.insert(fd, host);
        fd
    }
}

/// Access to guest memory, abstracting over a virtualized context
/// (`kvmsim::VmFd`) and native execution (`wasp::native`).
pub trait GuestMem {
    /// Reads `len` bytes at guest address `addr`.
    fn read_guest(&self, addr: u64, len: usize) -> Result<Vec<u8>, Fault>;
    /// Writes bytes at guest address `addr`.
    fn write_guest(&mut self, addr: u64, data: &[u8]) -> Result<(), Fault>;
}

/// Why a virtine cannot make progress: the condition a blocked run waits
/// on, carried by [`HcOutcome::Block`] and held by a suspended run until
/// the scheduler observes the condition and resumes it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitReason {
    /// A blocking `recv`/`read` found the connection open but empty. The
    /// run resumes when `sock` becomes readable; the pending bytes are
    /// then delivered at `buf` (up to `max_len`) with the count in `r0` —
    /// completing the original hypercall exactly where it faulted.
    RecvReady {
        /// The host socket the guest is parked on.
        sock: SockId,
        /// Guest address the delivery writes to.
        buf: u64,
        /// Guest-supplied bound on the delivery.
        max_len: usize,
    },
    /// A blocking `chan_recv` found the channel open but empty. The run
    /// resumes when a message (or close → EOF) arrives; delivery mirrors
    /// [`WaitReason::RecvReady`].
    ChanReady {
        /// The channel the guest is parked on.
        chan: ChanId,
        /// Guest address the delivery writes to.
        buf: u64,
        /// Guest-supplied bound on the delivery.
        max_len: usize,
    },
    /// A blocking `chan_send` found the channel at its byte bound
    /// (backpressure). The run resumes when capacity frees up (or the
    /// channel closes → the send fails with `-1`); the resume performs the
    /// queued send — the one charged syscall — with the count in `r0`.
    ChanSendReady {
        /// The channel the guest is parked on.
        chan: ChanId,
        /// Guest address of the pending message.
        buf: u64,
        /// Pending message length.
        len: usize,
    },
}

/// The host object whose state change ends a wait — what a scheduler
/// registers its wake token against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitTarget {
    /// A socket becoming readable.
    Sock(SockId),
    /// A channel's receive side becoming readable (data or EOF).
    ChanRecv(ChanId),
    /// A channel admitting a send of `len` bytes (or closing). The
    /// pending length rides along because the wake condition is
    /// message-specific: a partially-full queue blocks a big send while
    /// admitting a small one.
    ChanSend {
        /// The channel the sender is parked on.
        chan: ChanId,
        /// The parked message's length.
        len: usize,
    },
}

impl WaitReason {
    /// The host object whose readiness ends the wait.
    pub fn target(&self) -> WaitTarget {
        match self {
            WaitReason::RecvReady { sock, .. } => WaitTarget::Sock(*sock),
            WaitReason::ChanReady { chan, .. } => WaitTarget::ChanRecv(*chan),
            WaitReason::ChanSendReady { chan, len, .. } => WaitTarget::ChanSend {
                chan: *chan,
                len: *len,
            },
        }
    }
}

/// What the runtime should do after a handled hypercall.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HcOutcome {
    /// Place the value in `r0` and resume the guest.
    Resume(u64),
    /// The guest requested termination with an exit code.
    Exit(u64),
    /// The guest asked for a snapshot at this point.
    TakeSnapshot,
    /// A blocking operation cannot complete yet. A resumable runner
    /// suspends the virtine here (the exit-not-busy-wait contract); a
    /// non-resumable runner degrades the call to its non-blocking form and
    /// hands the guest [`WOULD_BLOCK`].
    Block(WaitReason),
    /// The handler decided the virtine must die (bad arguments, repeated
    /// one-shot calls, ...).
    Kill(&'static str),
}

/// Error code returned to guests for failed operations (as `u64`, it is the
/// two's-complement of -1).
pub(crate) const GUEST_ERR: u64 = u64::MAX;

/// One rule for every host I/O failure, keyed by the shared
/// [`IoClass`] taxonomy: end-of-stream is the clean `0` guests already
/// check for, backpressure is the [`WOULD_BLOCK`] sentinel, and
/// everything else — bad handle, closed, refused, busy, missing — is the
/// errno-style `-1`. `fs`, `net`, and `chan` failures all map here, so no
/// layer can alias "you closed this" into a success or EOF into an error.
pub(crate) fn guest_ret(class: IoClass) -> u64 {
    match class {
        IoClass::Eof => 0,
        IoClass::Full => WOULD_BLOCK,
        _ => GUEST_ERR,
    }
}

/// Dispatches one canned hypercall.
///
/// Handlers follow the threat model of §3.2: they "take care to assume that
/// inputs have not been properly sanitized" — every pointer/length pair is
/// bounds-checked against guest memory before use, and paths must be UTF-8.
/// A malformed request kills the virtine rather than touching host state.
pub fn handle_canned(
    n: u64,
    args: [u64; 5],
    mem: &mut dyn GuestMem,
    kernel: &HostKernel,
    inv: &mut Invocation,
) -> Result<HcOutcome, Fault> {
    match n {
        nr::EXIT => Ok(HcOutcome::Exit(args[0])),
        nr::WRITE => {
            let (fd, buf, len) = (args[0], args[1], args[2] as usize);
            let data = mem.read_guest(buf, len)?;
            match (fd, inv.conn) {
                (0 | 1, Some(conn)) => match kernel.net_send(conn, &data) {
                    Ok(()) => Ok(HcOutcome::Resume(len as u64)),
                    Err(_) => Ok(HcOutcome::Resume(GUEST_ERR)),
                },
                (1 | 2, None) => {
                    inv.stdout.extend_from_slice(&data);
                    Ok(HcOutcome::Resume(len as u64))
                }
                _ => Ok(HcOutcome::Resume(GUEST_ERR)),
            }
        }
        nr::READ => {
            let (fd, buf, max_len) = (args[0], args[1], args[2] as usize);
            if let (0, Some(conn)) = (fd, inv.conn) {
                // Reading "fd 0" with a bound connection is a socket recv.
                // Always blocking: `read` has no flags argument (and the
                // register that would carry one holds caller garbage).
                return recv_into(mem, kernel, conn, buf, max_len, false);
            }
            let Some(&host_fd) = inv.open_fds.get(&fd) else {
                return Ok(HcOutcome::Resume(GUEST_ERR));
            };
            match kernel.sys_read(host_fd, max_len) {
                Ok(data) => {
                    mem.write_guest(buf, &data)?;
                    Ok(HcOutcome::Resume(data.len() as u64))
                }
                // End-of-file is the clean 0; a closed or bad descriptor
                // is -1 — the classes never alias.
                Err(e) => Ok(HcOutcome::Resume(guest_ret(e.class()))),
            }
        }
        nr::OPEN => {
            let (ptr, len) = (args[0], args[1] as usize);
            if len > 4096 {
                return Ok(HcOutcome::Kill("open: unreasonable path length"));
            }
            let raw = mem.read_guest(ptr, len)?;
            let Ok(path) = String::from_utf8(raw) else {
                return Ok(HcOutcome::Resume(GUEST_ERR));
            };
            match kernel.sys_open(&path) {
                Ok(host_fd) => Ok(HcOutcome::Resume(inv.register_fd(host_fd))),
                Err(_) => Ok(HcOutcome::Resume(GUEST_ERR)),
            }
        }
        nr::CLOSE => {
            let fd = args[0];
            match inv.open_fds.remove(&fd) {
                Some(host_fd) => {
                    let _ = kernel.sys_close(host_fd);
                    Ok(HcOutcome::Resume(0))
                }
                None => Ok(HcOutcome::Resume(GUEST_ERR)),
            }
        }
        nr::STAT => {
            let (ptr, len, out) = (args[0], args[1] as usize, args[2]);
            if len > 4096 {
                return Ok(HcOutcome::Kill("stat: unreasonable path length"));
            }
            let raw = mem.read_guest(ptr, len)?;
            let Ok(path) = String::from_utf8(raw) else {
                return Ok(HcOutcome::Resume(GUEST_ERR));
            };
            match kernel.sys_stat(&path) {
                Ok(st) => {
                    mem.write_guest(out, &st.size.to_le_bytes())?;
                    Ok(HcOutcome::Resume(0))
                }
                Err(_) => Ok(HcOutcome::Resume(GUEST_ERR)),
            }
        }
        nr::SEND => {
            let (buf, len) = (args[0], args[1] as usize);
            let Some(conn) = inv.conn else {
                return Ok(HcOutcome::Resume(GUEST_ERR));
            };
            let data = mem.read_guest(buf, len)?;
            match kernel.net_send(conn, &data) {
                Ok(()) => Ok(HcOutcome::Resume(len as u64)),
                Err(_) => Ok(HcOutcome::Resume(GUEST_ERR)),
            }
        }
        nr::RECV => {
            let (buf, max_len) = (args[0], args[1] as usize);
            let nonblock = args[2] & RECV_NONBLOCK != 0;
            let Some(conn) = inv.conn else {
                return Ok(HcOutcome::Resume(GUEST_ERR));
            };
            recv_into(mem, kernel, conn, buf, max_len, nonblock)
        }
        nr::SNAPSHOT => {
            inv.snapshot_requests += 1;
            if inv.snapshot_requests > 1 {
                // One-shot by co-design (§6.5).
                return Ok(HcOutcome::Kill("repeated snapshot hypercall"));
            }
            Ok(HcOutcome::TakeSnapshot)
        }
        nr::GET_DATA => {
            inv.get_data_requests += 1;
            if inv.get_data_requests > 1 {
                return Ok(HcOutcome::Kill("repeated get_data hypercall"));
            }
            let (buf, max_len) = (args[0], args[1] as usize);
            let n = inv.payload.len().min(max_len);
            let data = inv.payload[..n].to_vec();
            mem.write_guest(buf, &data)?;
            Ok(HcOutcome::Resume(n as u64))
        }
        nr::RETURN_DATA => {
            let (buf, len) = (args[0], args[1] as usize);
            let data = mem.read_guest(buf, len)?;
            inv.result = data;
            Ok(HcOutcome::Resume(len as u64))
        }
        nr::CHAN_OPEN => {
            let capacity = args[0] as usize;
            if capacity > 1 << 24 {
                return Ok(HcOutcome::Kill("chan_open: unreasonable capacity"));
            }
            if inv.chans.len() >= MAX_CHANS_PER_INVOCATION {
                // A guest looping chan_open would otherwise grow host
                // state without bound; no legitimate pipeline stage needs
                // more ends than this.
                return Ok(HcOutcome::Kill("chan_open: too many channels"));
            }
            let chan = kernel.chan_open(capacity);
            inv.guest_opened.push(chan);
            Ok(HcOutcome::Resume(inv.bind_chan(chan)))
        }
        nr::CHAN_SEND => {
            let (h, buf, len) = (args[0], args[1], args[2] as usize);
            if len > 1 << 24 {
                // A length no channel could ever accept is a caller bug,
                // not backpressure: kill rather than park forever (§3.2 —
                // inputs are assumed unsanitized).
                return Ok(HcOutcome::Kill("chan_send: unreasonable length"));
            }
            let nonblock = args[3] & CHAN_NONBLOCK != 0;
            let Some(chan) = inv.chan_at(h) else {
                return Ok(HcOutcome::Resume(GUEST_ERR));
            };
            chan_send_into(mem, kernel, chan, buf, len, nonblock)
        }
        nr::CHAN_RECV => {
            let (h, buf, max_len) = (args[0], args[1], args[2] as usize);
            let nonblock = args[3] & CHAN_NONBLOCK != 0;
            let Some(chan) = inv.chan_at(h) else {
                return Ok(HcOutcome::Resume(GUEST_ERR));
            };
            chan_recv_into(mem, kernel, chan, buf, max_len, nonblock)
        }
        nr::CHAN_CLOSE => {
            let Some(chan) = inv.chan_at(args[0]) else {
                return Ok(HcOutcome::Resume(GUEST_ERR));
            };
            match kernel.chan_close(chan) {
                Ok(()) => Ok(HcOutcome::Resume(0)),
                Err(e) => Ok(HcOutcome::Resume(guest_ret(e.class()))),
            }
        }
        _ => Ok(HcOutcome::Kill("unknown hypercall")),
    }
}

/// The `chan_recv` counterpart of [`recv_into`] — the same three-way
/// contract (data / block-or-[`WOULD_BLOCK`] / clean `0` EOF), with the
/// free empty-but-open probe and the one charged syscall at delivery.
pub(crate) fn chan_recv_into(
    mem: &mut dyn GuestMem,
    kernel: &HostKernel,
    chan: ChanId,
    buf: u64,
    max_len: usize,
    nonblock: bool,
) -> Result<HcOutcome, Fault> {
    use hostsim::ChanRecvReady;
    match kernel.chan_poll_recv(chan) {
        Ok(ChanRecvReady::WouldBlock) => {
            if nonblock {
                // The probe-and-fail is still a syscall round trip.
                kernel.syscall_overhead();
                Ok(HcOutcome::Resume(WOULD_BLOCK))
            } else {
                Ok(HcOutcome::Block(WaitReason::ChanReady {
                    chan,
                    buf,
                    max_len,
                }))
            }
        }
        Ok(ChanRecvReady::Readable | ChanRecvReady::Eof) => {
            match kernel.chan_recv(chan, max_len) {
                Ok(Some(data)) => {
                    mem.write_guest(buf, &data)?;
                    Ok(HcOutcome::Resume(data.len() as u64))
                }
                // Drained and closed: end-of-stream.
                Ok(None) => Ok(HcOutcome::Resume(0)),
                Err(e) => Ok(HcOutcome::Resume(guest_ret(e.class()))),
            }
        }
        Err(e) => Ok(HcOutcome::Resume(guest_ret(e.class()))),
    }
}

/// The send half of the channel contract: queue the message when it fits
/// (one charged syscall), park on [`WaitReason::ChanSendReady`] under
/// backpressure (or hand back [`WOULD_BLOCK`] non-blocking), and fail
/// with `-1` on a closed channel. The does-it-fit probe is free, exactly
/// like the recv-side readiness probe.
pub(crate) fn chan_send_into(
    mem: &mut dyn GuestMem,
    kernel: &HostKernel,
    chan: ChanId,
    buf: u64,
    len: usize,
    nonblock: bool,
) -> Result<HcOutcome, Fault> {
    match kernel.chan_send_fits(chan, len) {
        Ok(true) => {
            let data = mem.read_guest(buf, len)?;
            match kernel.chan_send(chan, &data) {
                Ok(()) => Ok(HcOutcome::Resume(len as u64)),
                Err(e) => Ok(HcOutcome::Resume(guest_ret(e.class()))),
            }
        }
        Ok(false) => {
            if nonblock {
                kernel.syscall_overhead();
                Ok(HcOutcome::Resume(WOULD_BLOCK))
            } else {
                Ok(HcOutcome::Block(WaitReason::ChanSendReady {
                    chan,
                    buf,
                    len,
                }))
            }
        }
        Err(e) => Ok(HcOutcome::Resume(guest_ret(e.class()))),
    }
}

/// The three-way `recv` contract (all guest-distinguishable):
///
/// * data queued → deliver it, return the length;
/// * open but empty → [`HcOutcome::Block`] (blocking) or the
///   [`WOULD_BLOCK`] sentinel (non-blocking);
/// * peer closed and drained → a clean `0` EOF.
///
/// The empty-but-open probe is an uncharged kernel-internal poll: a
/// blocking recv is *one* syscall whose cost is paid when the data is
/// delivered (here on the data path, or by the resume step for a suspended
/// run), so a blocked-then-resumed run charges exactly the cycles an
/// unblocked one does.
fn recv_into(
    mem: &mut dyn GuestMem,
    kernel: &HostKernel,
    conn: SockId,
    buf: u64,
    max_len: usize,
    nonblock: bool,
) -> Result<HcOutcome, Fault> {
    match kernel.net_poll(conn) {
        Ok(SockReady::WouldBlock) => {
            if nonblock {
                // The probe-and-fail is still a syscall round trip.
                kernel.syscall_overhead();
                Ok(HcOutcome::Resume(WOULD_BLOCK))
            } else {
                Ok(HcOutcome::Block(WaitReason::RecvReady {
                    sock: conn,
                    buf,
                    max_len,
                }))
            }
        }
        Ok(SockReady::Readable | SockReady::Eof) => match kernel.net_recv(conn, max_len) {
            Ok(Some(data)) => {
                mem.write_guest(buf, &data)?;
                Ok(HcOutcome::Resume(data.len() as u64))
            }
            // Drained and the peer is gone: end-of-stream.
            Ok(None) => Ok(HcOutcome::Resume(0)),
            Err(_) => Ok(HcOutcome::Resume(GUEST_ERR)),
        },
        Err(_) => Ok(HcOutcome::Resume(GUEST_ERR)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vclock::Clock;

    /// A plain byte buffer standing in for guest memory.
    struct Buf(Vec<u8>);

    impl GuestMem for Buf {
        fn read_guest(&self, addr: u64, len: usize) -> Result<Vec<u8>, Fault> {
            let a = addr as usize;
            if a + len > self.0.len() {
                return Err(Fault::PhysOutOfBounds { paddr: addr });
            }
            Ok(self.0[a..a + len].to_vec())
        }
        fn write_guest(&mut self, addr: u64, data: &[u8]) -> Result<(), Fault> {
            let a = addr as usize;
            if a + data.len() > self.0.len() {
                return Err(Fault::PhysOutOfBounds { paddr: addr });
            }
            self.0[a..a + data.len()].copy_from_slice(data);
            Ok(())
        }
    }

    fn setup() -> (HostKernel, Buf, Invocation) {
        let kernel = HostKernel::new(Clock::new(), None);
        (kernel, Buf(vec![0; 4096]), Invocation::default())
    }

    #[test]
    fn masks_enforce_default_deny() {
        let deny = HypercallMask::DENY_ALL;
        assert!(deny.allows(nr::EXIT));
        assert!(deny.allows(nr::SNAPSHOT));
        for n in 1..nr::COUNT {
            if n == nr::SNAPSHOT {
                continue;
            }
            assert!(!deny.allows(n), "{} leaked through deny-all", name(n));
        }
        let allow = HypercallMask::ALLOW_ALL;
        for n in 0..nr::COUNT {
            assert!(allow.allows(n));
        }
        let some = HypercallMask::allowing(&[nr::SEND, nr::RECV]);
        assert!(some.allows(nr::EXIT) && some.allows(nr::SEND) && some.allows(nr::RECV));
        assert!(!some.allows(nr::OPEN));
    }

    #[test]
    fn exit_carries_the_code() {
        let (k, mut m, mut inv) = setup();
        let out = handle_canned(nr::EXIT, [42, 0, 0, 0, 0], &mut m, &k, &mut inv).unwrap();
        assert_eq!(out, HcOutcome::Exit(42));
    }

    #[test]
    fn write_to_stdout_is_captured() {
        let (k, mut m, mut inv) = setup();
        m.write_guest(100, b"hi there").unwrap();
        let out = handle_canned(nr::WRITE, [1, 100, 8, 0, 0], &mut m, &k, &mut inv).unwrap();
        assert_eq!(out, HcOutcome::Resume(8));
        assert_eq!(inv.stdout, b"hi there");
    }

    #[test]
    fn file_open_read_close_through_hypercalls() {
        let (k, mut m, mut inv) = setup();
        k.fs_add_file("/data.txt", b"filedata".to_vec());
        m.write_guest(0, b"/data.txt").unwrap();

        let fd = match handle_canned(nr::OPEN, [0, 9, 0, 0, 0], &mut m, &k, &mut inv).unwrap() {
            HcOutcome::Resume(fd) => fd,
            other => panic!("open failed: {other:?}"),
        };
        assert!(fd >= 3, "guest fds start at 3, got {fd}");

        let out = handle_canned(nr::READ, [fd, 512, 64, 0, 0], &mut m, &k, &mut inv).unwrap();
        assert_eq!(out, HcOutcome::Resume(8));
        assert_eq!(m.read_guest(512, 8).unwrap(), b"filedata");

        let out = handle_canned(nr::CLOSE, [fd, 0, 0, 0, 0], &mut m, &k, &mut inv).unwrap();
        assert_eq!(out, HcOutcome::Resume(0));
        // Double close fails.
        let out = handle_canned(nr::CLOSE, [fd, 0, 0, 0, 0], &mut m, &k, &mut inv).unwrap();
        assert_eq!(out, HcOutcome::Resume(GUEST_ERR));
    }

    #[test]
    fn stat_writes_size_into_guest_memory() {
        let (k, mut m, mut inv) = setup();
        k.fs_add_file("/f", vec![0; 777]);
        m.write_guest(0, b"/f").unwrap();
        let out = handle_canned(nr::STAT, [0, 2, 256, 0, 0], &mut m, &k, &mut inv).unwrap();
        assert_eq!(out, HcOutcome::Resume(0));
        let size = u64::from_le_bytes(m.read_guest(256, 8).unwrap().try_into().unwrap());
        assert_eq!(size, 777);
    }

    #[test]
    fn guest_cannot_use_raw_host_fds() {
        let (k, mut m, mut inv) = setup();
        k.fs_add_file("/secret", b"s3cr3t".to_vec());
        // Open on the host side, bypassing the virtine's fd table.
        let host_fd = k.sys_open("/secret").unwrap();
        // The guest tries to read using the *host* fd number directly; the
        // per-invocation table does not know it, so the read is refused.
        let out = handle_canned(nr::READ, [host_fd.0, 0, 64, 0, 0], &mut m, &k, &mut inv).unwrap();
        assert_eq!(out, HcOutcome::Resume(GUEST_ERR));
    }

    #[test]
    fn send_recv_flow_over_bound_connection() {
        let (k, mut m, _) = setup();
        k.net_listen(80).unwrap();
        let client = k.net_connect(80).unwrap();
        let server = k.net_accept(80).unwrap().unwrap();
        let mut inv = Invocation::with_conn(server);

        k.net_send(client, b"ping").unwrap();
        let out = handle_canned(nr::RECV, [0, 64, 0, 0, 0], &mut m, &k, &mut inv).unwrap();
        assert_eq!(out, HcOutcome::Resume(4));
        assert_eq!(m.read_guest(0, 4).unwrap(), b"ping");

        m.write_guest(128, b"pong").unwrap();
        let out = handle_canned(nr::SEND, [128, 4, 0, 0, 0], &mut m, &k, &mut inv).unwrap();
        assert_eq!(out, HcOutcome::Resume(4));
        assert_eq!(k.net_recv(client, 64).unwrap().unwrap(), b"pong");
    }

    #[test]
    fn recv_distinguishes_data_wouldblock_and_eof() {
        let (k, mut m, _) = setup();
        k.net_listen(80).unwrap();
        let client = k.net_connect(80).unwrap();
        let server = k.net_accept(80).unwrap().unwrap();
        let mut inv = Invocation::with_conn(server);

        // Open but empty, blocking (flags = 0): an exit, not a busy-wait.
        let out = handle_canned(nr::RECV, [0, 64, 0, 0, 0], &mut m, &k, &mut inv).unwrap();
        assert_eq!(
            out,
            HcOutcome::Block(WaitReason::RecvReady {
                sock: server,
                buf: 0,
                max_len: 64
            })
        );

        // Open but empty, non-blocking: the WOULD_BLOCK sentinel, distinct
        // from both EOF (0) and error (-1).
        let out =
            handle_canned(nr::RECV, [0, 64, RECV_NONBLOCK, 0, 0], &mut m, &k, &mut inv).unwrap();
        assert_eq!(out, HcOutcome::Resume(WOULD_BLOCK));
        assert_ne!(WOULD_BLOCK, 0);
        assert_ne!(WOULD_BLOCK, GUEST_ERR);

        // Data queued: delivered regardless of flags.
        k.net_send(client, b"data").unwrap();
        let out =
            handle_canned(nr::RECV, [0, 64, RECV_NONBLOCK, 0, 0], &mut m, &k, &mut inv).unwrap();
        assert_eq!(out, HcOutcome::Resume(4));
        assert_eq!(m.read_guest(0, 4).unwrap(), b"data");

        // Peer closed and drained: a clean 0 EOF on both paths.
        k.net_close(client).unwrap();
        let out = handle_canned(nr::RECV, [0, 64, 0, 0, 0], &mut m, &k, &mut inv).unwrap();
        assert_eq!(out, HcOutcome::Resume(0), "blocking recv sees EOF");
        let out =
            handle_canned(nr::RECV, [0, 64, RECV_NONBLOCK, 0, 0], &mut m, &k, &mut inv).unwrap();
        assert_eq!(out, HcOutcome::Resume(0), "non-blocking recv sees EOF");
    }

    #[test]
    fn read_on_bound_connection_blocks_when_empty() {
        let (k, mut m, _) = setup();
        k.net_listen(81).unwrap();
        let client = k.net_connect(81).unwrap();
        let server = k.net_accept(81).unwrap().unwrap();
        let mut inv = Invocation::with_conn(server);
        // `read(0, ...)` on the bound connection takes the same blocking
        // path as `recv` (no flags argument: always blocking).
        let out = handle_canned(nr::READ, [0, 256, 64, 0, 0], &mut m, &k, &mut inv).unwrap();
        assert!(matches!(out, HcOutcome::Block(_)));
        k.net_send(client, b"hi").unwrap();
        let out = handle_canned(nr::READ, [0, 256, 64, 0, 0], &mut m, &k, &mut inv).unwrap();
        assert_eq!(out, HcOutcome::Resume(2));
    }

    #[test]
    fn send_without_connection_fails_cleanly() {
        let (k, mut m, mut inv) = setup();
        let out = handle_canned(nr::SEND, [0, 4, 0, 0, 0], &mut m, &k, &mut inv).unwrap();
        assert_eq!(out, HcOutcome::Resume(GUEST_ERR));
    }

    #[test]
    fn get_and_return_data_round_trip() {
        let (k, mut m, _) = setup();
        let mut inv = Invocation::with_payload(b"input!".to_vec());
        let out = handle_canned(nr::GET_DATA, [0, 64, 0, 0, 0], &mut m, &k, &mut inv).unwrap();
        assert_eq!(out, HcOutcome::Resume(6));
        assert_eq!(m.read_guest(0, 6).unwrap(), b"input!");

        m.write_guest(100, b"output").unwrap();
        let out = handle_canned(nr::RETURN_DATA, [100, 6, 0, 0, 0], &mut m, &k, &mut inv).unwrap();
        assert_eq!(out, HcOutcome::Resume(6));
        assert_eq!(inv.result, b"output");
    }

    #[test]
    fn chan_send_recv_round_trip_through_hypercalls() {
        let (k, mut m, mut inv) = setup();
        // Open a channel from inside the guest.
        let h =
            match handle_canned(nr::CHAN_OPEN, [4096, 0, 0, 0, 0], &mut m, &k, &mut inv).unwrap() {
                HcOutcome::Resume(h) => h,
                other => panic!("chan_open failed: {other:?}"),
            };
        m.write_guest(64, b"payload").unwrap();
        let out = handle_canned(nr::CHAN_SEND, [h, 64, 7, 0, 0], &mut m, &k, &mut inv).unwrap();
        assert_eq!(out, HcOutcome::Resume(7));
        let out = handle_canned(nr::CHAN_RECV, [h, 256, 64, 0, 0], &mut m, &k, &mut inv).unwrap();
        assert_eq!(out, HcOutcome::Resume(7));
        assert_eq!(m.read_guest(256, 7).unwrap(), b"payload");
    }

    #[test]
    fn chan_recv_distinguishes_data_block_wouldblock_and_eof() {
        let (k, mut m, _) = setup();
        let chan = k.chan_open(64);
        let mut inv = Invocation::default().with_chans(vec![chan]);

        // Open but empty, blocking: an exit, not a busy-wait.
        let out = handle_canned(nr::CHAN_RECV, [0, 128, 32, 0, 0], &mut m, &k, &mut inv).unwrap();
        assert_eq!(
            out,
            HcOutcome::Block(WaitReason::ChanReady {
                chan,
                buf: 128,
                max_len: 32
            })
        );
        // Non-blocking: the WOULD_BLOCK sentinel.
        let out = handle_canned(
            nr::CHAN_RECV,
            [0, 128, 32, CHAN_NONBLOCK, 0],
            &mut m,
            &k,
            &mut inv,
        )
        .unwrap();
        assert_eq!(out, HcOutcome::Resume(WOULD_BLOCK));

        // Data queued: delivered regardless of flags.
        k.chan_send(chan, b"go").unwrap();
        let out = handle_canned(nr::CHAN_RECV, [0, 128, 32, 0, 0], &mut m, &k, &mut inv).unwrap();
        assert_eq!(out, HcOutcome::Resume(2));

        // Closed and drained: a clean 0 EOF on both paths.
        k.chan_close(chan).unwrap();
        let out = handle_canned(nr::CHAN_RECV, [0, 128, 32, 0, 0], &mut m, &k, &mut inv).unwrap();
        assert_eq!(out, HcOutcome::Resume(0), "blocking chan_recv sees EOF");
        let out = handle_canned(
            nr::CHAN_RECV,
            [0, 128, 32, CHAN_NONBLOCK, 0],
            &mut m,
            &k,
            &mut inv,
        )
        .unwrap();
        assert_eq!(out, HcOutcome::Resume(0), "non-blocking sees EOF too");
    }

    #[test]
    fn chan_send_applies_backpressure_and_fails_cleanly_when_closed() {
        let (k, mut m, _) = setup();
        let chan = k.chan_open(8);
        let mut inv = Invocation::default().with_chans(vec![chan]);
        m.write_guest(0, b"123456").unwrap();
        let out = handle_canned(nr::CHAN_SEND, [0, 0, 6, 0, 0], &mut m, &k, &mut inv).unwrap();
        assert_eq!(out, HcOutcome::Resume(6));

        // 6 of 8 bytes used: a 3-byte send blocks (backpressure park)...
        let out = handle_canned(nr::CHAN_SEND, [0, 0, 3, 0, 0], &mut m, &k, &mut inv).unwrap();
        assert_eq!(
            out,
            HcOutcome::Block(WaitReason::ChanSendReady {
                chan,
                buf: 0,
                len: 3
            })
        );
        // ...or reports WOULD_BLOCK non-blocking.
        let out = handle_canned(
            nr::CHAN_SEND,
            [0, 0, 3, CHAN_NONBLOCK, 0],
            &mut m,
            &k,
            &mut inv,
        )
        .unwrap();
        assert_eq!(out, HcOutcome::Resume(WOULD_BLOCK));
        // A 2-byte send still fits.
        let out = handle_canned(nr::CHAN_SEND, [0, 0, 2, 0, 0], &mut m, &k, &mut inv).unwrap();
        assert_eq!(out, HcOutcome::Resume(2));

        // Closed: sends fail with -1 (never silently dropped).
        k.chan_close(chan).unwrap();
        let out = handle_canned(nr::CHAN_SEND, [0, 0, 2, 0, 0], &mut m, &k, &mut inv).unwrap();
        assert_eq!(out, HcOutcome::Resume(GUEST_ERR));
    }

    #[test]
    fn chan_handles_are_invocation_private() {
        let (k, mut m, mut inv) = setup();
        // No channel bound at handle 0: every op is a clean -1, and the
        // raw host ChanId of a channel bound to *another* invocation is
        // unreachable (guests only ever see table indices).
        let other = k.chan_open(64);
        let out =
            handle_canned(nr::CHAN_SEND, [other.0, 0, 1, 0, 0], &mut m, &k, &mut inv).unwrap();
        assert_eq!(out, HcOutcome::Resume(GUEST_ERR));
        let out = handle_canned(nr::CHAN_RECV, [0, 0, 8, 0, 0], &mut m, &k, &mut inv).unwrap();
        assert_eq!(out, HcOutcome::Resume(GUEST_ERR));
        let out = handle_canned(nr::CHAN_CLOSE, [5, 0, 0, 0, 0], &mut m, &k, &mut inv).unwrap();
        assert_eq!(out, HcOutcome::Resume(GUEST_ERR));
    }

    #[test]
    fn wait_targets_name_the_object_that_ends_the_wait() {
        let sock = SockId(3);
        let chan = ChanId(9);
        assert_eq!(
            WaitReason::RecvReady {
                sock,
                buf: 0,
                max_len: 1
            }
            .target(),
            WaitTarget::Sock(sock)
        );
        assert_eq!(
            WaitReason::ChanReady {
                chan,
                buf: 0,
                max_len: 1
            }
            .target(),
            WaitTarget::ChanRecv(chan)
        );
        assert_eq!(
            WaitReason::ChanSendReady {
                chan,
                buf: 0,
                len: 1
            }
            .target(),
            WaitTarget::ChanSend { chan, len: 1 }
        );
    }

    #[test]
    fn one_shot_hypercalls_kill_on_repeat() {
        let (k, mut m, mut inv) = setup();
        assert_eq!(
            handle_canned(nr::SNAPSHOT, [0; 5], &mut m, &k, &mut inv).unwrap(),
            HcOutcome::TakeSnapshot
        );
        assert!(matches!(
            handle_canned(nr::SNAPSHOT, [0; 5], &mut m, &k, &mut inv).unwrap(),
            HcOutcome::Kill(_)
        ));
        handle_canned(nr::GET_DATA, [0, 0, 0, 0, 0], &mut m, &k, &mut inv).unwrap();
        assert!(matches!(
            handle_canned(nr::GET_DATA, [0, 0, 0, 0, 0], &mut m, &k, &mut inv).unwrap(),
            HcOutcome::Kill(_)
        ));
    }

    #[test]
    fn hostile_pointers_fault_instead_of_touching_host_state() {
        let (k, mut m, mut inv) = setup();
        // Buffer far outside guest memory.
        let err = handle_canned(nr::WRITE, [1, 0xFFFF_FFFF, 100, 0, 0], &mut m, &k, &mut inv);
        assert!(err.is_err());
        // Unreasonable path length is a kill, not a host allocation.
        let out = handle_canned(nr::OPEN, [0, 1 << 20, 0, 0, 0], &mut m, &k, &mut inv).unwrap();
        assert!(matches!(out, HcOutcome::Kill(_)));
    }

    #[test]
    fn unknown_hypercall_kills() {
        let (k, mut m, mut inv) = setup();
        let out = handle_canned(999, [0; 5], &mut m, &k, &mut inv).unwrap();
        assert!(matches!(out, HcOutcome::Kill(_)));
    }
}
