//! Native-execution baseline runner.
//!
//! Every figure in the paper compares virtines against "native" execution of
//! the same function. In this reproduction *both* sides run the same guest
//! binary on the same simulated CPU, so compute costs are identical by
//! construction — exactly the paper's observation that "the virtine is not
//! executing code any faster than native" (§6.5). What differs is the
//! environment:
//!
//! * no virtual-context creation, image copy, boot sequence, or snapshot —
//!   the process already exists and its code is already mapped;
//! * hypercalls become ordinary system calls: one user/kernel round trip
//!   instead of a VM exit plus the double ring transitions of §6.3;
//! * faults abort the run (a native crash takes the process down; there is
//!   no isolation boundary to absorb it).

use hostsim::HostKernel;
use vclock::Cycles;
use visa::asm::Image;
use visa::cpu::{Cpu, CpuConfig, CpuState, Fault, Machine};
use visa::{CrReg, Mode, Reg};

use crate::hypercall::{self, GuestMem, HcOutcome, Invocation, HYPERCALL_PORT};
use crate::runtime::ARGS_ADDR;

/// How a native run ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NativeExit {
    /// The function returned (guest `hlt`); value is `r0`.
    Returned(u64),
    /// The code called `exit` with this status.
    Exited(u64),
    /// The process crashed.
    Crashed(Fault),
    /// Step budget exhausted.
    StepLimit,
}

/// Result of a native baseline run.
#[derive(Debug)]
pub struct NativeOutcome {
    /// How the run ended.
    pub exit: NativeExit,
    /// `r0` at the end.
    pub ret: u64,
    /// Invocation state (stdout, result bytes, ...).
    pub invocation: Invocation,
    /// Milestone marks recorded during the run.
    pub marks: Vec<(u8, Cycles)>,
    /// Cycles consumed end to end.
    pub elapsed: Cycles,
    /// Number of system calls made.
    pub syscalls: u64,
}

/// Runs guest images directly, as host-native code would run.
#[derive(Debug, Clone)]
pub struct NativeRunner {
    kernel: HostKernel,
    /// Instruction budget per run.
    pub step_budget: u64,
}

struct MachineMem<'a>(&'a mut Machine);

impl GuestMem for MachineMem<'_> {
    fn read_guest(&self, addr: u64, len: usize) -> Result<Vec<u8>, Fault> {
        self.0
            .mem
            .slice(addr, len as u64)
            .map(|s| s.to_vec())
            .map_err(|e| Fault::PhysOutOfBounds { paddr: e.paddr })
    }
    fn write_guest(&mut self, addr: u64, data: &[u8]) -> Result<(), Fault> {
        self.0
            .mem
            .write_bytes(addr, data)
            .map_err(|e| Fault::PhysOutOfBounds { paddr: e.paddr })
    }
}

impl NativeRunner {
    /// Creates a runner charging work to `kernel`'s clock.
    pub fn new(kernel: HostKernel) -> NativeRunner {
        NativeRunner {
            kernel,
            step_budget: 500_000_000,
        }
    }

    /// Runs `image` from `entry` as native code with `args` at address 0
    /// (mirroring the virtine marshalling ABI so the same binaries work).
    ///
    /// The CPU starts directly in 32-bit protected mode — a running process
    /// never pays the boot sequence; its address space is managed by the
    /// host OS off the critical path.
    pub fn run(
        &self,
        image: &Image,
        entry: u64,
        args: &[u8],
        mut invocation: Invocation,
        mem_size: usize,
    ) -> NativeOutcome {
        let clock = self.kernel.clock().clone();
        let t0 = clock.now();

        let mut machine = Machine::new(clock.clone(), CpuConfig::native(), mem_size, entry);
        machine
            .mem
            .write_bytes(image.base, &image.bytes)
            .expect("image must fit in native address space");
        if !args.is_empty() {
            machine
                .mem
                .write_bytes(ARGS_ADDR, args)
                .expect("args must fit");
        }
        // A live process context: protected mode, flat addressing, stack at
        // the top of the region. (No boot required; the state below is what
        // the loader already established.)
        let mut state = fabricated_process_state(&machine.cpu, entry);
        state.regs[Reg::SP.index()] = (mem_size as u64).min(u32::MAX as u64) & !0xF;
        machine.cpu.restore_state(&state);

        let mut syscalls = 0u64;
        let exit = loop {
            match machine.cpu.run(&mut machine.mem, self.step_budget) {
                Err(fault) => break NativeExit::Crashed(fault),
                Ok(visa::CpuExit::Hlt) => break NativeExit::Returned(machine.cpu.reg(Reg(0))),
                Ok(visa::CpuExit::StepLimit) => break NativeExit::StepLimit,
                Ok(visa::CpuExit::IoIn { .. }) => {
                    break NativeExit::Crashed(Fault::ModeViolation {
                        reason: "port input outside a virtine",
                    })
                }
                Ok(visa::CpuExit::IoOut { port, value }) if port == HYPERCALL_PORT => {
                    // Natively this is a syscall: one kernel round trip.
                    syscalls += 1;
                    self.kernel.syscall_overhead();
                    let hc_args = [
                        machine.cpu.reg(Reg(1)),
                        machine.cpu.reg(Reg(2)),
                        machine.cpu.reg(Reg(3)),
                        machine.cpu.reg(Reg(4)),
                        machine.cpu.reg(Reg(5)),
                    ];
                    let outcome = {
                        let mut mem = MachineMem(&mut machine);
                        hypercall::handle_canned(
                            value,
                            hc_args,
                            &mut mem,
                            &self.kernel,
                            &mut invocation,
                        )
                    };
                    match outcome {
                        Err(fault) => break NativeExit::Crashed(fault),
                        Ok(HcOutcome::Resume(v)) => machine.cpu.set_reg(Reg(0), v),
                        Ok(HcOutcome::Exit(code)) => break NativeExit::Exited(code),
                        // Snapshotting is a virtine concept; natively a
                        // no-op (the process keeps running).
                        Ok(HcOutcome::TakeSnapshot) => machine.cpu.set_reg(Reg(0), 0),
                        // The native baseline has no event loop to yield
                        // to: a blocking call that cannot complete behaves
                        // like its non-blocking form (EAGAIN).
                        Ok(HcOutcome::Block(_)) => {
                            self.kernel.syscall_overhead();
                            machine.cpu.set_reg(Reg(0), hypercall::WOULD_BLOCK);
                        }
                        Ok(HcOutcome::Kill(_)) => {
                            break NativeExit::Crashed(Fault::ModeViolation {
                                reason: "malformed syscall",
                            })
                        }
                    }
                }
                Ok(visa::CpuExit::IoOut { .. }) => {
                    break NativeExit::Crashed(Fault::ModeViolation {
                        reason: "port output outside a virtine",
                    })
                }
            }
        };

        let ret = machine.cpu.reg(Reg(0));
        let marks = std::mem::take(&mut machine.cpu.marks);
        // Guest-opened channels die with the invocation, exactly as in
        // the virtualized runtime: the native baseline must not let a
        // looping chan_open grow host channel state across runs.
        for &chan in invocation.guest_opened_chans() {
            let _ = self.kernel.chan_close(chan);
        }
        NativeOutcome {
            exit,
            ret,
            invocation,
            marks,
            elapsed: clock.now() - t0,
            syscalls,
        }
    }
}

/// Builds the CPU state of an already-running process: protected mode with
/// the loader's GDT in place.
fn fabricated_process_state(cpu: &Cpu, entry: u64) -> CpuState {
    let mut state = cpu.save_state();
    state.mode = Mode::Prot32;
    state.cr0 = visa::inst::CR0_PE;
    state.gdt_base = Some(0);
    state.pc = entry;
    let _ = CrReg::Cr0; // (CR bits documented in visa::inst.)
    state
}

#[cfg(test)]
mod tests {
    use super::*;
    use vclock::Clock;

    fn runner() -> (Clock, NativeRunner) {
        let clock = Clock::new();
        let kernel = HostKernel::new(clock.clone(), None);
        (clock, NativeRunner::new(kernel))
    }

    const FIB: &str = "
.org 0x8000
entry:
  mov r1, 0
  load.q r1, [r1]     ; arg from address 0
  call fib
  hlt
fib:
  cmp r1, 2
  jl .base
  push r1
  sub r1, 1
  call fib
  pop r1
  push r0
  sub r1, 2
  call fib
  pop r2
  add r0, r2
  ret
.base:
  mov r0, r1
  ret
";

    #[test]
    fn native_fib_returns_correct_value() {
        let (_, r) = runner();
        let img = visa::assemble(FIB).unwrap();
        let out = r.run(
            &img,
            img.entry,
            &10u64.to_le_bytes(),
            Invocation::default(),
            1 << 20,
        );
        assert_eq!(out.exit, NativeExit::Returned(55));
        assert_eq!(out.syscalls, 0);
    }

    #[test]
    fn native_run_has_no_creation_overhead() {
        let (_, r) = runner();
        let img = visa::assemble(".org 0x8000\n hlt\n").unwrap();
        let out = r.run(&img, img.entry, &[], Invocation::default(), 1 << 16);
        // Just a hlt: a handful of cycles, no boot, no VM costs.
        assert!(
            out.elapsed.get() < 100,
            "native null call cost {} cycles",
            out.elapsed
        );
    }

    #[test]
    fn hypercalls_become_syscalls() {
        let (_, r) = runner();
        let img = visa::assemble(
            "
.org 0x8000
  mov r0, 1          ; write
  mov r1, 1
  mov r2, msg
  mov r3, 3
  out 0x1, r0
  mov r0, 0
  mov r1, 0
  out 0x1, r0        ; exit(0)
msg: .ascii \"abc\"
",
        )
        .unwrap();
        let out = r.run(&img, img.entry, &[], Invocation::default(), 1 << 16);
        assert_eq!(out.exit, NativeExit::Exited(0));
        assert_eq!(out.invocation.stdout, b"abc");
        assert_eq!(out.syscalls, 2);
    }

    #[test]
    fn native_crash_is_reported() {
        let (_, r) = runner();
        let img = visa::assemble(".org 0x8000\n mov r1, 0\n mov r0, 1\n div r0, r1\n").unwrap();
        let out = r.run(&img, img.entry, &[], Invocation::default(), 1 << 16);
        assert!(matches!(out.exit, NativeExit::Crashed(_)));
    }

    #[test]
    fn snapshot_hypercall_is_a_native_noop() {
        let (_, r) = runner();
        let img =
            visa::assemble(".org 0x8000\n mov r0, 8\n out 0x1, r0\n mov r0, 5\n hlt\n").unwrap();
        let out = r.run(&img, img.entry, &[], Invocation::default(), 1 << 16);
        assert_eq!(out.exit, NativeExit::Returned(5));
    }
}
