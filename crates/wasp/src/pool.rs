//! The virtine shell pool: caching and recycling of virtual contexts.
//!
//! §5.2: "Wasp supports a pool of cached, uninitialized, virtines (shells)
//! that can be reused. … once we do this, and the relevant virtine returns,
//! we can clear its context, preventing information leakage, and cache it in
//! a pool of 'clean' virtines so the host OS need not pay the expensive cost
//! of re-allocating virtual hardware contexts."
//!
//! Three modes reproduce the Figure 8 bars:
//!
//! * [`PoolMode::Disabled`] — every request creates a VM from scratch
//!   ("Wasp");
//! * [`PoolMode::Cached`] — shells are recycled, and the memory wipe is
//!   charged synchronously on release ("Wasp+C");
//! * [`PoolMode::CachedAsync`] — shells are recycled and wiped in the
//!   background, off the request path ("Wasp+CA").
//!
//! ## Warm shells (shell lifecycle)
//!
//! On top of the paper's clean pool, a shell that just ran a *snapshotted*
//! virtine can park **warm**: still holding the restored state, keyed by
//! `(tenant, virtine)`, with the dirty-page log recording exactly which
//! pages the invocation diverged from the snapshot. Re-acquiring it re-arms
//! by copying back only those pages (see `kvmsim::VmFd::restore_delta`)
//! instead of the full sparse snapshot — the SEUSS/Faasm-style resident
//! warm context, at hardware-dirty-logging exactness.
//!
//! ```text
//!            KVM_CREATE_VM                 release (wiped, §5.2)
//!   create ───────────────► in use ─────────────────────────────► clean
//!                            ▲  │  │                               │
//!          acquire_warm      │  │  │ HcOutcome::Block              │ acquire
//!          (delta re-arm,    │  │  ▼ (blocking recv, no data)      ▼
//!          same key only)    │  │ blocked/suspended ── wake ──► in use
//!                            │  │  (shell held by SuspendedRun,
//!                            │  │   outside the pool: unstealable,
//!                            │  │   undemotable; timeout-kill exits
//!                            │  │   via the ordinary wiped release)
//!                            │  ▼
//!                            └─ warm[(tenant, virtine)] ── demote ─► clean
//!                               (release_warm after a snapshotted
//!                                run, normal exit; LRU evict /
//!                                cross-key / steal: full wipe)
//! ```
//!
//! The **blocked/suspended** state is the event-driven I/O path: a virtine
//! parked in a blocking `recv` keeps its shell *inside* the
//! [`crate::SuspendedRun`], so none of the pool's acquire/steal/demote
//! paths can ever observe it — isolation of a parked invocation's live
//! state is structural, not a bookkeeping promise. Its transitions are
//! block → park → wake → resume (re-entering the guest at the faulting
//! hypercall) or timeout → kill → wiped release (`ExitKind::Blocked`).
//!
//! **Isolation argument.** A warm shell still contains the previous
//! invocation's data, so it may only be handed back *re-armed* and only to
//! the exact `(tenant, virtine)` key that parked it; the re-arm itself
//! erases the previous invocation's writes (every write set its dirty bit;
//! every dirty page is restored to snapshot contents). Every other exit
//! from the warm list — LRU eviction, cross-key demotion, work stealing —
//! goes through the same full wipe as a normal release, so §5.2's
//! no-information-leakage guarantee is preserved across tenants, virtines,
//! and shards.

use std::cmp::Reverse;
use std::collections::HashMap;
use std::rc::Rc;

use kvmsim::{Hypervisor, VmFd, VmSnapshot};
use vclock::costs;

/// Shell caching policy (§5.2, Figure 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PoolMode {
    /// No pooling: from-scratch `KVM_CREATE_VM` per request ("Wasp").
    Disabled,
    /// Pooling with synchronous cleaning on release ("Wasp+C").
    Cached,
    /// Pooling with asynchronous (background) cleaning ("Wasp+CA").
    #[default]
    CachedAsync,
}

/// Pool statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Shells created from scratch (pool misses or pooling disabled).
    pub created: u64,
    /// Shells served from the pool (clean reuse *and* warm hits).
    pub reused: u64,
    /// Shells returned to the pool (clean *and* warm parks).
    pub released: u64,
    /// Warm shells handed out for a delta re-arm (a subset of `reused`).
    /// Counted at acquire time: a shell whose snapshot went stale while
    /// parked is still wiped by the runtime, so *confirmed* warm hits are
    /// the runtime's (`WaspStats::warm_hits`) and the dispatcher's
    /// numbers.
    pub warm_acquired: u64,
    /// Shells parked warm (a subset of `released`).
    pub warm_parked: u64,
    /// Warm shells demoted to the clean list via a full wipe (LRU
    /// eviction, cross-key fallback, or work stealing).
    pub warm_demoted: u64,
    /// Shells destroyed outright — fault injection (a killed shell or
    /// shard) or a failed shard's teardown. A dropped shell's hardware
    /// context is gone; the inventory invariant becomes
    /// `resident == created - dropped`.
    pub dropped: u64,
}

/// A warm shell: parked still holding the state a snapshotted run left
/// behind, re-armable only for the exact key that parked it.
#[derive(Debug)]
struct WarmShell {
    /// Opaque tenant tag (the dispatcher uses tenant indices; Wasp's own
    /// single-client pool uses 0).
    tenant: u64,
    /// `VirtineId::into_raw` of the virtine whose snapshot the state
    /// derives from.
    virtine: usize,
    vm: VmFd,
    /// The exact snapshot the shell's state derives from; compared by
    /// `Rc` identity on re-acquire so a re-registered or invalidated
    /// snapshot can never be delta-restored against stale state.
    snap: Rc<VmSnapshot>,
    /// Park-order stamp for LRU decisions. Pool-local parks use the
    /// pool's own counter; a dispatcher spanning many pools passes a
    /// shared counter ([`Pool::release_warm_stamped`]) so "least recently
    /// parked" is comparable *across* shard pools.
    stamp: u64,
}

/// A warm shell exported intact from one pool for adoption by another —
/// the shard-drain evacuation path. The state is *not* wiped: the entry
/// stays keyed to the same `(tenant, virtine)` on the destination pool,
/// so the §5.2 isolation argument is unchanged (only the exact key that
/// parked it may ever re-arm it, wherever it is resident). The stamp
/// rides along so cross-pool LRU ordering survives the move.
#[derive(Debug)]
pub struct WarmExport {
    /// Opaque tenant tag the shell is keyed to.
    pub tenant: u64,
    /// `VirtineId::into_raw` of the keyed virtine.
    pub virtine: usize,
    /// The shell, still holding the parked run's state.
    pub vm: VmFd,
    /// The snapshot the state derives from (identity-compared on
    /// re-acquire).
    pub snap: Rc<VmSnapshot>,
    /// The original park-order stamp.
    pub stamp: u64,
}

/// The pool itself. Shells are segregated by guest-memory size: a shell's
/// hardware context is sized when created, so only same-sized requests can
/// reuse it. Warm shells additionally carry their `(tenant, virtine)` key.
#[derive(Debug)]
pub struct Pool {
    mode: PoolMode,
    clean: HashMap<usize, Vec<VmFd>>,
    /// Warm shells in LRU order: oldest at the front, newest parks at the
    /// back. Bounded by `warm_capacity` (warm shells keep full guest state
    /// resident, so the cache is memory-bounded by design).
    warm: Vec<WarmShell>,
    warm_capacity: usize,
    /// Pool-local park-order counter (see [`WarmShell::stamp`]).
    warm_seq: u64,
    stats: PoolStats,
    /// Reset vector shells are parked at.
    entry: u64,
}

/// Default bound on resident warm shells per pool.
pub const DEFAULT_WARM_CAPACITY: usize = 8;

impl Pool {
    /// Creates a pool; `entry` is the guest address shells reset to
    /// (Wasp loads images at 0x8000, §5.1). Warm caching starts at
    /// [`DEFAULT_WARM_CAPACITY`]; tune with [`Pool::with_warm_capacity`].
    pub fn new(mode: PoolMode, entry: u64) -> Pool {
        Pool {
            mode,
            clean: HashMap::new(),
            warm: Vec::new(),
            warm_capacity: DEFAULT_WARM_CAPACITY,
            warm_seq: 0,
            stats: PoolStats::default(),
            entry,
        }
    }

    /// Sets the warm-shell bound (builder style). Zero disables warm
    /// caching entirely: `release_warm` degrades to a normal wiped release.
    pub fn with_warm_capacity(mut self, capacity: usize) -> Pool {
        self.warm_capacity = capacity;
        self
    }

    /// The pool's mode.
    pub fn mode(&self) -> PoolMode {
        self.mode
    }

    /// The warm-shell bound.
    pub fn warm_capacity(&self) -> usize {
        self.warm_capacity
    }

    /// Statistics so far.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// Number of clean shells currently parked.
    pub fn idle_shells(&self) -> usize {
        self.clean.values().map(Vec::len).sum()
    }

    /// Number of clean shells parked for a specific guest-memory size.
    pub fn idle_shells_of(&self, mem_size: usize) -> usize {
        self.clean.get(&mem_size).map_or(0, Vec::len)
    }

    /// Number of warm shells currently parked.
    pub fn warm_shells(&self) -> usize {
        self.warm.len()
    }

    /// Number of warm shells parked of a specific guest-memory size.
    pub fn warm_shells_of(&self, mem_size: usize) -> usize {
        self.warm
            .iter()
            .filter(|w| w.vm.mem_size() == mem_size)
            .count()
    }

    /// Whether a warm shell is parked for `(tenant, virtine)` — the
    /// snapshot-aware placement probe.
    pub fn has_warm(&self, tenant: u64, virtine: usize) -> bool {
        self.warm
            .iter()
            .any(|w| w.tenant == tenant && w.virtine == virtine)
    }

    /// Number of warm shells a tenant has parked in this pool — summed
    /// across pools by the dispatcher to enforce cross-shard warm quotas.
    pub fn warm_shells_of_tenant(&self, tenant: u64) -> usize {
        self.warm.iter().filter(|w| w.tenant == tenant).count()
    }

    /// Park-order stamp of the least-recently-parked warm shell,
    /// optionally restricted to one tenant. Cross-pool comparable when
    /// every park went through [`Pool::release_warm_stamped`] with a
    /// shared counter.
    pub fn oldest_warm_stamp(&self, tenant: Option<u64>) -> Option<u64> {
        self.warm
            .iter()
            .filter(|w| tenant.is_none_or(|t| w.tenant == t))
            .map(|w| w.stamp)
            .min()
    }

    /// Demotes the least-recently-parked warm shell (optionally of one
    /// tenant) into this pool's clean list: full wipe per the pool's
    /// cleaning mode, off the request path like an LRU eviction. Returns
    /// whether a shell was demoted. This is the enforcement half of the
    /// cross-shard warm budget/quota policy.
    pub fn demote_oldest_warm(&mut self, tenant: Option<u64>) -> bool {
        let Some(i) = self
            .warm
            .iter()
            .enumerate()
            .filter(|(_, w)| tenant.is_none_or(|t| w.tenant == t))
            .min_by_key(|(_, w)| w.stamp)
            .map(|(i, _)| i)
        else {
            return false;
        };
        let victim = self.warm.remove(i);
        self.demote(victim.vm);
        true
    }

    /// Acquires a shell with `mem_size` bytes of guest memory, reusing a
    /// clean cached shell when possible. Returns the shell and whether it
    /// was reused.
    pub fn acquire(&mut self, hv: &Hypervisor, mem_size: usize) -> (VmFd, bool) {
        if self.mode != PoolMode::Disabled {
            if let Some(vm) = self.clean.get_mut(&mem_size).and_then(Vec::pop) {
                hv.kernel().clock().tick(costs::WASP_POOL_BOOKKEEPING);
                self.stats.reused += 1;
                return (vm, true);
            }
        }
        self.stats.created += 1;
        (hv.create_vm(mem_size, self.entry), false)
    }

    /// Releases a used shell back to the pool. Under [`PoolMode::Cached`]
    /// the wipe is charged to the caller; under [`PoolMode::CachedAsync`]
    /// the wipe still happens (no information leaks, §3.3) but its cycles
    /// are not charged to the request timeline — the background cleaner
    /// pays them. Under [`PoolMode::Disabled`] the shell is dropped.
    pub fn release(&mut self, vm: VmFd) {
        match self.mode {
            PoolMode::Disabled => {
                // Dropped: the host frees the VM state off the books.
            }
            PoolMode::Cached => {
                vm.clean(self.entry);
                self.park(vm);
            }
            PoolMode::CachedAsync => {
                vm.clean_async(self.entry);
                self.park(vm);
            }
        }
    }

    /// Acquires a warm shell for `(tenant, virtine)` with `mem_size` bytes
    /// of guest memory, most recently parked first. The shell is returned
    /// *un-re-armed* together with the snapshot its state derives from; the
    /// caller (the runtime's install step) performs the delta re-arm so the
    /// copy lands in the invocation's `image` cost term, exactly where the
    /// full restore it replaces used to.
    pub fn acquire_warm(
        &mut self,
        hv: &Hypervisor,
        tenant: u64,
        virtine: usize,
        mem_size: usize,
    ) -> Option<(VmFd, Rc<VmSnapshot>)> {
        if self.mode == PoolMode::Disabled || self.warm_capacity == 0 {
            return None;
        }
        let i = self.warm.iter().rposition(|w| {
            w.tenant == tenant && w.virtine == virtine && w.vm.mem_size() == mem_size
        })?;
        let w = self.warm.remove(i);
        hv.kernel().clock().tick(costs::WASP_WARM_BOOKKEEPING);
        self.stats.reused += 1;
        self.stats.warm_acquired += 1;
        Some((w.vm, w.snap))
    }

    /// Parks a shell *warm* for `(tenant, virtine)`: no wipe — the state
    /// (snapshot plus dirty-page log) stays resident for a delta re-arm by
    /// the same key. Over capacity, the least-recently-parked warm shell is
    /// demoted: wiped per the pool's cleaning mode (asynchronously under
    /// [`PoolMode::CachedAsync`], i.e. off the request path) and moved to
    /// the clean list.
    ///
    /// Callers must only park shells whose state derives from `snap` with
    /// an intact dirty log (`Wasp` guarantees this via `RunOutcome`'s warm
    /// state token).
    pub fn release_warm(&mut self, vm: VmFd, tenant: u64, virtine: usize, snap: Rc<VmSnapshot>) {
        let stamp = self.warm_seq;
        self.warm_seq += 1;
        self.release_warm_stamped(vm, tenant, virtine, snap, stamp);
    }

    /// [`Pool::release_warm`] with an explicit park-order stamp. A
    /// dispatcher spanning many pools threads one shared counter through
    /// every park so LRU comparisons ([`Pool::oldest_warm_stamp`]) are
    /// meaningful across shards; stamps must be non-decreasing per pool.
    pub fn release_warm_stamped(
        &mut self,
        vm: VmFd,
        tenant: u64,
        virtine: usize,
        snap: Rc<VmSnapshot>,
        stamp: u64,
    ) {
        if self.mode == PoolMode::Disabled {
            return; // Dropped, like any other release under Disabled.
        }
        if self.warm_capacity == 0 {
            self.release(vm);
            return;
        }
        self.stats.released += 1;
        self.stats.warm_parked += 1;
        self.warm.push(WarmShell {
            tenant,
            virtine,
            vm,
            snap,
            stamp,
        });
        if self.warm.len() > self.warm_capacity {
            self.demote_oldest_warm(None);
        }
    }

    /// Demotes the least-recently-parked warm shell of `mem_size` bytes:
    /// full synchronous wipe (charged to the caller — this sits on the
    /// acquire path, where a request found no warm hit and no clean shell),
    /// then hands the now-clean shell over. Mirrors [`Pool::take_idle`]:
    /// the caller accounts for the reuse.
    pub fn take_warm_victim(&mut self, mem_size: usize) -> Option<VmFd> {
        let i = self
            .warm
            .iter()
            .enumerate()
            .filter(|(_, w)| w.vm.mem_size() == mem_size)
            .min_by_key(|(_, w)| w.stamp)
            .map(|(i, _)| i)?;
        let victim = self.warm.remove(i);
        victim.vm.clean(self.entry);
        self.stats.warm_demoted += 1;
        Some(victim.vm)
    }

    /// Picks the tenant whose warm shell should be sacrificed when a
    /// demotion of `mem_size` bytes is unavoidable: the requesting tenant
    /// itself when it has one parked (a tenant's own churn costs only
    /// itself), otherwise the tenant holding the *most* warm shells of
    /// the size (ties broken toward the staler set) — so a demote-steal
    /// thins the biggest hoard instead of wiping out a minority tenant's
    /// entire warm set. Returns `None` when no warm shell of the size is
    /// parked.
    pub fn warm_victim_tenant(&self, mem_size: usize, prefer: u64) -> Option<u64> {
        let eligible = |w: &&WarmShell| w.vm.mem_size() == mem_size;
        if self
            .warm
            .iter()
            .filter(eligible)
            .any(|w| w.tenant == prefer)
        {
            return Some(prefer);
        }
        let mut counts: HashMap<u64, (usize, u64)> = HashMap::new();
        for w in self.warm.iter().filter(eligible) {
            let e = counts.entry(w.tenant).or_insert((0, u64::MAX));
            e.0 += 1;
            e.1 = e.1.min(w.stamp);
        }
        counts
            .into_iter()
            .max_by_key(|&(tenant, (count, oldest))| (count, Reverse(oldest), Reverse(tenant)))
            .map(|(tenant, _)| tenant)
    }

    /// [`Pool::take_warm_victim`] restricted to one tenant's warm shells
    /// — the demote-steal path pairs it with [`Pool::warm_victim_tenant`]
    /// so victim selection respects tenant fairness.
    pub fn take_warm_victim_of(&mut self, tenant: u64, mem_size: usize) -> Option<VmFd> {
        let i = self
            .warm
            .iter()
            .enumerate()
            .filter(|(_, w)| w.tenant == tenant && w.vm.mem_size() == mem_size)
            .min_by_key(|(_, w)| w.stamp)
            .map(|(i, _)| i)?;
        let victim = self.warm.remove(i);
        victim.vm.clean(self.entry);
        self.stats.warm_demoted += 1;
        Some(victim.vm)
    }

    /// Wipes an evicted warm shell per the pool's cleaning mode (off the
    /// request path under [`PoolMode::CachedAsync`], like any release) and
    /// parks it clean.
    fn demote(&mut self, vm: VmFd) {
        match self.mode {
            PoolMode::Cached => vm.clean(self.entry),
            _ => vm.clean_async(self.entry),
        }
        self.stats.warm_demoted += 1;
        self.clean.entry(vm.mem_size()).or_default().push(vm);
    }

    fn park(&mut self, vm: VmFd) {
        self.stats.released += 1;
        self.clean.entry(vm.mem_size()).or_default().push(vm);
    }

    /// Removes a clean shell of `mem_size` bytes from the pool without
    /// touching the pool's statistics, or returns `None` if none is
    /// parked. This is the work-stealing entry point: another shard's
    /// pool adopts the shell, and the *thief* accounts for the reuse —
    /// bumping this pool's `reused` would credit a serve to a shard that
    /// executed nothing. The shell was wiped on release (no cross-tenant
    /// leakage, §3.3/§5.2), so the thief can run it directly.
    pub fn take_idle(&mut self, mem_size: usize) -> Option<VmFd> {
        self.clean.get_mut(&mem_size).and_then(Vec::pop)
    }

    /// [`Pool::take_idle`] without a size constraint: removes one clean
    /// shell (smallest guest-memory size first, for determinism), or
    /// `None` when the clean lists are empty. The shard-drain evacuation
    /// loop uses this to empty a pool whose shells span several sizes.
    pub fn take_idle_any(&mut self) -> Option<VmFd> {
        let size = *self
            .clean
            .iter()
            .filter(|(_, v)| !v.is_empty())
            .map(|(k, _)| k)
            .min()?;
        self.clean.get_mut(&size).and_then(Vec::pop)
    }

    /// Adopts a clean shell evacuated from a sibling pool. The mirror of
    /// [`Pool::take_idle`]: no statistics move — the shell was already
    /// counted `created` by whichever pool minted it, and adoption is
    /// inventory relocation, not a release after a run. The shell was
    /// wiped before it ever parked clean, so adoption is isolation-free.
    pub fn adopt_idle(&mut self, vm: VmFd) {
        self.clean.entry(vm.mem_size()).or_default().push(vm);
    }

    /// Exports the least-recently-parked warm shell *intact* — state,
    /// snapshot identity, and LRU stamp — for adoption by a sibling pool
    /// ([`Pool::import_warm`]). This is the shard-drain evacuation path:
    /// unlike every other warm exit (which wipes), the entry keeps its
    /// `(tenant, virtine)` key across the move, so no state ever becomes
    /// reachable by a different key.
    pub fn export_warm_lru(&mut self) -> Option<WarmExport> {
        let i = self
            .warm
            .iter()
            .enumerate()
            .min_by_key(|(_, w)| w.stamp)
            .map(|(i, _)| i)?;
        let w = self.warm.remove(i);
        Some(WarmExport {
            tenant: w.tenant,
            virtine: w.virtine,
            vm: w.vm,
            snap: w.snap,
            stamp: w.stamp,
        })
    }

    /// Adopts a warm shell exported from a sibling pool, preserving its
    /// key and park-order stamp. Over capacity, the pool's own oldest
    /// warm shell is demoted exactly as on a warm park; under
    /// [`PoolMode::Disabled`] or zero capacity the import degrades to a
    /// wiped release, like any warm park would.
    pub fn import_warm(&mut self, e: WarmExport) {
        if self.mode == PoolMode::Disabled {
            return; // Dropped, like any release under Disabled.
        }
        if self.warm_capacity == 0 {
            self.release(e.vm);
            return;
        }
        self.warm.push(WarmShell {
            tenant: e.tenant,
            virtine: e.virtine,
            vm: e.vm,
            snap: e.snap,
            stamp: e.stamp,
        });
        if self.warm.len() > self.warm_capacity {
            self.demote_oldest_warm(None);
        }
    }

    /// Destroys one clean shell (smallest guest-memory size first) —
    /// the "kill a shell" fault-injection primitive. Returns whether a
    /// shell was dropped; counted in [`PoolStats::dropped`].
    pub fn drop_idle(&mut self) -> bool {
        match self.take_idle_any() {
            Some(vm) => {
                drop(vm);
                self.stats.dropped += 1;
                true
            }
            None => false,
        }
    }

    /// Destroys every pooled shell, clean and warm — a failed shard's
    /// teardown: the hardware contexts die with the shard process.
    /// Returns how many were dropped (counted in [`PoolStats::dropped`]).
    /// Shells parked *outside* the pool (inside a `SuspendedRun`) are the
    /// caller's to account via [`Pool::drop_shell`].
    pub fn drop_all_shells(&mut self) -> usize {
        let n = self.idle_shells() + self.warm_shells();
        self.clean.clear();
        self.warm.clear();
        self.stats.dropped += n as u64;
        n
    }

    /// Destroys a shell the caller holds (e.g. one recovered from a
    /// suspended run on a failed shard), counting it in
    /// [`PoolStats::dropped`] so the pool's inventory arithmetic stays
    /// exact.
    pub fn drop_shell(&mut self, vm: VmFd) {
        drop(vm);
        self.stats.dropped += 1;
    }

    /// Pre-populates the pool with `count` clean shells of `mem_size` bytes
    /// (warm-up before a burst, as a serverless front end would do).
    pub fn prewarm(&mut self, hv: &Hypervisor, mem_size: usize, count: usize) {
        for _ in 0..count {
            let vm = hv.create_vm(mem_size, self.entry);
            self.stats.created += 1;
            self.park(vm);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hostsim::HostKernel;
    use vclock::Clock;

    fn hv() -> (Clock, Hypervisor) {
        let clock = Clock::new();
        (clock.clone(), Hypervisor::kvm(HostKernel::new(clock, None)))
    }

    const ENTRY: u64 = 0x8000;
    const MEM: usize = 64 * 1024;

    #[test]
    fn disabled_pool_always_creates() {
        let (_, hv) = hv();
        let mut pool = Pool::new(PoolMode::Disabled, ENTRY);
        let (vm1, reused1) = pool.acquire(&hv, MEM);
        pool.release(vm1);
        let (_, reused2) = pool.acquire(&hv, MEM);
        assert!(!reused1 && !reused2);
        assert_eq!(pool.stats().created, 2);
        assert_eq!(pool.idle_shells(), 0);
    }

    #[test]
    fn cached_pool_reuses_shells() {
        let (_, hv) = hv();
        let mut pool = Pool::new(PoolMode::Cached, ENTRY);
        let (vm, reused) = pool.acquire(&hv, MEM);
        assert!(!reused);
        pool.release(vm);
        assert_eq!(pool.idle_shells(), 1);
        let (_, reused) = pool.acquire(&hv, MEM);
        assert!(reused);
        assert_eq!(pool.stats().reused, 1);
    }

    #[test]
    fn reuse_is_much_cheaper_than_creation() {
        let (clock, hv) = hv();
        let mut pool = Pool::new(PoolMode::CachedAsync, ENTRY);
        let (_, create_cost) = clock.time(|| pool.acquire(&hv, MEM));
        let (vm, _) = pool.acquire(&hv, MEM);
        pool.release(vm);
        let (_, reuse_cost) = clock.time(|| {
            let (vm, reused) = pool.acquire(&hv, MEM);
            assert!(reused);
            vm
        });
        assert!(
            reuse_cost.get() * 100 < create_cost.get(),
            "reuse {reuse_cost} vs create {create_cost}"
        );
    }

    #[test]
    fn sync_clean_charges_async_does_not() {
        let (clock, hv) = hv();

        // The wipe cost tracks what the virtine dirtied, so dirty the
        // shells before releasing them.
        let mut sync_pool = Pool::new(PoolMode::Cached, ENTRY);
        let (vm, _) = sync_pool.acquire(&hv, MEM);
        vm.write_guest(0, &[7u8; 4096]).unwrap();
        let (_, sync_cost) = clock.time(|| sync_pool.release(vm));

        let mut async_pool = Pool::new(PoolMode::CachedAsync, ENTRY);
        let (vm, _) = async_pool.acquire(&hv, MEM);
        vm.write_guest(0, &[7u8; 4096]).unwrap();
        let (_, async_cost) = clock.time(|| async_pool.release(vm));

        assert!(sync_cost.get() > 0, "sync cleaning charges the wipe");
        assert_eq!(async_cost.get(), 0, "async cleaning is off the books");
    }

    #[test]
    fn recycled_shells_are_actually_clean() {
        let (_, hv) = hv();
        for mode in [PoolMode::Cached, PoolMode::CachedAsync] {
            let mut pool = Pool::new(mode, ENTRY);
            let (vm, _) = pool.acquire(&hv, MEM);
            vm.write_guest(0x100, b"secret key material").unwrap();
            pool.release(vm);
            let (vm, reused) = pool.acquire(&hv, MEM);
            assert!(reused);
            let bytes = vm.read_guest(0x100, 19).unwrap();
            assert!(
                bytes.iter().all(|&b| b == 0),
                "information leaked through the pool under {mode:?}"
            );
        }
    }

    #[test]
    fn shells_are_segregated_by_memory_size() {
        let (_, hv) = hv();
        let mut pool = Pool::new(PoolMode::Cached, ENTRY);
        let (vm, _) = pool.acquire(&hv, MEM);
        pool.release(vm);
        // A differently-sized request cannot reuse the parked shell.
        let (vm2, reused) = pool.acquire(&hv, 2 * MEM);
        assert!(!reused);
        assert_eq!(vm2.mem_size(), 2 * MEM);
        assert_eq!(pool.idle_shells(), 1);
    }

    /// A parked-warm shell for pool tests: runs nothing, just snapshots a
    /// VM so there is a state token to park against.
    fn warm_fixture(hv: &Hypervisor, pool: &mut Pool) -> std::rc::Rc<kvmsim::VmSnapshot> {
        let (vm, _) = pool.acquire(hv, MEM);
        vm.write_guest(0x100, b"resident snapshot state").unwrap();
        let snap = std::rc::Rc::new(vm.snapshot());
        vm.write_guest(0x2000, b"invocation dirt").unwrap();
        pool.release_warm(vm, 7, 3, std::rc::Rc::clone(&snap));
        snap
    }

    #[test]
    fn warm_park_and_reacquire_round_trips_for_the_same_key() {
        let (_, hv) = hv();
        let mut pool = Pool::new(PoolMode::CachedAsync, ENTRY);
        let snap = warm_fixture(&hv, &mut pool);
        assert_eq!(pool.warm_shells(), 1);
        assert!(pool.has_warm(7, 3));
        assert!(!pool.has_warm(7, 4));
        assert!(!pool.has_warm(8, 3));

        // Wrong key: no warm shell handed out.
        assert!(pool.acquire_warm(&hv, 8, 3, MEM).is_none());
        assert!(pool.acquire_warm(&hv, 7, 4, MEM).is_none());
        assert!(pool.acquire_warm(&hv, 7, 3, 2 * MEM).is_none());

        let (vm, got) = pool.acquire_warm(&hv, 7, 3, MEM).expect("warm hit");
        assert!(std::rc::Rc::ptr_eq(&got, &snap));
        // The state is still resident (un-re-armed): both the snapshot
        // bytes and the previous invocation's dirt.
        assert_eq!(vm.read_guest(0x100, 4).unwrap(), b"resi");
        assert_eq!(vm.read_guest(0x2000, 4).unwrap(), b"invo");
        let s = pool.stats();
        assert_eq!((s.warm_acquired, s.warm_parked, s.reused), (1, 1, 1));
    }

    #[test]
    fn warm_capacity_evicts_lru_into_the_clean_list() {
        let (_, hv) = hv();
        let mut pool = Pool::new(PoolMode::CachedAsync, ENTRY).with_warm_capacity(2);
        for virtine in 0..3 {
            let (vm, _) = pool.acquire(&hv, MEM);
            vm.write_guest(0x100, b"secret").unwrap();
            let snap = std::rc::Rc::new(vm.snapshot());
            pool.release_warm(vm, 0, virtine, snap);
        }
        // Oldest (virtine 0) was demoted: wiped and parked clean.
        assert_eq!(pool.warm_shells(), 2);
        assert!(!pool.has_warm(0, 0));
        assert!(pool.has_warm(0, 1) && pool.has_warm(0, 2));
        assert_eq!(pool.idle_shells_of(MEM), 1);
        assert_eq!(pool.stats().warm_demoted, 1);
        let (vm, reused) = pool.acquire(&hv, MEM);
        assert!(reused);
        assert!(vm.read_guest(0x100, 6).unwrap().iter().all(|&b| b == 0));
    }

    #[test]
    fn take_warm_victim_wipes_before_handing_over() {
        let (clock, hv) = hv();
        let mut pool = Pool::new(PoolMode::CachedAsync, ENTRY);
        warm_fixture(&hv, &mut pool);
        assert!(pool.take_warm_victim(2 * MEM).is_none(), "size segregated");
        let t0 = clock.now();
        let vm = pool.take_warm_victim(MEM).expect("victim");
        assert!(
            (clock.now() - t0).get() > 0,
            "demotion on the acquire path charges the wipe"
        );
        assert!(vm.read_guest(0x100, 8).unwrap().iter().all(|&b| b == 0));
        assert!(vm.read_guest(0x2000, 8).unwrap().iter().all(|&b| b == 0));
        assert_eq!(pool.warm_shells(), 0);
        assert_eq!(pool.stats().warm_demoted, 1);
    }

    #[test]
    fn zero_warm_capacity_degrades_to_a_wiped_release() {
        let (_, hv) = hv();
        let mut pool = Pool::new(PoolMode::CachedAsync, ENTRY).with_warm_capacity(0);
        let snap = {
            let (vm, _) = pool.acquire(&hv, MEM);
            vm.write_guest(0x100, b"secret").unwrap();
            let snap = std::rc::Rc::new(vm.snapshot());
            pool.release_warm(vm, 0, 0, snap.clone());
            snap
        };
        assert_eq!(pool.warm_shells(), 0);
        assert!(pool.acquire_warm(&hv, 0, 0, MEM).is_none());
        assert_eq!(pool.idle_shells(), 1);
        let (vm, reused) = pool.acquire(&hv, MEM);
        assert!(reused);
        assert!(vm.read_guest(0x100, 6).unwrap().iter().all(|&b| b == 0));
        drop(snap);
    }

    #[test]
    fn warm_victim_selection_prefers_the_requester_then_the_biggest_hoard() {
        let (_, hv) = hv();
        let mut pool = Pool::new(PoolMode::CachedAsync, ENTRY);
        // Tenant 5 hoards three warm shells; tenant 9 parks one.
        for virtine in 0..3 {
            let (vm, _) = pool.acquire(&hv, MEM);
            let snap = std::rc::Rc::new(vm.snapshot());
            pool.release_warm(vm, 5, virtine, snap);
        }
        let (vm, _) = pool.acquire(&hv, MEM);
        let snap = std::rc::Rc::new(vm.snapshot());
        pool.release_warm(vm, 9, 0, snap);

        // A requester with its own shell parked sacrifices itself...
        assert_eq!(pool.warm_victim_tenant(MEM, 9), Some(9));
        // ...anyone else thins the hoard, never tenant 9's only shell.
        assert_eq!(pool.warm_victim_tenant(MEM, 7), Some(5));
        assert_eq!(pool.warm_victim_tenant(2 * MEM, 7), None, "size gated");
        let vm = pool.take_warm_victim_of(5, MEM).expect("victim");
        assert_eq!(vm.mem_size(), MEM);
        assert_eq!(pool.warm_shells_of_tenant(5), 2);
        assert_eq!(pool.warm_shells_of_tenant(9), 1);
        assert!(pool.take_warm_victim_of(3, MEM).is_none(), "tenant gated");
    }

    #[test]
    fn stamped_parks_drive_cross_pool_lru_demotion() {
        let (_, hv) = hv();
        let mut pool = Pool::new(PoolMode::CachedAsync, ENTRY);
        // Shared-counter stamps arrive out of pool-local order of nothing:
        // park (tenant, virtine, stamp) = (1,0,10), (2,0,11), (1,1,12).
        for (tenant, virtine, stamp) in [(1, 0, 10), (2, 0, 11), (1, 1, 12)] {
            let (vm, _) = pool.acquire(&hv, MEM);
            vm.write_guest(0x100, b"warm state").unwrap();
            let snap = std::rc::Rc::new(vm.snapshot());
            pool.release_warm_stamped(vm, tenant, virtine, snap, stamp);
        }
        assert_eq!(pool.oldest_warm_stamp(None), Some(10));
        assert_eq!(pool.oldest_warm_stamp(Some(1)), Some(10));
        assert_eq!(pool.oldest_warm_stamp(Some(2)), Some(11));
        assert_eq!(pool.oldest_warm_stamp(Some(3)), None);

        // Demote tenant 1's LRU: (1,0) goes, (1,1) stays warm.
        assert!(pool.demote_oldest_warm(Some(1)));
        assert!(!pool.has_warm(1, 0) && pool.has_warm(1, 1));
        assert_eq!(pool.oldest_warm_stamp(Some(1)), Some(12));
        assert_eq!(pool.idle_shells_of(MEM), 1, "demoted into clean");
        assert_eq!(pool.stats().warm_demoted, 1);
        // Global LRU is now tenant 2's shell.
        assert!(pool.demote_oldest_warm(None));
        assert!(!pool.has_warm(2, 0));
        assert!(!pool.demote_oldest_warm(Some(3)), "nothing of tenant 3");
        // Demoted shells come back clean.
        let (vm, reused) = pool.acquire(&hv, MEM);
        assert!(reused);
        assert!(vm.read_guest(0x100, 10).unwrap().iter().all(|&b| b == 0));
    }

    #[test]
    fn warm_export_import_round_trips_with_key_and_stamp() {
        let (_, hv) = hv();
        let mut src = Pool::new(PoolMode::CachedAsync, ENTRY);
        let mut dst = Pool::new(PoolMode::CachedAsync, ENTRY);
        let snap = warm_fixture(&hv, &mut src);

        // LRU export: the entry leaves intact — key, snapshot identity,
        // and stamp all survive the move.
        let e = src.export_warm_lru().expect("one warm shell parked");
        assert_eq!((e.tenant, e.virtine), (7, 3));
        assert!(std::rc::Rc::ptr_eq(&e.snap, &snap));
        assert_eq!(src.warm_shells(), 0);
        dst.import_warm(e);
        assert!(dst.has_warm(7, 3));
        assert_eq!(dst.oldest_warm_stamp(None), Some(0));

        // The destination re-arms it for the same key, like a local park:
        // the post-snapshot dirt is gone after the delta restore.
        let (vm, got) = dst.acquire_warm(&hv, 7, 3, MEM).expect("warm hit");
        assert!(std::rc::Rc::ptr_eq(&got, &snap));
        vm.restore_delta(&got);
        assert!(vm.read_guest(0x2000, 15).unwrap().iter().all(|&b| b == 0));
        assert_eq!(
            &vm.read_guest(0x100, 23).unwrap(),
            b"resident snapshot state"
        );
        dst.release(vm);
        assert!(src.export_warm_lru().is_none(), "source is empty");
    }

    #[test]
    fn dropped_shells_balance_the_inventory_arithmetic() {
        let (_, hv) = hv();
        let mut pool = Pool::new(PoolMode::CachedAsync, ENTRY);
        warm_fixture(&hv, &mut pool); // 1 warm
        pool.prewarm(&hv, MEM, 2); // 2 clean
        assert_eq!(pool.stats().created, 3);

        assert!(pool.drop_idle());
        assert_eq!(pool.idle_shells(), 1);
        assert_eq!(pool.stats().dropped, 1);
        assert_eq!(pool.drop_all_shells(), 2, "one clean + one warm");
        assert_eq!(pool.stats().dropped, 3);
        assert_eq!(pool.idle_shells() + pool.warm_shells(), 0);
        assert!(!pool.drop_idle(), "nothing left to kill");
        // resident == created - dropped holds at every step.
        let s = pool.stats();
        assert_eq!(s.created - s.dropped, 0);
    }

    #[test]
    fn disabled_pool_drops_warm_releases() {
        let (_, hv) = hv();
        let mut pool = Pool::new(PoolMode::Disabled, ENTRY);
        let (vm, _) = pool.acquire(&hv, MEM);
        let snap = std::rc::Rc::new(vm.snapshot());
        pool.release_warm(vm, 0, 0, snap);
        assert_eq!(pool.warm_shells() + pool.idle_shells(), 0);
    }

    #[test]
    fn prewarm_fills_the_pool() {
        let (_, hv) = hv();
        let mut pool = Pool::new(PoolMode::CachedAsync, ENTRY);
        pool.prewarm(&hv, MEM, 4);
        assert_eq!(pool.idle_shells(), 4);
        let (_, reused) = pool.acquire(&hv, MEM);
        assert!(reused);
    }
}
