//! The virtine shell pool: caching and recycling of virtual contexts.
//!
//! §5.2: "Wasp supports a pool of cached, uninitialized, virtines (shells)
//! that can be reused. … once we do this, and the relevant virtine returns,
//! we can clear its context, preventing information leakage, and cache it in
//! a pool of 'clean' virtines so the host OS need not pay the expensive cost
//! of re-allocating virtual hardware contexts."
//!
//! Three modes reproduce the Figure 8 bars:
//!
//! * [`PoolMode::Disabled`] — every request creates a VM from scratch
//!   ("Wasp");
//! * [`PoolMode::Cached`] — shells are recycled, and the memory wipe is
//!   charged synchronously on release ("Wasp+C");
//! * [`PoolMode::CachedAsync`] — shells are recycled and wiped in the
//!   background, off the request path ("Wasp+CA").

use std::collections::HashMap;

use kvmsim::{Hypervisor, VmFd};
use vclock::costs;

/// Shell caching policy (§5.2, Figure 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PoolMode {
    /// No pooling: from-scratch `KVM_CREATE_VM` per request ("Wasp").
    Disabled,
    /// Pooling with synchronous cleaning on release ("Wasp+C").
    Cached,
    /// Pooling with asynchronous (background) cleaning ("Wasp+CA").
    #[default]
    CachedAsync,
}

/// Pool statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Shells created from scratch (pool misses or pooling disabled).
    pub created: u64,
    /// Shells served from the clean pool.
    pub reused: u64,
    /// Shells returned to the pool.
    pub released: u64,
}

/// The pool itself. Shells are segregated by guest-memory size: a shell's
/// hardware context is sized when created, so only same-sized requests can
/// reuse it.
#[derive(Debug)]
pub struct Pool {
    mode: PoolMode,
    clean: HashMap<usize, Vec<VmFd>>,
    stats: PoolStats,
    /// Reset vector shells are parked at.
    entry: u64,
}

impl Pool {
    /// Creates a pool; `entry` is the guest address shells reset to
    /// (Wasp loads images at 0x8000, §5.1).
    pub fn new(mode: PoolMode, entry: u64) -> Pool {
        Pool {
            mode,
            clean: HashMap::new(),
            stats: PoolStats::default(),
            entry,
        }
    }

    /// The pool's mode.
    pub fn mode(&self) -> PoolMode {
        self.mode
    }

    /// Statistics so far.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// Number of clean shells currently parked.
    pub fn idle_shells(&self) -> usize {
        self.clean.values().map(Vec::len).sum()
    }

    /// Number of clean shells parked for a specific guest-memory size.
    pub fn idle_shells_of(&self, mem_size: usize) -> usize {
        self.clean.get(&mem_size).map_or(0, Vec::len)
    }

    /// Acquires a shell with `mem_size` bytes of guest memory, reusing a
    /// clean cached shell when possible. Returns the shell and whether it
    /// was reused.
    pub fn acquire(&mut self, hv: &Hypervisor, mem_size: usize) -> (VmFd, bool) {
        if self.mode != PoolMode::Disabled {
            if let Some(vm) = self.clean.get_mut(&mem_size).and_then(Vec::pop) {
                hv.kernel().clock().tick(costs::WASP_POOL_BOOKKEEPING);
                self.stats.reused += 1;
                return (vm, true);
            }
        }
        self.stats.created += 1;
        (hv.create_vm(mem_size, self.entry), false)
    }

    /// Releases a used shell back to the pool. Under [`PoolMode::Cached`]
    /// the wipe is charged to the caller; under [`PoolMode::CachedAsync`]
    /// the wipe still happens (no information leaks, §3.3) but its cycles
    /// are not charged to the request timeline — the background cleaner
    /// pays them. Under [`PoolMode::Disabled`] the shell is dropped.
    pub fn release(&mut self, vm: VmFd) {
        match self.mode {
            PoolMode::Disabled => {
                // Dropped: the host frees the VM state off the books.
            }
            PoolMode::Cached => {
                vm.clean(self.entry);
                self.park(vm);
            }
            PoolMode::CachedAsync => {
                vm.clean_async(self.entry);
                self.park(vm);
            }
        }
    }

    fn park(&mut self, vm: VmFd) {
        self.stats.released += 1;
        self.clean.entry(vm.mem_size()).or_default().push(vm);
    }

    /// Removes a clean shell of `mem_size` bytes from the pool without
    /// touching the pool's statistics, or returns `None` if none is
    /// parked. This is the work-stealing entry point: another shard's
    /// pool adopts the shell, and the *thief* accounts for the reuse —
    /// bumping this pool's `reused` would credit a serve to a shard that
    /// executed nothing. The shell was wiped on release (no cross-tenant
    /// leakage, §3.3/§5.2), so the thief can run it directly.
    pub fn take_idle(&mut self, mem_size: usize) -> Option<VmFd> {
        self.clean.get_mut(&mem_size).and_then(Vec::pop)
    }

    /// Pre-populates the pool with `count` clean shells of `mem_size` bytes
    /// (warm-up before a burst, as a serverless front end would do).
    pub fn prewarm(&mut self, hv: &Hypervisor, mem_size: usize, count: usize) {
        for _ in 0..count {
            let vm = hv.create_vm(mem_size, self.entry);
            self.stats.created += 1;
            self.park(vm);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hostsim::HostKernel;
    use vclock::Clock;

    fn hv() -> (Clock, Hypervisor) {
        let clock = Clock::new();
        (clock.clone(), Hypervisor::kvm(HostKernel::new(clock, None)))
    }

    const ENTRY: u64 = 0x8000;
    const MEM: usize = 64 * 1024;

    #[test]
    fn disabled_pool_always_creates() {
        let (_, hv) = hv();
        let mut pool = Pool::new(PoolMode::Disabled, ENTRY);
        let (vm1, reused1) = pool.acquire(&hv, MEM);
        pool.release(vm1);
        let (_, reused2) = pool.acquire(&hv, MEM);
        assert!(!reused1 && !reused2);
        assert_eq!(pool.stats().created, 2);
        assert_eq!(pool.idle_shells(), 0);
    }

    #[test]
    fn cached_pool_reuses_shells() {
        let (_, hv) = hv();
        let mut pool = Pool::new(PoolMode::Cached, ENTRY);
        let (vm, reused) = pool.acquire(&hv, MEM);
        assert!(!reused);
        pool.release(vm);
        assert_eq!(pool.idle_shells(), 1);
        let (_, reused) = pool.acquire(&hv, MEM);
        assert!(reused);
        assert_eq!(pool.stats().reused, 1);
    }

    #[test]
    fn reuse_is_much_cheaper_than_creation() {
        let (clock, hv) = hv();
        let mut pool = Pool::new(PoolMode::CachedAsync, ENTRY);
        let (_, create_cost) = clock.time(|| pool.acquire(&hv, MEM));
        let (vm, _) = pool.acquire(&hv, MEM);
        pool.release(vm);
        let (_, reuse_cost) = clock.time(|| {
            let (vm, reused) = pool.acquire(&hv, MEM);
            assert!(reused);
            vm
        });
        assert!(
            reuse_cost.get() * 100 < create_cost.get(),
            "reuse {reuse_cost} vs create {create_cost}"
        );
    }

    #[test]
    fn sync_clean_charges_async_does_not() {
        let (clock, hv) = hv();

        // The wipe cost tracks what the virtine dirtied, so dirty the
        // shells before releasing them.
        let mut sync_pool = Pool::new(PoolMode::Cached, ENTRY);
        let (vm, _) = sync_pool.acquire(&hv, MEM);
        vm.write_guest(0, &[7u8; 4096]).unwrap();
        let (_, sync_cost) = clock.time(|| sync_pool.release(vm));

        let mut async_pool = Pool::new(PoolMode::CachedAsync, ENTRY);
        let (vm, _) = async_pool.acquire(&hv, MEM);
        vm.write_guest(0, &[7u8; 4096]).unwrap();
        let (_, async_cost) = clock.time(|| async_pool.release(vm));

        assert!(sync_cost.get() > 0, "sync cleaning charges the wipe");
        assert_eq!(async_cost.get(), 0, "async cleaning is off the books");
    }

    #[test]
    fn recycled_shells_are_actually_clean() {
        let (_, hv) = hv();
        for mode in [PoolMode::Cached, PoolMode::CachedAsync] {
            let mut pool = Pool::new(mode, ENTRY);
            let (vm, _) = pool.acquire(&hv, MEM);
            vm.write_guest(0x100, b"secret key material").unwrap();
            pool.release(vm);
            let (vm, reused) = pool.acquire(&hv, MEM);
            assert!(reused);
            let bytes = vm.read_guest(0x100, 19).unwrap();
            assert!(
                bytes.iter().all(|&b| b == 0),
                "information leaked through the pool under {mode:?}"
            );
        }
    }

    #[test]
    fn shells_are_segregated_by_memory_size() {
        let (_, hv) = hv();
        let mut pool = Pool::new(PoolMode::Cached, ENTRY);
        let (vm, _) = pool.acquire(&hv, MEM);
        pool.release(vm);
        // A differently-sized request cannot reuse the parked shell.
        let (vm2, reused) = pool.acquire(&hv, 2 * MEM);
        assert!(!reused);
        assert_eq!(vm2.mem_size(), 2 * MEM);
        assert_eq!(pool.idle_shells(), 1);
    }

    #[test]
    fn prewarm_fills_the_pool() {
        let (_, hv) = hv();
        let mut pool = Pool::new(PoolMode::CachedAsync, ENTRY);
        pool.prewarm(&hv, MEM, 4);
        assert_eq!(pool.idle_shells(), 4);
        let (_, reused) = pool.acquire(&hv, MEM);
        assert!(reused);
    }
}
