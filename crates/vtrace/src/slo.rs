//! Service-level objectives over sliding virtual-clock windows.
//!
//! Operators declare objectives — "p99 end-to-end latency ≤ N cycles"
//! (as a latency-bound SLO with a 0.99 good-fraction target) or
//! "availability ≥ 99.9%" — and the [`SloEngine`] classifies every
//! dispatcher completion or shed as *good* or *bad*, accumulating the
//! counts into a ring of fixed-width vclock buckets.
//!
//! Alerting follows the SRE-workbook multiwindow multi-burn-rate
//! policy: the *burn rate* is the fraction of events that were bad
//! divided by the error budget (`1 − objective`), so a burn rate of 1.0
//! spends exactly the budget over the window. A **page**-severity alert
//! fires when both the fast window (5-minute-equivalent by default) and
//! the slow window (1-hour-equivalent) burn at ≥ [`BurnPolicy::page_burn`];
//! a **ticket** fires at the lower [`BurnPolicy::ticket_burn`] threshold.
//! The fast window makes alerts fire quickly when an incident starts
//! and clear quickly when it ends; the slow window keeps a brief blip
//! from paging. All timestamps are virtual cycles, so alert-fire
//! latency is deterministic and CI-gateable.

use std::fmt;

use vclock::Cycles;

/// What an SLO measures.
#[derive(Debug, Clone, PartialEq)]
pub enum SloKind {
    /// Good iff the completion's end-to-end latency is ≤ `threshold`.
    /// Sheds and kills carry no latency sample and are not counted.
    Latency {
        /// Inclusive latency bound for a "good" event.
        threshold: Cycles,
    },
    /// Good iff the request was served (admitted and completed);
    /// bad on shed. This is `served / (served + shed)`.
    Availability,
}

/// One declared objective.
#[derive(Debug, Clone, PartialEq)]
pub struct SloSpec {
    /// Display name, used as the `slo` label on exported gauges.
    pub name: String,
    /// Target good fraction in `(0, 1)`, e.g. `0.99` for "p99 ≤
    /// threshold" or `0.999` for three nines of availability.
    pub objective: f64,
    /// Goodness criterion.
    pub kind: SloKind,
}

impl SloSpec {
    /// A latency-bound SLO: `objective` of events must finish within
    /// `threshold` (e.g. `0.99` + threshold = "p99 e2e ≤ threshold").
    pub fn latency(name: &str, objective: f64, threshold: Cycles) -> SloSpec {
        SloSpec {
            name: name.to_string(),
            objective,
            kind: SloKind::Latency { threshold },
        }
    }

    /// An availability SLO: `objective` of submitted requests must be
    /// served rather than shed.
    pub fn availability(name: &str, objective: f64) -> SloSpec {
        SloSpec {
            name: name.to_string(),
            objective,
            kind: SloKind::Availability,
        }
    }
}

/// Window sizes and burn-rate thresholds for alert evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct BurnPolicy {
    /// Fast window (default: 5 virtual minutes). Controls how quickly
    /// alerts fire and clear.
    pub fast_window: Cycles,
    /// Slow window (default: 1 virtual hour). Keeps short blips from
    /// paging; also the span of the error-budget gauge.
    pub slow_window: Cycles,
    /// Burn rate at which a page fires (default 14.4: the workbook's
    /// "2% of a 30-day budget in one hour" rate).
    pub page_burn: f64,
    /// Burn rate at which a ticket fires (default 3.0).
    pub ticket_burn: f64,
}

impl Default for BurnPolicy {
    fn default() -> BurnPolicy {
        BurnPolicy {
            fast_window: Cycles::from_micros(5.0 * 60.0 * 1e6),
            slow_window: Cycles::from_micros(60.0 * 60.0 * 1e6),
            page_burn: 14.4,
            ticket_burn: 3.0,
        }
    }
}

/// Alert severity, ordered: a page outranks a ticket.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Sustained high burn in both windows — budget exhaustion is hours
    /// away; a human should look now.
    Ticket,
    /// See [`Severity::Page`] vs ticket ordering: `Page > Ticket`.
    Page,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Page => write!(f, "page"),
            Severity::Ticket => write!(f, "ticket"),
        }
    }
}

/// One alert transition (fire or clear), stamped in virtual time.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertEvent {
    /// When the transition happened.
    pub at: Cycles,
    /// Name of the SLO that transitioned.
    pub slo: String,
    /// Severity entering (on fire) or leaving (on clear).
    pub severity: Severity,
    /// `true` when the alert fired, `false` when it cleared.
    pub fired: bool,
}

/// Point-in-time evaluation of one SLO, for gauges and reports.
#[derive(Debug, Clone, PartialEq)]
pub struct SloReport {
    /// SLO name.
    pub name: String,
    /// Declared good-fraction target.
    pub objective: f64,
    /// Burn rate over the fast window.
    pub burn_fast: f64,
    /// Burn rate over the slow window.
    pub burn_slow: f64,
    /// Fraction of the slow-window error budget still unspent
    /// (`1 − burn_slow`; negative when overspent).
    pub budget_remaining: f64,
    /// Currently active alert severity, if any.
    pub severity: Option<Severity>,
    /// Good events in the slow window.
    pub good: u64,
    /// Bad events in the slow window.
    pub bad: u64,
}

/// Per-SLO sliding-window counters.
#[derive(Debug)]
struct SloState {
    spec: SloSpec,
    /// Ring of `(good, bad)` counts, one slot per bucket of width
    /// `SloEngine::width`, spanning the slow window.
    ring: Vec<(u64, u64)>,
    slow_good: u64,
    slow_bad: u64,
    active: Option<Severity>,
}

/// Evaluates declared SLOs over sliding vclock windows and maintains
/// the burn-rate alert state machine.
///
/// Feed it one call per terminal dispatcher event —
/// [`SloEngine::observe_served`] on completion,
/// [`SloEngine::observe_shed`] on shed — and it classifies the event
/// for every SLO, updates the windows, and logs alert transitions.
#[derive(Debug)]
pub struct SloEngine {
    policy: BurnPolicy,
    /// Bucket width in cycles: `fast_window / FAST_BUCKETS`.
    width: u64,
    /// Ring length (buckets spanning the slow window).
    n: usize,
    /// Absolute bucket number of the newest ring slot.
    cur: u64,
    states: Vec<SloState>,
    log: Vec<AlertEvent>,
}

/// Resolution of the fast window, in buckets.
const FAST_BUCKETS: usize = 15;

impl SloEngine {
    /// Creates an engine for `specs` under `policy`.
    ///
    /// # Panics
    ///
    /// Panics if a spec's objective is outside `(0, 1)` or the policy
    /// windows are not `0 < fast_window ≤ slow_window`.
    pub fn new(specs: Vec<SloSpec>, policy: BurnPolicy) -> SloEngine {
        assert!(
            policy.fast_window.get() > 0 && policy.fast_window <= policy.slow_window,
            "windows must satisfy 0 < fast ≤ slow"
        );
        for s in &specs {
            assert!(
                s.objective > 0.0 && s.objective < 1.0,
                "objective must be in (0, 1): {}",
                s.name
            );
        }
        let width = (policy.fast_window.get() / FAST_BUCKETS as u64).max(1);
        let n = (policy.slow_window.get().div_ceil(width) as usize).max(FAST_BUCKETS);
        SloEngine {
            policy,
            width,
            n,
            cur: 0,
            states: specs
                .into_iter()
                .map(|spec| SloState {
                    spec,
                    ring: vec![(0, 0); n],
                    slow_good: 0,
                    slow_bad: 0,
                    active: None,
                })
                .collect(),
            log: Vec::new(),
        }
    }

    /// The policy this engine evaluates under.
    pub fn policy(&self) -> &BurnPolicy {
        &self.policy
    }

    /// Slides the windows forward to `now`, expiring aged-out buckets.
    fn advance(&mut self, now: Cycles) {
        let b = now.get() / self.width;
        if b <= self.cur {
            return; // Late-arriving event: charge the current bucket.
        }
        let steps = (b - self.cur).min(self.n as u64);
        for k in 1..=steps {
            let idx = ((self.cur + k) % self.n as u64) as usize;
            for st in &mut self.states {
                let (g, bd) = st.ring[idx];
                st.slow_good -= g;
                st.slow_bad -= bd;
                st.ring[idx] = (0, 0);
            }
        }
        self.cur = b;
    }

    /// Records a served completion with its end-to-end latency.
    pub fn observe_served(&mut self, now: Cycles, e2e: Cycles) {
        self.advance(now);
        let idx = (self.cur % self.n as u64) as usize;
        for st in &mut self.states {
            let good = match st.spec.kind {
                SloKind::Latency { threshold } => e2e <= threshold,
                SloKind::Availability => true,
            };
            if good {
                st.ring[idx].0 += 1;
                st.slow_good += 1;
            } else {
                st.ring[idx].1 += 1;
                st.slow_bad += 1;
            }
        }
        self.evaluate(now);
    }

    /// Records a shed: bad for availability SLOs, no latency sample.
    pub fn observe_shed(&mut self, now: Cycles) {
        self.advance(now);
        let idx = (self.cur % self.n as u64) as usize;
        for st in &mut self.states {
            if st.spec.kind == SloKind::Availability {
                st.ring[idx].1 += 1;
                st.slow_bad += 1;
            }
        }
        self.evaluate(now);
    }

    /// Advances the windows without recording an event, re-evaluating
    /// alerts (so they can clear during quiet periods).
    pub fn tick(&mut self, now: Cycles) {
        self.advance(now);
        self.evaluate(now);
    }

    fn burns(&self, st: &SloState) -> (f64, f64) {
        let budget = 1.0 - st.spec.objective;
        let mut fg = 0u64;
        let mut fb = 0u64;
        for k in 0..FAST_BUCKETS as u64 {
            if k > self.cur {
                break;
            }
            let (g, b) = st.ring[((self.cur - k) % self.n as u64) as usize];
            fg += g;
            fb += b;
        }
        let frac = |good: u64, bad: u64| {
            if good + bad == 0 {
                0.0
            } else {
                bad as f64 / (good + bad) as f64
            }
        };
        (
            frac(fg, fb) / budget,
            frac(st.slow_good, st.slow_bad) / budget,
        )
    }

    fn evaluate(&mut self, now: Cycles) {
        for i in 0..self.states.len() {
            let (bf, bs) = self.burns(&self.states[i]);
            let p = &self.policy;
            let next = if bf >= p.page_burn && bs >= p.page_burn {
                Some(Severity::Page)
            } else if bf >= p.ticket_burn && bs >= p.ticket_burn {
                Some(Severity::Ticket)
            } else {
                None
            };
            let st = &mut self.states[i];
            if next != st.active {
                if let Some(old) = st.active {
                    self.log.push(AlertEvent {
                        at: now,
                        slo: st.spec.name.clone(),
                        severity: old,
                        fired: false,
                    });
                }
                if let Some(new) = next {
                    self.log.push(AlertEvent {
                        at: now,
                        slo: st.spec.name.clone(),
                        severity: new,
                        fired: true,
                    });
                }
                st.active = next;
            }
        }
    }

    /// Every alert fire/clear transition so far, in virtual-time order.
    pub fn alert_log(&self) -> &[AlertEvent] {
        &self.log
    }

    /// Point-in-time evaluation of every SLO (does not advance time).
    pub fn report(&self) -> Vec<SloReport> {
        self.states
            .iter()
            .map(|st| {
                let (bf, bs) = self.burns(st);
                SloReport {
                    name: st.spec.name.clone(),
                    objective: st.spec.objective,
                    burn_fast: bf,
                    burn_slow: bs,
                    budget_remaining: 1.0 - bs,
                    severity: st.active,
                    good: st.slow_good,
                    bad: st.slow_bad,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tight_policy() -> BurnPolicy {
        BurnPolicy {
            fast_window: Cycles(1_500), // 100-cycle buckets
            slow_window: Cycles(6_000),
            page_burn: 5.0,
            ticket_burn: 2.0,
        }
    }

    #[test]
    fn burn_rate_matches_bad_fraction_over_budget() {
        // Availability objective 0.9 → budget 0.1; half the events bad
        // → burn rate 5.0 in both windows.
        let mut e = SloEngine::new(vec![SloSpec::availability("avail", 0.9)], tight_policy());
        for i in 0..10u64 {
            if i % 2 == 0 {
                e.observe_served(Cycles(i * 10), Cycles(1));
            } else {
                e.observe_shed(Cycles(i * 10));
            }
        }
        let r = &e.report()[0];
        assert!((r.burn_fast - 5.0).abs() < 1e-9);
        assert!((r.burn_slow - 5.0).abs() < 1e-9);
        assert!((r.budget_remaining - -4.0).abs() < 1e-9);
        assert_eq!((r.good, r.bad), (5, 5));
    }

    #[test]
    fn latency_slo_classifies_by_threshold_and_ignores_sheds() {
        let mut e = SloEngine::new(
            vec![SloSpec::latency("p99", 0.5, Cycles(100))],
            tight_policy(),
        );
        e.observe_served(Cycles(0), Cycles(50)); // good
        e.observe_served(Cycles(1), Cycles(100)); // good (inclusive)
        e.observe_served(Cycles(2), Cycles(101)); // bad
        e.observe_shed(Cycles(3)); // not a latency sample
        let r = &e.report()[0];
        assert_eq!((r.good, r.bad), (2, 1));
    }

    #[test]
    fn page_fires_on_sustained_burn_and_clears_after_recovery() {
        // Realistic budget (1%): a total outage pushes the slow-window
        // bad fraction past page_burn × budget within a few events.
        let mut e = SloEngine::new(vec![SloSpec::availability("avail", 0.99)], tight_policy());
        // Healthy traffic fills both windows.
        for i in 0..60u64 {
            e.observe_served(Cycles(i * 100), Cycles(1));
        }
        assert!(e.alert_log().is_empty());
        // Total outage: every request shed. The alert escalates
        // (ticket first, then page as the burn keeps climbing).
        for i in 60..90u64 {
            e.observe_shed(Cycles(i * 100));
        }
        let fired_at = e
            .alert_log()
            .iter()
            .find(|ev| ev.fired && ev.severity == Severity::Page)
            .expect("page should fire during outage")
            .at;
        // Fires within one fast window of the outage start.
        assert!(fired_at.get() - 6_000 <= 1_500, "fired at {fired_at}");
        // Recovery: healthy traffic ages the bad buckets out of the
        // fast window and the alert clears.
        for i in 90..200u64 {
            e.observe_served(Cycles(i * 100), Cycles(1));
        }
        let clear = e
            .alert_log()
            .iter()
            .find(|ev| !ev.fired && ev.severity == Severity::Page)
            .expect("page should clear after recovery");
        assert!(clear.at > fired_at);
        assert_eq!(e.report()[0].severity, None);
    }

    #[test]
    fn ticket_fires_below_page_threshold() {
        let mut e = SloEngine::new(vec![SloSpec::availability("avail", 0.9)], tight_policy());
        // 30% bad: burn 3.0 — above ticket (2.0), below page (5.0).
        // Bad events trail each decade so the early partial windows
        // never momentarily exceed the page threshold.
        for i in 0..100u64 {
            if i % 10 >= 7 {
                e.observe_shed(Cycles(i * 10));
            } else {
                e.observe_served(Cycles(i * 10), Cycles(1));
            }
        }
        assert_eq!(e.report()[0].severity, Some(Severity::Ticket));
        assert!(e
            .alert_log()
            .iter()
            .all(|ev| ev.severity == Severity::Ticket));
    }

    #[test]
    fn tick_alone_clears_stale_alerts() {
        let mut e = SloEngine::new(vec![SloSpec::availability("avail", 0.9)], tight_policy());
        for i in 0..60u64 {
            e.observe_shed(Cycles(i * 100));
        }
        assert_eq!(e.report()[0].severity, Some(Severity::Page));
        // A long quiet period empties both windows.
        e.tick(Cycles(100_000));
        assert_eq!(e.report()[0].severity, None);
        assert_eq!(e.report()[0].burn_slow, 0.0);
    }

    #[test]
    fn default_policy_is_five_minutes_and_one_hour() {
        let p = BurnPolicy::default();
        assert!((p.fast_window.as_secs() - 300.0).abs() < 1e-6);
        assert!((p.slow_window.as_secs() - 3600.0).abs() < 1e-6);
        assert!(p.page_burn > p.ticket_burn);
    }

    #[test]
    #[should_panic(expected = "objective must be in (0, 1)")]
    fn rejects_degenerate_objective() {
        SloEngine::new(
            vec![SloSpec::availability("bad", 1.0)],
            BurnPolicy::default(),
        );
    }
}
