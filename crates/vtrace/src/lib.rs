//! Invocation tracing for the virtine serving stack.
//!
//! The paper's §5 methodology decomposes every virtine invocation into
//! spans (create/image/exec/release); `wasp::Breakdown` records that
//! decomposition but, before this crate, nothing exported it. `vtrace`
//! gives the dispatcher a bounded, allocation-free-when-disabled
//! [`TraceCollector`] that captures one span tree per invocation —
//! admit → queue-wait → shell-acquire → exec → park/resume → migrate →
//! complete/shed — stamped with virtual-clock cycles, plus a JSON-lines
//! dump consumed by the host-side `GET /trace` endpoint in `vhttp`.
//!
//! The [`slo`] module layers service-level objectives on top: sliding
//! vclock windows, error-budget burn rates, and multi-window alerts in
//! the style of the SRE workbook's multiwindow multi-burn-rate policy.
//!
//! Everything here is deterministic: timestamps come from the shared
//! virtual clock, so a trace dump is bit-for-bit reproducible across
//! runs and machines.

pub mod slo;

use std::collections::HashMap;
use std::collections::VecDeque;
use std::fmt::Write as _;

use vclock::Cycles;

/// One timed segment of an invocation (e.g. `queue_wait`, `exec`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSpan {
    /// Span kind: `admit`, `queue_wait`, `shell_acquire`, `exec`,
    /// `park`, `resume`, `migrate`, `shed`, `reconcile` (a lifecycle
    /// move off a draining shard), `drain_evict` (a lifecycle
    /// hard-stop; detail names the cause, `grace_expired` or
    /// `shard_failed`), `retry` (an exactly-once re-submission of work
    /// lost to a shard failure; detail carries `attempt=`/`cause=` at
    /// schedule time and `resubmit shard=` at release), or `hedge` (a
    /// speculative tail-latency duplicate; detail links the logical
    /// request and its copy via `of=`/`copy=`, and a suppressed loser
    /// closes with outcome `hedge:canceled`).
    pub label: &'static str,
    /// Free-form detail, e.g. `warm(delta=3)` or `hop=cross_socket`.
    pub detail: String,
    /// Start timestamp on the worker timeline.
    pub start: Cycles,
    /// End timestamp on the worker timeline.
    pub end: Cycles,
}

impl TraceSpan {
    /// Duration of the span (saturating, in case of zero-length marks).
    pub fn duration(&self) -> Cycles {
        self.end.saturating_sub(self.start)
    }
}

/// The complete span tree of one invocation, from admission to
/// completion (or shed).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvocationTrace {
    /// Dispatcher sequence number (unique per submitted request).
    pub id: u64,
    /// Tenant index (resolved to a name at dump time).
    pub tenant: usize,
    /// Virtine image id the request targeted.
    pub virtine: u64,
    /// Submission timestamp.
    pub arrival: Cycles,
    /// Final timestamp (completion, kill, or shed decision).
    pub end: Cycles,
    /// Terminal outcome: `completed`, `timeout`, or `shed:<reason>`.
    pub outcome: String,
    /// Ordered spans of the invocation.
    pub spans: Vec<TraceSpan>,
}

impl InvocationTrace {
    /// End-to-end latency (zero for sheds, which never start).
    pub fn e2e(&self) -> Cycles {
        self.end.saturating_sub(self.arrival)
    }

    /// One human-readable line, used by `examples/http_server.rs`.
    pub fn summary(&self, tenant_name: &str) -> String {
        let mut s = format!(
            "#{:<4} {:<10} {:<12} e2e {:>8} cyc |",
            self.id,
            tenant_name,
            self.outcome,
            self.e2e().get()
        );
        for sp in &self.spans {
            if sp.detail.is_empty() {
                let _ = write!(s, " {} {}", sp.label, sp.duration().get());
            } else {
                let _ = write!(s, " {}[{}] {}", sp.label, sp.detail, sp.duration().get());
            }
        }
        s
    }

    fn json_line(&self, tenant_name: &str) -> String {
        let mut s = format!(
            "{{\"id\":{},\"tenant\":\"{}\",\"virtine\":{},\"arrival\":{},\"end\":{},\"outcome\":\"{}\",\"spans\":[",
            self.id,
            escape_json(tenant_name),
            self.virtine,
            self.arrival.get(),
            self.end.get(),
            escape_json(&self.outcome),
        );
        for (i, sp) in self.spans.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"span\":\"{}\",\"detail\":\"{}\",\"start\":{},\"end\":{}}}",
                escape_json(sp.label),
                escape_json(&sp.detail),
                sp.start.get(),
                sp.end.get(),
            );
        }
        s.push_str("]}");
        s
    }
}

/// Escapes a string for embedding in a JSON string literal.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A bounded ring buffer of invocation traces.
///
/// Construct with [`TraceCollector::disabled`] (the default) for a
/// zero-cost collector: every method is a no-op and nothing is ever
/// allocated, so the dispatcher can keep one unconditionally without
/// perturbing untraced runs. [`TraceCollector::with_capacity`] retains
/// the most recent `capacity` finished traces, evicting the oldest and
/// counting evictions in [`TraceCollector::dropped`].
#[derive(Debug, Default)]
pub struct TraceCollector {
    capacity: usize,
    active: HashMap<u64, InvocationTrace>,
    finished: VecDeque<InvocationTrace>,
    dropped: u64,
    spans: u64,
}

impl TraceCollector {
    /// A collector that records nothing and never allocates.
    pub fn disabled() -> TraceCollector {
        TraceCollector::default()
    }

    /// A collector retaining the most recent `capacity` traces.
    /// `capacity == 0` is equivalent to [`TraceCollector::disabled`].
    pub fn with_capacity(capacity: usize) -> TraceCollector {
        TraceCollector {
            capacity,
            ..TraceCollector::default()
        }
    }

    /// Whether tracing is active. Callers gate span construction on
    /// this so the disabled path never formats detail strings.
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Opens a trace for request `id`. No-op when disabled.
    pub fn begin(&mut self, id: u64, tenant: usize, virtine: u64, arrival: Cycles) {
        if !self.enabled() {
            return;
        }
        self.active.insert(
            id,
            InvocationTrace {
                id,
                tenant,
                virtine,
                arrival,
                end: arrival,
                outcome: String::new(),
                spans: Vec::new(),
            },
        );
    }

    /// Appends a span to an open trace. No-op when disabled or when
    /// `id` is unknown (e.g. the trace was begun before enabling).
    pub fn span(
        &mut self,
        id: u64,
        label: &'static str,
        detail: String,
        start: Cycles,
        end: Cycles,
    ) {
        if let Some(t) = self.active.get_mut(&id) {
            t.spans.push(TraceSpan {
                label,
                detail,
                start,
                end,
            });
            self.spans += 1;
        }
    }

    /// Closes the trace for `id` with a terminal outcome, moving it to
    /// the finished ring (evicting the oldest when full).
    pub fn finish(&mut self, id: u64, outcome: &str, end: Cycles) {
        if let Some(mut t) = self.active.remove(&id) {
            t.outcome = outcome.to_string();
            t.end = end;
            if self.finished.len() == self.capacity {
                self.finished.pop_front();
                self.dropped += 1;
            }
            self.finished.push_back(t);
        }
    }

    /// Records a complete one-span trace in one call — used for sheds,
    /// which never enter the queue. No-op when disabled.
    pub fn record_shed(&mut self, id: u64, tenant: usize, virtine: u64, at: Cycles, reason: &str) {
        if !self.enabled() {
            return;
        }
        self.begin(id, tenant, virtine, at);
        self.span(id, "shed", reason.to_string(), at, at);
        self.finish(id, &format!("shed:{reason}"), at);
    }

    /// Finished traces, oldest first.
    pub fn finished(&self) -> impl Iterator<Item = &InvocationTrace> {
        self.finished.iter()
    }

    /// Number of finished traces currently retained.
    pub fn len(&self) -> usize {
        self.finished.len()
    }

    /// True when no finished traces are retained.
    pub fn is_empty(&self) -> bool {
        self.finished.is_empty()
    }

    /// Traces evicted from the ring since construction.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total spans recorded since construction (tracing-overhead
    /// accounting: each span costs `vclock::costs::VTRACE_SPAN`).
    pub fn spans_recorded(&self) -> u64 {
        self.spans
    }

    /// Dumps retained traces as JSON lines, newest first, optionally
    /// filtered by tenant index and truncated to `limit` lines.
    /// `tenant_name` resolves a tenant index to its display name.
    pub fn json_lines(
        &self,
        tenant: Option<usize>,
        limit: usize,
        tenant_name: &dyn Fn(usize) -> String,
    ) -> String {
        let mut out = String::new();
        let mut n = 0;
        for t in self.finished.iter().rev() {
            if n == limit {
                break;
            }
            if tenant.is_some_and(|want| t.tenant != want) {
                continue;
            }
            out.push_str(&t.json_line(&tenant_name(t.tenant)));
            out.push('\n');
            n += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(i: usize) -> String {
        format!("tenant-{i}")
    }

    #[test]
    fn disabled_collector_records_nothing() {
        let mut c = TraceCollector::disabled();
        assert!(!c.enabled());
        c.begin(1, 0, 7, Cycles(10));
        c.span(1, "exec", String::new(), Cycles(10), Cycles(20));
        c.finish(1, "completed", Cycles(20));
        c.record_shed(2, 0, 7, Cycles(30), "rate_limited");
        assert!(c.is_empty());
        assert_eq!(c.spans_recorded(), 0);
        assert_eq!(c.json_lines(None, 100, &name), "");
    }

    #[test]
    fn trace_lifecycle_and_ring_eviction() {
        let mut c = TraceCollector::with_capacity(2);
        for id in 0..3u64 {
            c.begin(id, 0, 1, Cycles(id * 100));
            c.span(
                id,
                "exec",
                String::new(),
                Cycles(id * 100),
                Cycles(id * 100 + 50),
            );
            c.finish(id, "completed", Cycles(id * 100 + 50));
        }
        assert_eq!(c.len(), 2);
        assert_eq!(c.dropped(), 1);
        let ids: Vec<u64> = c.finished().map(|t| t.id).collect();
        assert_eq!(ids, vec![1, 2]);
        assert_eq!(c.finished().next().unwrap().e2e(), Cycles(50));
    }

    #[test]
    fn json_lines_filters_and_limits_newest_first() {
        let mut c = TraceCollector::with_capacity(16);
        for id in 0..4u64 {
            let tenant = (id % 2) as usize;
            c.begin(id, tenant, 9, Cycles(id));
            c.finish(id, "completed", Cycles(id + 5));
        }
        let all = c.json_lines(None, 10, &name);
        assert_eq!(all.lines().count(), 4);
        assert!(all.lines().next().unwrap().contains("\"id\":3"));
        let t1 = c.json_lines(Some(1), 10, &name);
        assert_eq!(t1.lines().count(), 2);
        assert!(t1.contains("\"tenant\":\"tenant-1\""));
        let limited = c.json_lines(None, 1, &name);
        assert_eq!(limited.lines().count(), 1);
    }

    #[test]
    fn json_escapes_hostile_names() {
        let mut c = TraceCollector::with_capacity(4);
        c.begin(0, 0, 1, Cycles(0));
        c.span(0, "shed", "a\"b\\c\nd".to_string(), Cycles(0), Cycles(0));
        c.finish(0, "completed", Cycles(1));
        let line = c.json_lines(None, 1, &|_| "we\"ird\n".to_string());
        assert!(line.contains("we\\\"ird\\n"));
        assert!(line.contains("a\\\"b\\\\c\\nd"));
        assert!(!line.trim_end().contains('\n'), "one line per trace");
    }

    #[test]
    fn shed_records_single_span_trace() {
        let mut c = TraceCollector::with_capacity(4);
        c.record_shed(7, 2, 3, Cycles(500), "rate_limited");
        let t = c.finished().next().unwrap();
        assert_eq!(t.outcome, "shed:rate_limited");
        assert_eq!(t.spans.len(), 1);
        assert_eq!(t.e2e(), Cycles::ZERO);
        assert!(t.summary("x").contains("shed[rate_limited]"));
    }
}
