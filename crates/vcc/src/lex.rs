//! The mini-C lexer.

use std::fmt;

/// Lexical or syntactic diagnostics, with 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CError {
    /// 1-based line number.
    pub line: usize,
    /// Message.
    pub msg: String,
}

impl fmt::Display for CError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for CError {}

/// Builds a [`CError`].
pub fn cerr<T>(line: usize, msg: impl Into<String>) -> Result<T, CError> {
    Err(CError {
        line,
        msg: msg.into(),
    })
}

/// A token with its source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token kind and payload.
    pub kind: Tok,
    /// 1-based source line.
    pub line: usize,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (keywords resolved by the parser).
    Ident(String),
    /// Integer literal (includes char literals).
    Int(i64),
    /// String literal bytes (unescaped, no terminator).
    Str(Vec<u8>),
    /// Punctuation / operator.
    Punct(&'static str),
    /// End of input.
    Eof,
}

/// Multi-character operators, longest first.
const PUNCTS: &[&str] = &[
    "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "->", "+", "-", "*", "/", "%", "&", "|", "^",
    "~", "!", "<", ">", "=", "(", ")", "{", "}", "[", "]", ";", ",", ".",
];

/// Tokenizes mini-C source.
pub fn lex(src: &str) -> Result<Vec<Token>, CError> {
    let b = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    let mut line = 1;

    'outer: while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                i += 2;
                loop {
                    if i + 1 >= b.len() {
                        return cerr(line, "unterminated block comment");
                    }
                    if b[i] == b'\n' {
                        line += 1;
                    }
                    if b[i] == b'*' && b[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            b'"' => {
                let mut s = Vec::new();
                i += 1;
                loop {
                    if i >= b.len() {
                        return cerr(line, "unterminated string literal");
                    }
                    match b[i] {
                        b'"' => {
                            i += 1;
                            break;
                        }
                        b'\\' => {
                            i += 1;
                            if i >= b.len() {
                                return cerr(line, "bad escape");
                            }
                            s.push(unescape(b[i], line)?);
                            i += 1;
                        }
                        b'\n' => return cerr(line, "newline in string literal"),
                        other => {
                            s.push(other);
                            i += 1;
                        }
                    }
                }
                toks.push(Token {
                    kind: Tok::Str(s),
                    line,
                });
            }
            b'\'' => {
                i += 1;
                if i >= b.len() {
                    return cerr(line, "unterminated char literal");
                }
                let v = if b[i] == b'\\' {
                    i += 1;
                    if i >= b.len() {
                        return cerr(line, "bad escape");
                    }
                    let v = unescape(b[i], line)?;
                    i += 1;
                    v
                } else {
                    let v = b[i];
                    i += 1;
                    v
                };
                if i >= b.len() || b[i] != b'\'' {
                    return cerr(line, "unterminated char literal");
                }
                i += 1;
                toks.push(Token {
                    kind: Tok::Int(v as i64),
                    line,
                });
            }
            b'0'..=b'9' => {
                let start = i;
                if c == b'0' && i + 1 < b.len() && (b[i + 1] == b'x' || b[i + 1] == b'X') {
                    i += 2;
                    while i < b.len() && (b[i] as char).is_ascii_hexdigit() {
                        i += 1;
                    }
                    let text = &src[start + 2..i];
                    let v = u64::from_str_radix(text, 16).map_err(|_| CError {
                        line,
                        msg: format!("bad hex literal `{text}`"),
                    })?;
                    toks.push(Token {
                        kind: Tok::Int(v as i64),
                        line,
                    });
                } else {
                    while i < b.len() && b[i].is_ascii_digit() {
                        i += 1;
                    }
                    let text = &src[start..i];
                    let v: i64 = text.parse().map_err(|_| CError {
                        line,
                        msg: format!("bad integer literal `{text}`"),
                    })?;
                    toks.push(Token {
                        kind: Tok::Int(v),
                        line,
                    });
                }
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                toks.push(Token {
                    kind: Tok::Ident(src[start..i].to_string()),
                    line,
                });
            }
            _ => {
                for p in PUNCTS {
                    if src[i..].starts_with(p) {
                        toks.push(Token {
                            kind: Tok::Punct(p),
                            line,
                        });
                        i += p.len();
                        continue 'outer;
                    }
                }
                return cerr(line, format!("unexpected character `{}`", c as char));
            }
        }
    }
    toks.push(Token {
        kind: Tok::Eof,
        line,
    });
    Ok(toks)
}

fn unescape(c: u8, line: usize) -> Result<u8, CError> {
    Ok(match c {
        b'n' => b'\n',
        b'r' => b'\r',
        b't' => b'\t',
        b'0' => 0,
        b'\\' => b'\\',
        b'"' => b'"',
        b'\'' => b'\'',
        other => {
            return cerr(line, format!("unknown escape `\\{}`", other as char));
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_mixed_tokens() {
        let toks = kinds("int x = 0x10 + 'A';");
        assert_eq!(
            toks,
            vec![
                Tok::Ident("int".into()),
                Tok::Ident("x".into()),
                Tok::Punct("="),
                Tok::Int(16),
                Tok::Punct("+"),
                Tok::Int(65),
                Tok::Punct(";"),
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn longest_match_operators() {
        assert_eq!(
            kinds("a <<= b"),
            vec![
                Tok::Ident("a".into()),
                Tok::Punct("<<"),
                Tok::Punct("="),
                Tok::Ident("b".into()),
                Tok::Eof
            ]
        );
        assert_eq!(
            kinds("p->q"),
            vec![
                Tok::Ident("p".into()),
                Tok::Punct("->"),
                Tok::Ident("q".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped_and_lines_tracked() {
        let toks = lex("// one\n/* two\nthree */ x").unwrap();
        assert_eq!(toks[0].kind, Tok::Ident("x".into()));
        assert_eq!(toks[0].line, 3);
    }

    #[test]
    fn string_escapes() {
        let toks = kinds(r#""a\n\0\"""#);
        assert_eq!(toks[0], Tok::Str(vec![b'a', b'\n', 0, b'"']));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = lex("x\n\n  @").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(lex("\"unterminated").is_err());
        assert!(lex("'a").is_err());
    }
}
