//! Recursive-descent parser for mini-C.

use crate::ast::*;
use crate::lex::{cerr, lex, CError, Tok, Token};

/// Parses a mini-C translation unit.
pub fn parse(src: &str) -> Result<Program, CError> {
    let toks = lex(src)?;
    Parser {
        toks,
        pos: 0,
        program: Program::default(),
    }
    .parse_program()
}

struct Parser {
    toks: Vec<Token>,
    pos: usize,
    program: Program,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].kind
    }

    fn peek2(&self) -> &Tok {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)].kind
    }

    fn line(&self) -> usize {
        self.toks[self.pos].line
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].kind.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if matches!(self.peek(), Tok::Punct(q) if *q == p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: &str) -> Result<(), CError> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            cerr(
                self.line(),
                format!("expected `{p}`, found {:?}", self.peek()),
            )
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Tok::Ident(s) if s == kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self) -> Result<String, CError> {
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            other => cerr(self.line(), format!("expected identifier, found {other:?}")),
        }
    }

    /// Whether the next token begins a type.
    fn at_type(&self) -> bool {
        matches!(self.peek(), Tok::Ident(s) if matches!(s.as_str(), "int" | "char" | "void" | "struct"))
    }

    /// Parses a type: base + pointer stars.
    fn parse_type(&mut self) -> Result<Type, CError> {
        let base = match self.bump() {
            Tok::Ident(s) => match s.as_str() {
                "int" => Type::Int,
                "char" => Type::Char,
                "void" => Type::Void,
                "struct" => {
                    let name = self.expect_ident()?;
                    Type::Struct(name)
                }
                other => return cerr(self.line(), format!("expected type, found `{other}`")),
            },
            other => return cerr(self.line(), format!("expected type, found {other:?}")),
        };
        let mut t = base;
        while self.eat_punct("*") {
            t = t.ptr();
        }
        Ok(t)
    }

    fn parse_program(mut self) -> Result<Program, CError> {
        while !matches!(self.peek(), Tok::Eof) {
            self.parse_top_level()?;
        }
        Ok(self.program)
    }

    fn parse_annotation(&mut self) -> Result<Annotation, CError> {
        if self.eat_kw("virtine") {
            Ok(Annotation::Virtine)
        } else if self.eat_kw("virtine_permissive") {
            Ok(Annotation::VirtinePermissive)
        } else if self.eat_kw("virtine_config") {
            self.expect_punct("(")?;
            let name = self.expect_ident()?;
            self.expect_punct(")")?;
            Ok(Annotation::VirtineConfig(name))
        } else {
            Ok(Annotation::None)
        }
    }

    fn parse_top_level(&mut self) -> Result<(), CError> {
        // struct definition?
        if matches!(self.peek(), Tok::Ident(s) if s == "struct")
            && matches!(self.peek2(), Tok::Ident(_))
            && matches!(
                self.toks.get(self.pos + 2).map(|t| &t.kind),
                Some(Tok::Punct("{"))
            )
        {
            return self.parse_struct_def();
        }

        let line = self.line();
        let annotation = self.parse_annotation()?;
        let ty = self.parse_type()?;
        let name = self.expect_ident()?;

        if self.eat_punct("(") {
            return self.parse_func_tail(annotation, ty, name, line);
        }
        if annotation != Annotation::None {
            return cerr(line, "virtine annotations only apply to functions");
        }

        // Global variable.
        let mut gty = ty;
        if self.eat_punct("[") {
            let n = match self.bump() {
                Tok::Int(v) if v >= 0 => v as usize,
                other => return cerr(self.line(), format!("bad array size {other:?}")),
            };
            self.expect_punct("]")?;
            gty = Type::Array(Box::new(gty), n);
        }
        let init = if self.eat_punct("=") {
            match self.bump() {
                Tok::Int(v) => GlobalInit::Int(v),
                Tok::Str(s) => GlobalInit::Str(s),
                Tok::Punct("-") => match self.bump() {
                    Tok::Int(v) => GlobalInit::Int(-v),
                    other => return cerr(self.line(), format!("bad global initializer {other:?}")),
                },
                Tok::Punct("{") => {
                    let mut items = Vec::new();
                    if !self.eat_punct("}") {
                        loop {
                            let neg = self.eat_punct("-");
                            match self.bump() {
                                Tok::Int(v) => items.push(if neg { -v } else { v }),
                                other => {
                                    return cerr(
                                        self.line(),
                                        format!("bad list initializer element {other:?}"),
                                    )
                                }
                            }
                            if self.eat_punct("}") {
                                break;
                            }
                            self.expect_punct(",")?;
                        }
                    }
                    GlobalInit::List(items)
                }
                other => {
                    return cerr(
                        self.line(),
                        format!("global initializers must be constants, found {other:?}"),
                    )
                }
            }
        } else {
            GlobalInit::Zero
        };
        self.expect_punct(";")?;
        self.program.globals.push(Global {
            name,
            ty: gty,
            init,
        });
        Ok(())
    }

    fn parse_struct_def(&mut self) -> Result<(), CError> {
        let line = self.line();
        self.bump(); // struct
        let name = self.expect_ident()?;
        self.expect_punct("{")?;
        let mut fields: Vec<(String, Type, u64)> = Vec::new();
        let mut offset = 0u64;
        while !self.eat_punct("}") {
            let fty = self.parse_type()?;
            let fname = self.expect_ident()?;
            let fty = if self.eat_punct("[") {
                let n = match self.bump() {
                    Tok::Int(v) if v >= 0 => v as usize,
                    other => return cerr(self.line(), format!("bad array size {other:?}")),
                };
                self.expect_punct("]")?;
                Type::Array(Box::new(fty), n)
            } else {
                fty
            };
            self.expect_punct(";")?;
            let size = fty.size(&self.program.structs);
            let align: u64 = if fty.is_byte() || matches!(fty, Type::Array(ref t, _) if t.is_byte())
            {
                1
            } else {
                8
            };
            offset = offset.div_ceil(align) * align;
            fields.push((fname, fty, offset));
            offset += size;
        }
        self.expect_punct(";")?;
        let size = offset.div_ceil(8) * 8;
        if self
            .program
            .structs
            .insert(
                name.clone(),
                StructDef {
                    name: name.clone(),
                    fields,
                    size: size.max(8),
                },
            )
            .is_some()
        {
            return cerr(line, format!("duplicate struct `{name}`"));
        }
        Ok(())
    }

    fn parse_func_tail(
        &mut self,
        annotation: Annotation,
        ret: Type,
        name: String,
        line: usize,
    ) -> Result<(), CError> {
        let mut params = Vec::new();
        if !self.eat_punct(")") {
            loop {
                let pty = self.parse_type()?;
                if pty == Type::Void && matches!(self.peek(), Tok::Punct(")")) {
                    // `f(void)`.
                    self.bump();
                    break;
                }
                let pname = self.expect_ident()?;
                params.push((pname, pty));
                if self.eat_punct(")") {
                    break;
                }
                self.expect_punct(",")?;
            }
        }
        if self.eat_punct(";") {
            if annotation != Annotation::None {
                return cerr(line, "virtine annotations require a function body");
            }
            self.program.protos.push(Proto {
                name,
                ret,
                params: params.into_iter().map(|(_, t)| t).collect(),
            });
            return Ok(());
        }
        self.expect_punct("{")?;
        let body = self.parse_block_body()?;
        self.program.funcs.push(Func {
            name,
            ret,
            params,
            body,
            annotation,
            line,
        });
        Ok(())
    }

    /// Parses statements until the closing `}` (already consumed).
    fn parse_block_body(&mut self) -> Result<Vec<Stmt>, CError> {
        let mut stmts = Vec::new();
        while !self.eat_punct("}") {
            if matches!(self.peek(), Tok::Eof) {
                return cerr(self.line(), "unexpected end of input in block");
            }
            stmts.push(self.parse_stmt()?);
        }
        Ok(stmts)
    }

    fn parse_stmt(&mut self) -> Result<Stmt, CError> {
        let line = self.line();
        if self.eat_punct("{") {
            return Ok(Stmt::Block(self.parse_block_body()?));
        }
        if self.at_type() {
            return self.parse_decl();
        }
        if self.eat_kw("if") {
            self.expect_punct("(")?;
            let cond = self.parse_expr()?;
            self.expect_punct(")")?;
            let then = self.parse_stmt_as_block()?;
            let els = if self.eat_kw("else") {
                self.parse_stmt_as_block()?
            } else {
                Vec::new()
            };
            return Ok(Stmt::If { cond, then, els });
        }
        if self.eat_kw("while") {
            self.expect_punct("(")?;
            let cond = self.parse_expr()?;
            self.expect_punct(")")?;
            let body = self.parse_stmt_as_block()?;
            return Ok(Stmt::While { cond, body });
        }
        if self.eat_kw("for") {
            self.expect_punct("(")?;
            let init = if self.eat_punct(";") {
                None
            } else if self.at_type() {
                Some(Box::new(self.parse_decl()?))
            } else {
                let e = self.parse_expr()?;
                self.expect_punct(";")?;
                Some(Box::new(Stmt::Expr(e)))
            };
            let cond = if matches!(self.peek(), Tok::Punct(";")) {
                None
            } else {
                Some(self.parse_expr()?)
            };
            self.expect_punct(";")?;
            let post = if matches!(self.peek(), Tok::Punct(")")) {
                None
            } else {
                Some(self.parse_expr()?)
            };
            self.expect_punct(")")?;
            let body = self.parse_stmt_as_block()?;
            return Ok(Stmt::For {
                init,
                cond,
                post,
                body,
            });
        }
        if self.eat_kw("return") {
            let value = if matches!(self.peek(), Tok::Punct(";")) {
                None
            } else {
                Some(self.parse_expr()?)
            };
            self.expect_punct(";")?;
            return Ok(Stmt::Return(value, line));
        }
        if self.eat_kw("break") {
            self.expect_punct(";")?;
            return Ok(Stmt::Break(line));
        }
        if self.eat_kw("continue") {
            self.expect_punct(";")?;
            return Ok(Stmt::Continue(line));
        }
        let e = self.parse_expr()?;
        self.expect_punct(";")?;
        Ok(Stmt::Expr(e))
    }

    fn parse_stmt_as_block(&mut self) -> Result<Vec<Stmt>, CError> {
        if self.eat_punct("{") {
            self.parse_block_body()
        } else {
            Ok(vec![self.parse_stmt()?])
        }
    }

    fn parse_decl(&mut self) -> Result<Stmt, CError> {
        let line = self.line();
        let ty = self.parse_type()?;
        let name = self.expect_ident()?;
        let ty = if self.eat_punct("[") {
            let n = match self.bump() {
                Tok::Int(v) if v >= 0 => v as usize,
                other => return cerr(self.line(), format!("bad array size {other:?}")),
            };
            self.expect_punct("]")?;
            Type::Array(Box::new(ty), n)
        } else {
            ty
        };
        let init = if self.eat_punct("=") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        self.expect_punct(";")?;
        Ok(Stmt::Decl {
            name,
            ty,
            init,
            line,
        })
    }

    // -- Expressions (precedence climbing). ---------------------------------

    fn parse_expr(&mut self) -> Result<Expr, CError> {
        self.parse_assign()
    }

    fn parse_assign(&mut self) -> Result<Expr, CError> {
        let lhs = self.parse_logor()?;
        if matches!(self.peek(), Tok::Punct("=")) {
            let line = self.line();
            self.bump();
            let rhs = self.parse_assign()?;
            return Ok(Expr::Assign(Box::new(lhs), Box::new(rhs), line));
        }
        Ok(lhs)
    }

    fn parse_logor(&mut self) -> Result<Expr, CError> {
        let mut e = self.parse_logand()?;
        while matches!(self.peek(), Tok::Punct("||")) {
            let line = self.line();
            self.bump();
            let r = self.parse_logand()?;
            e = Expr::Binary(BinOp::LogOr, Box::new(e), Box::new(r), line);
        }
        Ok(e)
    }

    fn parse_logand(&mut self) -> Result<Expr, CError> {
        let mut e = self.parse_bitor()?;
        while matches!(self.peek(), Tok::Punct("&&")) {
            let line = self.line();
            self.bump();
            let r = self.parse_bitor()?;
            e = Expr::Binary(BinOp::LogAnd, Box::new(e), Box::new(r), line);
        }
        Ok(e)
    }

    fn parse_bin_level(
        &mut self,
        ops: &[(&str, BinOp)],
        next: fn(&mut Parser) -> Result<Expr, CError>,
    ) -> Result<Expr, CError> {
        let mut e = next(self)?;
        'outer: loop {
            for (p, op) in ops {
                if matches!(self.peek(), Tok::Punct(q) if q == p) {
                    let line = self.line();
                    self.bump();
                    let r = next(self)?;
                    e = Expr::Binary(*op, Box::new(e), Box::new(r), line);
                    continue 'outer;
                }
            }
            break;
        }
        Ok(e)
    }

    fn parse_bitor(&mut self) -> Result<Expr, CError> {
        self.parse_bin_level(&[("|", BinOp::Or)], Parser::parse_bitxor)
    }

    fn parse_bitxor(&mut self) -> Result<Expr, CError> {
        self.parse_bin_level(&[("^", BinOp::Xor)], Parser::parse_bitand)
    }

    fn parse_bitand(&mut self) -> Result<Expr, CError> {
        self.parse_bin_level(&[("&", BinOp::And)], Parser::parse_equality)
    }

    fn parse_equality(&mut self) -> Result<Expr, CError> {
        self.parse_bin_level(
            &[("==", BinOp::Eq), ("!=", BinOp::Ne)],
            Parser::parse_relational,
        )
    }

    fn parse_relational(&mut self) -> Result<Expr, CError> {
        self.parse_bin_level(
            &[
                ("<=", BinOp::Le),
                (">=", BinOp::Ge),
                ("<", BinOp::Lt),
                (">", BinOp::Gt),
            ],
            Parser::parse_shift,
        )
    }

    fn parse_shift(&mut self) -> Result<Expr, CError> {
        self.parse_bin_level(
            &[("<<", BinOp::Shl), (">>", BinOp::Shr)],
            Parser::parse_additive,
        )
    }

    fn parse_additive(&mut self) -> Result<Expr, CError> {
        self.parse_bin_level(
            &[("+", BinOp::Add), ("-", BinOp::Sub)],
            Parser::parse_multiplicative,
        )
    }

    fn parse_multiplicative(&mut self) -> Result<Expr, CError> {
        self.parse_bin_level(
            &[("*", BinOp::Mul), ("/", BinOp::Div), ("%", BinOp::Mod)],
            Parser::parse_unary,
        )
    }

    fn parse_unary(&mut self) -> Result<Expr, CError> {
        let line = self.line();
        if self.eat_punct("-") {
            return Ok(Expr::Unary(UnOp::Neg, Box::new(self.parse_unary()?), line));
        }
        if self.eat_punct("~") {
            return Ok(Expr::Unary(
                UnOp::BitNot,
                Box::new(self.parse_unary()?),
                line,
            ));
        }
        if self.eat_punct("!") {
            return Ok(Expr::Unary(
                UnOp::LogNot,
                Box::new(self.parse_unary()?),
                line,
            ));
        }
        if self.eat_punct("*") {
            return Ok(Expr::Unary(
                UnOp::Deref,
                Box::new(self.parse_unary()?),
                line,
            ));
        }
        if self.eat_punct("&") {
            return Ok(Expr::Unary(
                UnOp::AddrOf,
                Box::new(self.parse_unary()?),
                line,
            ));
        }
        // Cast: `(` type `)` unary.
        if matches!(self.peek(), Tok::Punct("("))
            && matches!(self.peek2(), Tok::Ident(s) if matches!(s.as_str(), "int" | "char" | "void" | "struct"))
        {
            self.bump(); // (
            let ty = self.parse_type()?;
            self.expect_punct(")")?;
            let inner = self.parse_unary()?;
            return Ok(Expr::Cast(ty, Box::new(inner)));
        }
        self.parse_postfix()
    }

    fn parse_postfix(&mut self) -> Result<Expr, CError> {
        let mut e = self.parse_primary()?;
        loop {
            let line = self.line();
            if self.eat_punct("[") {
                let idx = self.parse_expr()?;
                self.expect_punct("]")?;
                e = Expr::Index(Box::new(e), Box::new(idx), line);
            } else if self.eat_punct(".") {
                let f = self.expect_ident()?;
                e = Expr::Member(Box::new(e), f, false, line);
            } else if self.eat_punct("->") {
                let f = self.expect_ident()?;
                e = Expr::Member(Box::new(e), f, true, line);
            } else {
                break;
            }
        }
        Ok(e)
    }

    fn parse_primary(&mut self) -> Result<Expr, CError> {
        let line = self.line();
        match self.bump() {
            Tok::Int(v) => Ok(Expr::Int(v)),
            Tok::Str(s) => Ok(Expr::Str(s)),
            Tok::Punct("(") => {
                let e = self.parse_expr()?;
                self.expect_punct(")")?;
                Ok(e)
            }
            Tok::Ident(name) if name == "sizeof" => {
                self.expect_punct("(")?;
                let ty = self.parse_type()?;
                self.expect_punct(")")?;
                Ok(Expr::SizeofType(ty))
            }
            Tok::Ident(name) => {
                if self.eat_punct("(") {
                    let mut args = Vec::new();
                    if !self.eat_punct(")") {
                        loop {
                            args.push(self.parse_expr()?);
                            if self.eat_punct(")") {
                                break;
                            }
                            self.expect_punct(",")?;
                        }
                    }
                    Ok(Expr::Call(name, args, line))
                } else {
                    Ok(Expr::Ident(name, line))
                }
            }
            other => cerr(line, format!("expected expression, found {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_annotated_fib() {
        let p =
            parse("virtine int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }")
                .unwrap();
        assert_eq!(p.funcs.len(), 1);
        let f = &p.funcs[0];
        assert_eq!(f.annotation, Annotation::Virtine);
        assert_eq!(f.name, "fib");
        assert_eq!(f.params, vec![("n".into(), Type::Int)]);
    }

    #[test]
    fn parses_all_annotations() {
        let p = parse(
            "virtine int a() { return 0; }\n\
             virtine_permissive int b() { return 0; }\n\
             virtine_config(mycfg) int c() { return 0; }\n\
             int d() { return 0; }",
        )
        .unwrap();
        assert_eq!(p.funcs[0].annotation, Annotation::Virtine);
        assert_eq!(p.funcs[1].annotation, Annotation::VirtinePermissive);
        assert_eq!(
            p.funcs[2].annotation,
            Annotation::VirtineConfig("mycfg".into())
        );
        assert_eq!(p.funcs[3].annotation, Annotation::None);
        assert_eq!(p.virtine_roots().len(), 3);
    }

    #[test]
    fn parses_globals_and_protos() {
        let p = parse(
            "int g = 5;\nint neg = -3;\nchar msg[16] = \"hi\";\nint arr[4];\nint ext(int a, char* b);",
        )
        .unwrap();
        assert_eq!(p.globals.len(), 4);
        assert_eq!(p.globals[0].init, GlobalInit::Int(5));
        assert_eq!(p.globals[1].init, GlobalInit::Int(-3));
        assert_eq!(p.globals[2].init, GlobalInit::Str(b"hi".to_vec()));
        assert_eq!(p.globals[3].init, GlobalInit::Zero);
        assert_eq!(p.protos.len(), 1);
        assert_eq!(p.protos[0].params, vec![Type::Int, Type::Char.ptr()]);
    }

    #[test]
    fn struct_offsets_are_computed() {
        let p = parse("struct node { int value; char tag[3]; struct node* next; };").unwrap();
        let s = &p.structs["node"];
        assert_eq!(s.field("value"), Some((&Type::Int, 0)));
        assert_eq!(
            s.field("tag"),
            Some((&Type::Array(Box::new(Type::Char), 3), 8))
        );
        // Pointer field is 8-aligned after the 3-byte array.
        let (t, off) = s.field("next").unwrap();
        assert_eq!(*t, Type::Struct("node".into()).ptr());
        assert_eq!(off, 16);
        assert_eq!(s.size, 24);
    }

    #[test]
    fn precedence_binds_correctly() {
        let p = parse("int f() { return 1 + 2 * 3 == 7 && 4 < 5; }").unwrap();
        // ((1 + (2*3)) == 7) && (4 < 5)
        let Stmt::Return(Some(e), _) = &p.funcs[0].body[0] else {
            panic!("expected return");
        };
        let Expr::Binary(BinOp::LogAnd, l, r, _) = e else {
            panic!("top must be &&, got {e:?}");
        };
        assert!(matches!(**l, Expr::Binary(BinOp::Eq, ..)));
        assert!(matches!(**r, Expr::Binary(BinOp::Lt, ..)));
    }

    #[test]
    fn parses_casts_and_sizeof() {
        let p = parse("int f(char* p) { return (int)p + sizeof(int) + sizeof(struct s); } struct s { int a; };").unwrap();
        let Stmt::Return(Some(e), _) = &p.funcs[0].body[0] else {
            panic!();
        };
        // Left-assoc: ((cast + sizeof(int)) + sizeof(struct s)).
        let Expr::Binary(BinOp::Add, l, r, _) = e else {
            panic!();
        };
        assert!(matches!(**r, Expr::SizeofType(Type::Struct(_))));
        let Expr::Binary(BinOp::Add, ll, _, _) = &**l else {
            panic!();
        };
        assert!(matches!(**ll, Expr::Cast(Type::Int, _)));
    }

    #[test]
    fn parses_control_flow() {
        let src = "
int f(int n) {
    int acc = 0;
    for (int i = 0; i < n; i = i + 1) {
        if (i % 2 == 0) { continue; }
        if (i > 100) break;
        acc = acc + i;
    }
    while (acc > 10) acc = acc - 1;
    return acc;
}";
        let p = parse(src).unwrap();
        assert_eq!(p.funcs[0].body.len(), 4);
    }

    #[test]
    fn member_and_arrow_chains() {
        let p = parse(
            "struct s { int x; struct s* next; };\nint f(struct s* p) { return p->next->x + (*p).x; }",
        )
        .unwrap();
        assert_eq!(p.funcs.len(), 1);
    }

    #[test]
    fn annotation_on_global_is_rejected() {
        assert!(parse("virtine int g = 5;").is_err());
        assert!(parse("virtine int f(int a);").is_err());
    }

    #[test]
    fn errors_report_lines() {
        let e = parse("int f() {\n  return 1 +;\n}").unwrap_err();
        assert_eq!(e.line, 2);
    }
}
