//! # vcc — the virtine C language extensions
//!
//! The paper extends C with a `virtine` keyword: "the compiler pass detects
//! C functions annotated with the `virtine` keyword … and automatically
//! generates code that invokes a pre-compiled virtine binary whenever the
//! function is called" (§5.3). `vcc` is that toolchain rebuilt from scratch
//! for the VISA machine:
//!
//! 1. the user's mini-C translation unit is combined with the `vlibc`
//!    library (the newlib port of §5.3) — mirroring the paper's
//!    same-compilation-unit restriction (§7.2);
//! 2. for every annotated function, the call graph is cut at the annotation
//!    and everything reachable is compiled and linked with a crt0 boot stub
//!    into a standalone binary [`Image`];
//! 3. the host side gets a [`CompiledVirtine`] that registers with a
//!    [`wasp::Wasp`] runtime and marshals `i64` arguments to guest address
//!    0x0 on each call.
//!
//! Annotations map to hypercall policies: `virtine` → default-deny,
//! `virtine_permissive` → allow-all, `virtine_config(name)` → a mask the
//! client supplies under `name` (§5.3).

pub mod ast;
pub mod codegen;
pub mod lex;
pub mod parse;

use std::collections::HashMap;

use visa::asm::Image;
use vlibc::{crt0_with_heap, layout, Crt0Kind, HYPERCALL4_ASM, HYPERCALL_ASM, LIBC_C};
use wasp::{HypercallMask, Invocation, RunOutcome, VirtineId, VirtineSpec, Wasp, WaspError};

pub use ast::{Annotation, Program, Type};
pub use lex::CError;

/// Compilation options.
#[derive(Debug, Clone)]
pub struct CompileOptions {
    /// Guest-physical memory per virtine context. Determines the stack top
    /// and bounds the heap.
    pub mem_size: usize,
    /// Maximum image size; the heap begins at `IMAGE_BASE + image_budget`.
    pub image_budget: usize,
}

impl Default for CompileOptions {
    fn default() -> CompileOptions {
        CompileOptions {
            mem_size: 512 * 1024,
            image_budget: 128 * 1024,
        }
    }
}

impl CompileOptions {
    fn heap_base(&self) -> u64 {
        layout::IMAGE_BASE + self.image_budget as u64
    }

    fn validate(&self) -> Result<(), CError> {
        let need = self.heap_base() + layout::STACK_RESERVE + 4096;
        if (self.mem_size as u64) < need {
            return Err(CError {
                line: 0,
                msg: format!(
                    "mem_size {:#x} too small for image budget (need at least {need:#x})",
                    self.mem_size
                ),
            });
        }
        Ok(())
    }
}

/// A compiled, packageable virtine: the product of one `virtine` annotation.
#[derive(Debug, Clone)]
pub struct CompiledVirtine {
    /// The annotated function's name.
    pub name: String,
    /// Number of integer parameters (for marshalling).
    pub arity: usize,
    /// The bootable binary image.
    pub image: Image,
    /// The annotation that produced this virtine.
    pub annotation: Annotation,
    /// Guest memory size the image was linked for.
    pub mem_size: usize,
    /// Full assembly listing (diagnostics; the paper's `-S` analogue).
    pub listing: String,
}

impl CompiledVirtine {
    /// Resolves the hypercall policy, looking `virtine_config` names up in
    /// `configs` (missing names fall back to default-deny).
    pub fn policy(&self, configs: &HashMap<String, HypercallMask>) -> HypercallMask {
        match &self.annotation {
            Annotation::None | Annotation::Virtine => HypercallMask::DENY_ALL,
            Annotation::VirtinePermissive => HypercallMask::ALLOW_ALL,
            Annotation::VirtineConfig(name) => configs
                .get(name)
                .copied()
                .unwrap_or(HypercallMask::DENY_ALL),
        }
    }

    /// Registers this virtine with a Wasp runtime (default-deny / annotated
    /// policy, snapshotting on — the §5.3 defaults).
    pub fn register(&self, wasp: &Wasp) -> Result<VirtineId, WaspError> {
        self.register_with(wasp, &HashMap::new())
    }

    /// Registers with explicit `virtine_config` policies.
    pub fn register_with(
        &self,
        wasp: &Wasp,
        configs: &HashMap<String, HypercallMask>,
    ) -> Result<VirtineId, WaspError> {
        let spec = VirtineSpec::new(self.name.clone(), self.image.clone(), self.mem_size)
            .with_policy(self.policy(configs));
        wasp.register(spec)
    }
}

/// Marshals integer arguments into the guest ABI (little-endian `i64`s at
/// address 0x0, §6.1).
pub fn marshal_args(args: &[i64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(args.len() * 8);
    for a in args {
        out.extend_from_slice(&a.to_le_bytes());
    }
    out
}

/// Invokes a registered virtine with integer arguments, returning the run
/// outcome (the return value is `outcome.ret` as `i64`).
pub fn invoke(wasp: &Wasp, id: VirtineId, args: &[i64]) -> Result<RunOutcome, WaspError> {
    wasp.run(id, &marshal_args(args), Invocation::default())
}

/// The result of compiling a translation unit.
#[derive(Debug, Clone)]
pub struct CompiledUnit {
    /// One compiled image per annotated function.
    pub virtines: Vec<CompiledVirtine>,
}

impl CompiledUnit {
    /// Finds a virtine by function name.
    pub fn virtine(&self, name: &str) -> Option<&CompiledVirtine> {
        self.virtines.iter().find(|v| v.name == name)
    }
}

/// Compiles a mini-C translation unit with default options.
pub fn compile(source: &str) -> Result<CompiledUnit, CError> {
    compile_with(source, &CompileOptions::default())
}

/// Compiles a mini-C translation unit, producing one image per annotated
/// function.
pub fn compile_with(source: &str, opts: &CompileOptions) -> Result<CompiledUnit, CError> {
    opts.validate()?;
    let program = parse_unit(source)?;
    let roots = program.virtine_roots();
    if roots.is_empty() {
        return Err(CError {
            line: 0,
            msg: "no `virtine`-annotated functions in the translation unit".into(),
        });
    }
    let mut virtines = Vec::new();
    for f in roots {
        let arity = f.params.len();
        let kind = Crt0Kind::Full { arity };
        let cv = link_one(&program, &f.name, f.annotation.clone(), kind, opts)?;
        virtines.push(cv);
    }
    Ok(CompiledUnit { virtines })
}

/// Compiles a translation unit into a single *raw-environment* image
/// (Figure 10 B): boot and libc init, then `entry_fn()` with no automatic
/// snapshot and no marshalled call — the program drives hypercalls itself,
/// as the Duktape engine of §6.5 does via the direct runtime API.
pub fn compile_raw(
    source: &str,
    entry_fn: &str,
    opts: &CompileOptions,
) -> Result<CompiledVirtine, CError> {
    opts.validate()?;
    let program = parse_unit(source)?;
    if program.func(entry_fn).is_none() {
        return Err(CError {
            line: 0,
            msg: format!("raw entry function `{entry_fn}` is not defined"),
        });
    }
    link_one(&program, entry_fn, Annotation::None, Crt0Kind::Raw, opts)
}

fn parse_unit(source: &str) -> Result<Program, CError> {
    // User code first so its diagnostics keep their line numbers; the
    // library follows in the same translation unit (§7.2's restriction).
    let combined = format!("{source}\n{LIBC_C}");
    parse::parse(&combined)
}

fn link_one(
    program: &Program,
    root: &str,
    annotation: Annotation,
    kind: Crt0Kind,
    opts: &CompileOptions,
) -> Result<CompiledVirtine, CError> {
    let gen = codegen::generate(program, &[root, "__libc_init"])?;
    for ext in &gen.externs {
        if ext != "hypercall" && ext != "hypercall4" {
            return Err(CError {
                line: 0,
                msg: format!("unresolved external function `{ext}`"),
            });
        }
    }
    let mut listing = crt0_with_heap(root, kind, opts.mem_size, opts.heap_base());
    listing.push_str(&gen.text);
    if gen.externs.contains("hypercall") {
        listing.push_str(HYPERCALL_ASM);
    }
    if gen.externs.contains("hypercall4") {
        listing.push_str(HYPERCALL4_ASM);
    }
    listing.push_str(&gen.data);

    let image = visa::assemble(&listing).map_err(|e| CError {
        line: 0,
        msg: format!("internal: generated assembly failed to assemble: {e}"),
    })?;
    if image.size() > opts.image_budget {
        return Err(CError {
            line: 0,
            msg: format!(
                "image for `{root}` is {} bytes, over the {}-byte budget",
                image.size(),
                opts.image_budget
            ),
        });
    }
    let arity = match kind {
        Crt0Kind::Full { arity } => arity,
        Crt0Kind::Raw => 0,
    };
    Ok(CompiledVirtine {
        name: root.to_string(),
        arity,
        image,
        annotation,
        mem_size: opts.mem_size,
        listing,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wasp::ExitKind;

    /// The paper's flagship example (Figure 9).
    const FIB_C: &str = "
virtine int fib(int n) {
    if (n < 2) return n;
    return fib(n - 1) + fib(n - 2);
}
";

    fn rust_fib(n: i64) -> i64 {
        if n < 2 {
            n
        } else {
            rust_fib(n - 1) + rust_fib(n - 2)
        }
    }

    #[test]
    fn figure_9_fib_compiles_and_runs() {
        let unit = compile(FIB_C).unwrap();
        assert_eq!(unit.virtines.len(), 1);
        let v = unit.virtine("fib").unwrap();
        assert_eq!(v.arity, 1);
        assert_eq!(v.annotation, Annotation::Virtine);

        let wasp = Wasp::new_kvm_default();
        let id = v.register(&wasp).unwrap();
        for n in [0, 1, 2, 7, 12] {
            let out = invoke(&wasp, id, &[n]).unwrap();
            assert!(out.exit.is_normal(), "fib({n}) exited {:?}", out.exit);
            assert_eq!(out.ret as i64, rust_fib(n), "fib({n})");
        }
    }

    #[test]
    fn snapshot_accelerates_repeat_invocations() {
        let unit = compile(FIB_C).unwrap();
        let wasp = Wasp::new_kvm_default();
        let id = unit.virtine("fib").unwrap().register(&wasp).unwrap();
        let cold = invoke(&wasp, id, &[5]).unwrap();
        let warm = invoke(&wasp, id, &[5]).unwrap();
        assert!(!cold.breakdown.restored_snapshot);
        assert!(warm.breakdown.restored_snapshot);
        assert!(
            warm.breakdown.total < cold.breakdown.total,
            "snapshot run {} !< cold run {}",
            warm.breakdown.total,
            cold.breakdown.total
        );
        assert_eq!(warm.ret, cold.ret);
    }

    #[test]
    fn vchan_wrappers_compile_and_round_trip_in_guest() {
        // A self-contained pipeline stage: opens a channel, pushes a
        // message through it, reads it back non-blockingly, and returns a
        // checksum — exercising hypercall4 (the flags register must be
        // pinned to 0/1, not caller garbage) end to end.
        let src = r#"
virtine_config(chans) int pipe_echo(int n) {
    int h = vchan_open(64);
    if (h < 0) return -1;
    char msg[16];
    itoa(n, msg);
    int len = strlen(msg);
    if (vchan_send(h, msg, len) != len) return -2;
    char back[16];
    int got = vchan_tryrecv(h, back, 16);
    if (got != len) return -3;
    back[got] = 0;
    /* Drained now: tryrecv must report WOULD_BLOCK (-2), not block. */
    char dummy[4];
    if (vchan_tryrecv(h, dummy, 4) != 0 - 2) return -4;
    if (vchan_close(h) != 0) return -5;
    return atoi(back);
}
"#;
        let unit = compile(src).unwrap();
        let wasp = Wasp::new_kvm_default();
        let configs = HashMap::from([(
            "chans".to_string(),
            HypercallMask::allowing(&[
                wasp::nr::GET_DATA,
                wasp::nr::CHAN_OPEN,
                wasp::nr::CHAN_SEND,
                wasp::nr::CHAN_RECV,
                wasp::nr::CHAN_CLOSE,
            ]),
        )]);
        let id = unit
            .virtine("pipe_echo")
            .unwrap()
            .register_with(&wasp, &configs)
            .unwrap();
        let out = invoke(&wasp, id, &[4711]).unwrap();
        assert!(out.exit.is_normal(), "{:?}", out.exit);
        assert_eq!(out.ret as i64, 4711);
    }

    #[test]
    fn library_functions_work_in_guest() {
        let src = r#"
virtine int work(int n) {
    char buf[32];
    char* msg = "hello";
    strcpy(buf, msg);
    if (strcmp(buf, "hello") != 0) return -1;
    if (strlen(buf) != 5) return -2;
    char num[24];
    itoa(12345, num);
    return atoi(num) + n;
}
"#;
        let unit = compile(src).unwrap();
        let wasp = Wasp::new_kvm_default();
        let id = unit.virtine("work").unwrap().register(&wasp).unwrap();
        let out = invoke(&wasp, id, &[55]).unwrap();
        assert!(out.exit.is_normal(), "{:?}", out.exit);
        assert_eq!(out.ret as i64, 12400);
    }

    #[test]
    fn malloc_and_structs_in_guest() {
        let src = r#"
struct node {
    int value;
    struct node* next;
};

virtine int sum_list(int n) {
    struct node* head = 0;
    int i;
    for (i = 0; i < n; i = i + 1) {
        struct node* nd = (struct node*)malloc(sizeof(struct node));
        if (nd == 0) return -1;
        nd->value = i;
        nd->next = head;
        head = nd;
    }
    int sum = 0;
    while (head != 0) {
        sum = sum + head->value;
        head = head->next;
    }
    return sum;
}
"#;
        let unit = compile(src).unwrap();
        let wasp = Wasp::new_kvm_default();
        let id = unit.virtine("sum_list").unwrap().register(&wasp).unwrap();
        let out = invoke(&wasp, id, &[10]).unwrap();
        assert!(out.exit.is_normal(), "{:?}", out.exit);
        assert_eq!(out.ret, 45);
    }

    #[test]
    fn base64_matches_reference() {
        let src = r#"
virtine int encode(int n) {
    char src[8];
    char dst[16];
    src[0] = 'M'; src[1] = 'a'; src[2] = 'n';
    base64_encode(src, 3, dst);
    if (strcmp(dst, "TWFu") != 0) return 0;
    return 1;
}
"#;
        let unit = compile(src).unwrap();
        let wasp = Wasp::new_kvm_default();
        let id = unit.virtine("encode").unwrap().register(&wasp).unwrap();
        assert_eq!(invoke(&wasp, id, &[0]).unwrap().ret, 1);
    }

    #[test]
    fn permissive_annotation_allows_stdout_writes() {
        let src = r#"
virtine_permissive int shout(int n) {
    puts("virtine says hi");
    return n * 2;
}
"#;
        let unit = compile(src).unwrap();
        let v = unit.virtine("shout").unwrap();
        assert_eq!(v.annotation, Annotation::VirtinePermissive);
        let wasp = Wasp::new_kvm_default();
        let id = v.register(&wasp).unwrap();
        let out = invoke(&wasp, id, &[21]).unwrap();
        assert_eq!(out.ret, 42);
        assert_eq!(out.invocation.stdout, b"virtine says hi");
    }

    #[test]
    fn plain_virtine_denies_io_hypercalls() {
        let src = r#"
virtine int sneaky(int n) {
    puts("exfiltrate!");
    return n;
}
"#;
        let unit = compile(src).unwrap();
        let wasp = Wasp::new_kvm_default();
        let id = unit.virtine("sneaky").unwrap().register(&wasp).unwrap();
        let out = invoke(&wasp, id, &[1]).unwrap();
        assert!(
            matches!(out.exit, ExitKind::Denied { nr: 1 }),
            "write must be denied under default-deny, got {:?}",
            out.exit
        );
        assert!(out.invocation.stdout.is_empty());
    }

    #[test]
    fn virtine_config_resolves_client_policies() {
        let src = r#"
virtine_config(io_only) int writer(int n) {
    puts("ok");
    return n;
}
"#;
        let unit = compile(src).unwrap();
        let v = unit.virtine("writer").unwrap();
        assert_eq!(v.annotation, Annotation::VirtineConfig("io_only".into()));

        let mut configs = HashMap::new();
        configs.insert(
            "io_only".to_string(),
            HypercallMask::allowing(&[wasp::nr::WRITE]),
        );
        let wasp = Wasp::new_kvm_default();
        let id = v.register_with(&wasp, &configs).unwrap();
        let out = invoke(&wasp, id, &[3]).unwrap();
        assert!(out.exit.is_normal());
        assert_eq!(out.invocation.stdout, b"ok");

        // Without the config the same virtine is default-deny.
        let id2 = v.register(&wasp).unwrap();
        let out2 = invoke(&wasp, id2, &[3]).unwrap();
        assert!(matches!(out2.exit, ExitKind::Denied { .. }));
    }

    #[test]
    fn call_graph_cut_keeps_images_small() {
        let src = r#"
int used(int x) { return x + 1; }
int heavy_unused(int x) {
    char big[4096];
    big[0] = x;
    return big[0];
}
virtine int lean(int n) { return used(n); }
"#;
        let unit = compile(src).unwrap();
        let v = unit.virtine("lean").unwrap();
        assert!(v.image.label("used").is_some());
        assert!(v.image.label("heavy_unused").is_none());
        // Small, as §2 promises: a minimal virtine is tens of KB at most.
        assert!(v.image.size() < 16 * 1024, "image is {}", v.image.size());
    }

    #[test]
    fn multiple_virtines_in_one_unit() {
        let src = "
virtine int double(int x) { return x * 2; }
virtine int triple(int x) { return x * 3; }
";
        let unit = compile(src).unwrap();
        assert_eq!(unit.virtines.len(), 2);
        let wasp = Wasp::new_kvm_default();
        let d = unit.virtine("double").unwrap().register(&wasp).unwrap();
        let t = unit.virtine("triple").unwrap().register(&wasp).unwrap();
        assert_eq!(invoke(&wasp, d, &[7]).unwrap().ret, 14);
        assert_eq!(invoke(&wasp, t, &[7]).unwrap().ret, 21);
    }

    #[test]
    fn no_annotation_is_an_error() {
        let err = compile("int f(int x) { return x; }").unwrap_err();
        assert!(err.msg.contains("no `virtine`"));
    }

    #[test]
    fn raw_environment_compiles_and_runs() {
        let src = r#"
int main_entry() {
    char buf[64];
    int n = vget_data(buf, 64);
    char out[128];
    int m = base64_encode(buf, n, out);
    vreturn_data(out, m);
    vexit(0);
    return 0;
}
"#;
        let v = compile_raw(src, "main_entry", &CompileOptions::default()).unwrap();
        let wasp = Wasp::new_kvm_default();
        let spec = wasp::VirtineSpec::new("b64", v.image.clone(), v.mem_size)
            .with_policy(HypercallMask::ALLOW_ALL)
            .with_snapshot(false);
        let id = wasp.register(spec).unwrap();
        let out = wasp
            .run(id, &[], Invocation::with_payload(b"Man".to_vec()))
            .unwrap();
        assert!(matches!(out.exit, ExitKind::Exited(0)), "{:?}", out.exit);
        assert_eq!(out.result_bytes(), b"TWFu");
    }

    #[test]
    fn compile_errors_surface_with_lines() {
        let err = compile("virtine int f(int n) {\n  return n +;\n}").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn options_validation_rejects_tiny_memories() {
        let opts = CompileOptions {
            mem_size: 64 * 1024,
            image_budget: 128 * 1024,
        };
        assert!(compile_with(FIB_C, &opts).is_err());
    }
}
