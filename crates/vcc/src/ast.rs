//! Abstract syntax for mini-C, the language of the virtine extensions.
//!
//! Mini-C is the subset of C the paper's clang/LLVM toolchain consumes,
//! reduced to what the virtine runtime and workloads need: `int` (64-bit),
//! `char`, pointers, arrays, structs, functions, the usual statements and
//! operators, string literals, `sizeof`, casts — plus the paper's function
//! annotations `virtine`, `virtine_permissive` and `virtine_config(name)`
//! (§5.3).

use std::collections::HashMap;
use std::fmt;

/// A mini-C type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Type {
    /// 64-bit signed integer.
    Int,
    /// 8-bit byte (zero-extended on load).
    Char,
    /// No value (function returns, `void*` pointee).
    Void,
    /// Pointer to a pointee type.
    Ptr(Box<Type>),
    /// Fixed-size array.
    Array(Box<Type>, usize),
    /// A named struct.
    Struct(String),
}

impl Type {
    /// Pointer-to-self convenience.
    pub fn ptr(self) -> Type {
        Type::Ptr(Box::new(self))
    }

    /// Whether values of this type occupy one byte in memory.
    pub fn is_byte(&self) -> bool {
        matches!(self, Type::Char)
    }

    /// Whether this is any pointer (including `void*`).
    pub fn is_pointer(&self) -> bool {
        matches!(self, Type::Ptr(_))
    }

    /// Whether this behaves as a pointer in arithmetic (pointer or array).
    pub fn is_pointer_like(&self) -> bool {
        matches!(self, Type::Ptr(_) | Type::Array(..))
    }

    /// The pointee/element type for pointers and arrays.
    pub fn pointee(&self) -> Option<&Type> {
        match self {
            Type::Ptr(t) => Some(t),
            Type::Array(t, _) => Some(t),
            _ => None,
        }
    }

    /// Size in bytes; structs are resolved through `structs`.
    ///
    /// # Panics
    ///
    /// Panics if a named struct is undefined (the parser guarantees
    /// definitions exist before use in sizeofs and declarations).
    pub fn size(&self, structs: &StructTable) -> u64 {
        match self {
            Type::Int | Type::Ptr(_) => 8,
            Type::Char => 1,
            Type::Void => 1, // As in GCC: void* arithmetic steps by 1.
            Type::Array(t, n) => t.size(structs) * *n as u64,
            Type::Struct(name) => {
                structs
                    .get(name)
                    .unwrap_or_else(|| panic!("undefined struct `{name}`"))
                    .size
            }
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Int => write!(f, "int"),
            Type::Char => write!(f, "char"),
            Type::Void => write!(f, "void"),
            Type::Ptr(t) => write!(f, "{t}*"),
            Type::Array(t, n) => write!(f, "{t}[{n}]"),
            Type::Struct(n) => write!(f, "struct {n}"),
        }
    }
}

/// A struct definition with computed field offsets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructDef {
    /// Struct name.
    pub name: String,
    /// Fields in declaration order: name, type, byte offset.
    pub fields: Vec<(String, Type, u64)>,
    /// Total size (8-byte aligned).
    pub size: u64,
}

impl StructDef {
    /// Looks up a field.
    pub fn field(&self, name: &str) -> Option<(&Type, u64)> {
        self.fields
            .iter()
            .find(|(n, _, _)| n == name)
            .map(|(_, t, off)| (t, *off))
    }
}

/// All struct definitions of a translation unit.
pub type StructTable = HashMap<String, StructDef>;

/// The virtine annotations of §5.3.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Annotation {
    /// Plain function.
    None,
    /// `virtine`: run in an isolated context, default-deny hypercalls.
    Virtine,
    /// `virtine_permissive`: all hypercalls allowed.
    VirtinePermissive,
    /// `virtine_config(name)`: policy supplied by the client under `name`.
    VirtineConfig(String),
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `&`
    And,
    /// `|`
    Or,
    /// `^`
    Xor,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    LogAnd,
    /// `||`
    LogOr,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Bitwise complement.
    BitNot,
    /// Logical not.
    LogNot,
    /// Dereference.
    Deref,
    /// Address-of.
    AddrOf,
}

/// Expressions. Every node carries the 1-based source line for diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer or character literal.
    Int(i64),
    /// String literal (becomes an interned read-only global).
    Str(Vec<u8>),
    /// Variable reference.
    Ident(String, usize),
    /// Unary operation.
    Unary(UnOp, Box<Expr>, usize),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>, usize),
    /// Assignment `lhs = rhs`.
    Assign(Box<Expr>, Box<Expr>, usize),
    /// Function call.
    Call(String, Vec<Expr>, usize),
    /// Array/pointer index `base[idx]`.
    Index(Box<Expr>, Box<Expr>, usize),
    /// Member access `base.field` (`arrow = false`) or `base->field`.
    Member(Box<Expr>, String, bool, usize),
    /// `sizeof(type)`.
    SizeofType(Type),
    /// Cast `(type)expr` (bit-identical; retypes the value).
    Cast(Type, Box<Expr>),
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Local declaration with optional initializer.
    Decl {
        /// Variable name.
        name: String,
        /// Declared type.
        ty: Type,
        /// Optional initializer expression.
        init: Option<Expr>,
        /// Source line.
        line: usize,
    },
    /// Expression statement.
    Expr(Expr),
    /// `if`/`else`.
    If {
        /// Condition.
        cond: Expr,
        /// Then-branch.
        then: Vec<Stmt>,
        /// Else-branch.
        els: Vec<Stmt>,
    },
    /// `while` loop.
    While {
        /// Condition.
        cond: Expr,
        /// Body.
        body: Vec<Stmt>,
    },
    /// `for` loop.
    For {
        /// Initializer (declaration or expression).
        init: Option<Box<Stmt>>,
        /// Condition (empty = true).
        cond: Option<Expr>,
        /// Post-iteration expression.
        post: Option<Expr>,
        /// Body.
        body: Vec<Stmt>,
    },
    /// `return` with optional value.
    Return(Option<Expr>, usize),
    /// `break`.
    Break(usize),
    /// `continue`.
    Continue(usize),
    /// Braced block.
    Block(Vec<Stmt>),
}

/// Global variable initializer.
#[derive(Debug, Clone, PartialEq)]
pub enum GlobalInit {
    /// Zero-initialized.
    Zero,
    /// Constant integer.
    Int(i64),
    /// String contents (for `char name[] = "..."`-style globals).
    Str(Vec<u8>),
    /// Brace-list of integer constants (for table globals like S-boxes).
    List(Vec<i64>),
}

/// A global variable.
#[derive(Debug, Clone, PartialEq)]
pub struct Global {
    /// Name.
    pub name: String,
    /// Type.
    pub ty: Type,
    /// Initializer.
    pub init: GlobalInit,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Func {
    /// Name.
    pub name: String,
    /// Return type.
    pub ret: Type,
    /// Parameters (name, type).
    pub params: Vec<(String, Type)>,
    /// Body.
    pub body: Vec<Stmt>,
    /// Virtine annotation.
    pub annotation: Annotation,
    /// Source line of the definition.
    pub line: usize,
}

/// A function prototype (e.g. the `hypercall` assembly trampoline).
#[derive(Debug, Clone, PartialEq)]
pub struct Proto {
    /// Name.
    pub name: String,
    /// Return type.
    pub ret: Type,
    /// Parameter types.
    pub params: Vec<Type>,
}

/// A parsed translation unit.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Program {
    /// Struct definitions.
    pub structs: StructTable,
    /// Global variables.
    pub globals: Vec<Global>,
    /// Function definitions.
    pub funcs: Vec<Func>,
    /// Prototypes without bodies.
    pub protos: Vec<Proto>,
}

impl Program {
    /// Finds a function definition by name.
    pub fn func(&self, name: &str) -> Option<&Func> {
        self.funcs.iter().find(|f| f.name == name)
    }

    /// Names of all `virtine`-annotated functions.
    pub fn virtine_roots(&self) -> Vec<&Func> {
        self.funcs
            .iter()
            .filter(|f| f.annotation != Annotation::None)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table_with(def: StructDef) -> StructTable {
        let mut t = StructTable::new();
        t.insert(def.name.clone(), def);
        t
    }

    #[test]
    fn scalar_sizes() {
        let t = StructTable::new();
        assert_eq!(Type::Int.size(&t), 8);
        assert_eq!(Type::Char.size(&t), 1);
        assert_eq!(Type::Int.ptr().size(&t), 8);
        assert_eq!(Type::Array(Box::new(Type::Char), 10).size(&t), 10);
        assert_eq!(Type::Array(Box::new(Type::Int), 4).size(&t), 32);
    }

    #[test]
    fn struct_sizes_resolve() {
        let def = StructDef {
            name: "pair".into(),
            fields: vec![("a".into(), Type::Int, 0), ("b".into(), Type::Int, 8)],
            size: 16,
        };
        let t = table_with(def);
        assert_eq!(Type::Struct("pair".into()).size(&t), 16);
        assert_eq!(Type::Struct("pair".into()).ptr().size(&t), 8);
    }

    #[test]
    fn field_lookup() {
        let def = StructDef {
            name: "s".into(),
            fields: vec![("x".into(), Type::Char, 0), ("y".into(), Type::Int, 8)],
            size: 16,
        };
        assert_eq!(def.field("y"), Some((&Type::Int, 8)));
        assert_eq!(def.field("z"), None);
    }

    #[test]
    fn pointer_classification() {
        assert!(Type::Int.ptr().is_pointer());
        assert!(Type::Array(Box::new(Type::Int), 3).is_pointer_like());
        assert!(!Type::Int.is_pointer_like());
        assert_eq!(Type::Char.ptr().pointee(), Some(&Type::Char));
    }
}
