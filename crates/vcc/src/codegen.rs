//! Mini-C → VISA assembly code generation with call-graph packaging.
//!
//! The generator mirrors the paper's LLVM pass (§5.3): starting from an
//! annotated root function it "generates a call graph rooted at that
//! function" and "automatically packages a subset of the source program into
//! the virtine context based on what that virtine needs" — unreachable
//! functions and unreferenced globals are simply not emitted, keeping images
//! small (§2: "virtine images are typically small").
//!
//! Code shape: a simple stack machine. Expression results live in `r0`;
//! `r10` is the RHS scratch; `fp` (`r14`) frames locals at negative offsets
//! and arguments at `fp+16, fp+24, …` (pushed right-to-left); the caller
//! pops arguments.

use std::collections::{BTreeSet, HashMap};
use std::fmt::Write as _;

use crate::ast::*;
use crate::lex::{cerr, CError};

/// Generated assembly for one virtine image.
#[derive(Debug, Clone)]
pub struct GenOutput {
    /// Function bodies (text section).
    pub text: String,
    /// Globals and interned strings (data section).
    pub data: String,
    /// Functions that made it into the image.
    pub reachable: BTreeSet<String>,
    /// Called names with prototypes but no mini-C body (satisfied by
    /// assembly stubs such as `hypercall`).
    pub externs: BTreeSet<String>,
}

#[derive(Clone)]
struct FnSig {
    ret: Type,
    params: Vec<Type>,
    has_body: bool,
}

/// Generates code for everything reachable from `roots`.
pub fn generate(program: &Program, roots: &[&str]) -> Result<GenOutput, CError> {
    let mut sigs: HashMap<String, FnSig> = HashMap::new();
    for p in &program.protos {
        sigs.insert(
            p.name.clone(),
            FnSig {
                ret: p.ret.clone(),
                params: p.params.clone(),
                has_body: false,
            },
        );
    }
    for f in &program.funcs {
        sigs.insert(
            f.name.clone(),
            FnSig {
                ret: f.ret.clone(),
                params: f.params.iter().map(|(_, t)| t.clone()).collect(),
                has_body: true,
            },
        );
    }

    // Reachability over the call graph (the §5.3 "cut").
    let mut reachable: BTreeSet<String> = BTreeSet::new();
    let mut externs: BTreeSet<String> = BTreeSet::new();
    let mut work: Vec<String> = roots.iter().map(|s| s.to_string()).collect();
    while let Some(name) = work.pop() {
        let Some(sig) = sigs.get(&name) else {
            return cerr(0, format!("call to undefined function `{name}`"));
        };
        if !sig.has_body {
            externs.insert(name);
            continue;
        }
        if !reachable.insert(name.clone()) {
            continue;
        }
        let f = program.func(&name).expect("has_body implies def");
        let mut callees = Vec::new();
        collect_calls_stmts(&f.body, &mut callees);
        work.extend(callees);
    }

    let mut cg = Codegen {
        program,
        sigs,
        text: String::new(),
        data: String::new(),
        strings: Vec::new(),
        used_globals: BTreeSet::new(),
        label_counter: 0,
        globals: program
            .globals
            .iter()
            .map(|g| (g.name.clone(), g.ty.clone()))
            .collect(),
    };

    for name in &reachable {
        let f = program.func(name).expect("reachable implies def");
        cg.gen_func(f)?;
    }
    cg.emit_data()?;

    Ok(GenOutput {
        text: cg.text,
        data: cg.data,
        reachable,
        externs,
    })
}

fn collect_calls_stmts(stmts: &[Stmt], out: &mut Vec<String>) {
    for s in stmts {
        match s {
            Stmt::Decl { init, .. } => {
                if let Some(e) = init {
                    collect_calls_expr(e, out);
                }
            }
            Stmt::Expr(e) => collect_calls_expr(e, out),
            Stmt::If { cond, then, els } => {
                collect_calls_expr(cond, out);
                collect_calls_stmts(then, out);
                collect_calls_stmts(els, out);
            }
            Stmt::While { cond, body } => {
                collect_calls_expr(cond, out);
                collect_calls_stmts(body, out);
            }
            Stmt::For {
                init,
                cond,
                post,
                body,
            } => {
                if let Some(i) = init {
                    collect_calls_stmts(std::slice::from_ref(i), out);
                }
                if let Some(c) = cond {
                    collect_calls_expr(c, out);
                }
                if let Some(p) = post {
                    collect_calls_expr(p, out);
                }
                collect_calls_stmts(body, out);
            }
            Stmt::Return(Some(e), _) => collect_calls_expr(e, out),
            Stmt::Return(None, _) | Stmt::Break(_) | Stmt::Continue(_) => {}
            Stmt::Block(b) => collect_calls_stmts(b, out),
        }
    }
}

fn collect_calls_expr(e: &Expr, out: &mut Vec<String>) {
    match e {
        Expr::Call(name, args, _) => {
            out.push(name.clone());
            for a in args {
                collect_calls_expr(a, out);
            }
        }
        Expr::Unary(_, a, _) | Expr::Cast(_, a) => collect_calls_expr(a, out),
        Expr::Binary(_, a, b, _) | Expr::Assign(a, b, _) | Expr::Index(a, b, _) => {
            collect_calls_expr(a, out);
            collect_calls_expr(b, out);
        }
        Expr::Member(a, _, _, _) => collect_calls_expr(a, out),
        Expr::Int(_) | Expr::Str(_) | Expr::Ident(..) | Expr::SizeofType(_) => {}
    }
}

struct Codegen<'a> {
    program: &'a Program,
    sigs: HashMap<String, FnSig>,
    text: String,
    data: String,
    strings: Vec<(String, Vec<u8>)>,
    used_globals: BTreeSet<String>,
    label_counter: usize,
    globals: HashMap<String, Type>,
}

/// Per-function state.
struct FuncCtx {
    /// Scope stack: name → (fp offset, type). Negative offsets are locals;
    /// positive are arguments.
    scopes: Vec<HashMap<String, (i64, Type)>>,
    frame: u64,
    body: String,
    break_labels: Vec<String>,
    continue_labels: Vec<String>,
}

impl FuncCtx {
    fn lookup(&self, name: &str) -> Option<(i64, Type)> {
        for scope in self.scopes.iter().rev() {
            if let Some(v) = scope.get(name) {
                return Some(v.clone());
            }
        }
        None
    }

    fn alloc_local(&mut self, name: &str, ty: Type, size: u64) -> i64 {
        let sz = size.div_ceil(8) * 8;
        self.frame += sz;
        let off = -(self.frame as i64);
        self.scopes
            .last_mut()
            .expect("scope stack never empty")
            .insert(name.to_string(), (off, ty));
        off
    }
}

impl Codegen<'_> {
    fn fresh(&mut self, tag: &str) -> String {
        self.label_counter += 1;
        format!(".L{}_{}", tag, self.label_counter)
    }

    fn intern_string(&mut self, bytes: &[u8]) -> String {
        if let Some((label, _)) = self.strings.iter().find(|(_, b)| b == bytes) {
            return label.clone();
        }
        let label = format!("__str{}", self.strings.len());
        self.strings.push((label.clone(), bytes.to_vec()));
        label
    }

    fn gen_func(&mut self, f: &Func) -> Result<(), CError> {
        let mut cx = FuncCtx {
            scopes: vec![HashMap::new()],
            frame: 0,
            body: String::new(),
            break_labels: Vec::new(),
            continue_labels: Vec::new(),
        };
        // Arguments at fp+16, fp+24, ... (return address and saved fp below).
        for (i, (name, ty)) in f.params.iter().enumerate() {
            // Array parameters decay to pointers.
            let ty = match ty {
                Type::Array(el, _) => el.clone().ptr(),
                other => other.clone(),
            };
            cx.scopes[0].insert(name.clone(), (16 + 8 * i as i64, ty));
        }
        self.gen_stmts(&mut cx, &f.body)?;
        // Implicit `return 0` for control flow that falls off the end.
        cx.body
            .push_str("  mov r0, 0\n  mov sp, fp\n  pop fp\n  ret\n");

        let _ = writeln!(self.text, "{}:", f.name);
        self.text.push_str("  push fp\n  mov fp, sp\n");
        if cx.frame > 0 {
            let _ = writeln!(self.text, "  sub sp, {}", cx.frame);
        }
        self.text.push_str(&cx.body);
        Ok(())
    }

    fn gen_stmts(&mut self, cx: &mut FuncCtx, stmts: &[Stmt]) -> Result<(), CError> {
        cx.scopes.push(HashMap::new());
        for s in stmts {
            self.gen_stmt(cx, s)?;
        }
        cx.scopes.pop();
        Ok(())
    }

    fn gen_stmt(&mut self, cx: &mut FuncCtx, s: &Stmt) -> Result<(), CError> {
        match s {
            Stmt::Decl {
                name,
                ty,
                init,
                line,
            } => {
                let size = ty.size(&self.program.structs);
                let off = cx.alloc_local(name, ty.clone(), size);
                if let Some(e) = init {
                    if matches!(ty, Type::Array(..) | Type::Struct(_)) {
                        return cerr(*line, "aggregate initializers are not supported");
                    }
                    self.gen_expr(cx, e)?;
                    let op = if ty.is_byte() { "store.b" } else { "store.q" };
                    let _ = writeln!(cx.body, "  {op} [fp + {off}], r0");
                }
                Ok(())
            }
            Stmt::Expr(e) => {
                self.gen_expr(cx, e)?;
                Ok(())
            }
            Stmt::If { cond, then, els } => {
                let lelse = self.fresh("else");
                let lend = self.fresh("endif");
                self.gen_cond_jump_false(cx, cond, &lelse)?;
                self.gen_stmts(cx, then)?;
                if els.is_empty() {
                    let _ = writeln!(cx.body, "{lelse}:");
                } else {
                    let _ = writeln!(cx.body, "  jmp {lend}");
                    let _ = writeln!(cx.body, "{lelse}:");
                    self.gen_stmts(cx, els)?;
                    let _ = writeln!(cx.body, "{lend}:");
                }
                Ok(())
            }
            Stmt::While { cond, body } => {
                let lcond = self.fresh("while");
                let lend = self.fresh("wend");
                let _ = writeln!(cx.body, "{lcond}:");
                self.gen_cond_jump_false(cx, cond, &lend)?;
                cx.break_labels.push(lend.clone());
                cx.continue_labels.push(lcond.clone());
                self.gen_stmts(cx, body)?;
                cx.break_labels.pop();
                cx.continue_labels.pop();
                let _ = writeln!(cx.body, "  jmp {lcond}");
                let _ = writeln!(cx.body, "{lend}:");
                Ok(())
            }
            Stmt::For {
                init,
                cond,
                post,
                body,
            } => {
                cx.scopes.push(HashMap::new());
                if let Some(i) = init {
                    self.gen_stmt(cx, i)?;
                }
                let lcond = self.fresh("for");
                let lpost = self.fresh("fpost");
                let lend = self.fresh("fend");
                let _ = writeln!(cx.body, "{lcond}:");
                if let Some(c) = cond {
                    self.gen_cond_jump_false(cx, c, &lend)?;
                }
                cx.break_labels.push(lend.clone());
                cx.continue_labels.push(lpost.clone());
                self.gen_stmts(cx, body)?;
                cx.break_labels.pop();
                cx.continue_labels.pop();
                let _ = writeln!(cx.body, "{lpost}:");
                if let Some(p) = post {
                    self.gen_expr(cx, p)?;
                }
                let _ = writeln!(cx.body, "  jmp {lcond}");
                let _ = writeln!(cx.body, "{lend}:");
                cx.scopes.pop();
                Ok(())
            }
            Stmt::Return(value, _) => {
                if let Some(e) = value {
                    self.gen_expr(cx, e)?;
                } else {
                    cx.body.push_str("  mov r0, 0\n");
                }
                cx.body.push_str("  mov sp, fp\n  pop fp\n  ret\n");
                Ok(())
            }
            Stmt::Break(line) => match cx.break_labels.last() {
                Some(l) => {
                    let _ = writeln!(cx.body, "  jmp {l}");
                    Ok(())
                }
                None => cerr(*line, "break outside a loop"),
            },
            Stmt::Continue(line) => match cx.continue_labels.last() {
                Some(l) => {
                    let _ = writeln!(cx.body, "  jmp {l}");
                    Ok(())
                }
                None => cerr(*line, "continue outside a loop"),
            },
            Stmt::Block(b) => self.gen_stmts(cx, b),
        }
    }

    /// Emits `cond`, jumping to `target` when it is zero.
    fn gen_cond_jump_false(
        &mut self,
        cx: &mut FuncCtx,
        cond: &Expr,
        target: &str,
    ) -> Result<(), CError> {
        self.gen_expr(cx, cond)?;
        let _ = writeln!(cx.body, "  cmp r0, 0\n  je {target}");
        Ok(())
    }

    /// Emits code leaving the expression's *value* in `r0`. Arrays decay to
    /// element pointers; struct values are rejected.
    fn gen_expr(&mut self, cx: &mut FuncCtx, e: &Expr) -> Result<Type, CError> {
        match e {
            Expr::Int(v) => {
                let _ = writeln!(cx.body, "  mov r0, {}", *v as u64);
                Ok(Type::Int)
            }
            Expr::Str(bytes) => {
                let label = self.intern_string(bytes);
                let _ = writeln!(cx.body, "  mov r0, {label}");
                Ok(Type::Char.ptr())
            }
            Expr::Ident(name, line) => {
                if let Some((off, ty)) = cx.lookup(name) {
                    match ty {
                        Type::Array(el, _) => {
                            let _ = writeln!(cx.body, "  mov r0, fp\n  add r0, {off}");
                            Ok(el.clone().ptr())
                        }
                        Type::Struct(_) => cerr(*line, format!("`{name}` is a struct value")),
                        ty => {
                            let op = if ty.is_byte() { "load.b" } else { "load.q" };
                            let _ = writeln!(cx.body, "  {op} r0, [fp + {off}]");
                            Ok(ty)
                        }
                    }
                } else if let Some(ty) = self.globals.get(name).cloned() {
                    self.used_globals.insert(name.clone());
                    match ty {
                        Type::Array(el, _) => {
                            let _ = writeln!(cx.body, "  mov r0, {name}");
                            Ok(el.clone().ptr())
                        }
                        Type::Struct(_) => cerr(*line, format!("`{name}` is a struct value")),
                        ty => {
                            let op = if ty.is_byte() { "load.b" } else { "load.q" };
                            let _ = writeln!(cx.body, "  mov r0, {name}\n  {op} r0, [r0]");
                            Ok(ty)
                        }
                    }
                } else {
                    cerr(*line, format!("undefined variable `{name}`"))
                }
            }
            Expr::Unary(op, inner, line) => self.gen_unary(cx, *op, inner, *line),
            Expr::Binary(op, l, r, line) => self.gen_binary(cx, *op, l, r, *line),
            Expr::Assign(lhs, rhs, line) => {
                // Fast path: plain local scalar.
                if let Expr::Ident(name, _) = &**lhs {
                    if let Some((off, ty)) = cx.lookup(name) {
                        if !matches!(ty, Type::Array(..) | Type::Struct(_)) {
                            let rt = self.gen_expr(cx, rhs)?;
                            self.check_assignable(&ty, &rt, *line)?;
                            let op = if ty.is_byte() { "store.b" } else { "store.q" };
                            let _ = writeln!(cx.body, "  {op} [fp + {off}], r0");
                            return Ok(ty);
                        }
                    }
                }
                let lty = self.gen_addr(cx, lhs)?;
                if matches!(lty, Type::Array(..) | Type::Struct(_)) {
                    return cerr(*line, "cannot assign to an aggregate");
                }
                cx.body.push_str("  push r0\n");
                let rt = self.gen_expr(cx, rhs)?;
                self.check_assignable(&lty, &rt, *line)?;
                cx.body.push_str("  pop r10\n");
                let op = if lty.is_byte() { "store.b" } else { "store.q" };
                let _ = writeln!(cx.body, "  {op} [r10], r0");
                Ok(lty)
            }
            Expr::Call(name, args, line) => {
                let sig = self.sigs.get(name).cloned().ok_or_else(|| CError {
                    line: *line,
                    msg: format!("call to undefined function `{name}`"),
                })?;
                if sig.params.len() != args.len() {
                    return cerr(
                        *line,
                        format!(
                            "`{name}` expects {} arguments, got {}",
                            sig.params.len(),
                            args.len()
                        ),
                    );
                }
                for a in args.iter().rev() {
                    self.gen_expr(cx, a)?;
                    cx.body.push_str("  push r0\n");
                }
                let _ = writeln!(cx.body, "  call {name}");
                if !args.is_empty() {
                    let _ = writeln!(cx.body, "  add sp, {}", 8 * args.len());
                }
                Ok(sig.ret)
            }
            Expr::Index(..) | Expr::Member(..) => {
                let ty = self.gen_addr(cx, e)?;
                self.load_from_addr(cx, &ty, expr_line(e))
            }
            Expr::SizeofType(t) => {
                let _ = writeln!(cx.body, "  mov r0, {}", t.size(&self.program.structs));
                Ok(Type::Int)
            }
            Expr::Cast(ty, inner) => {
                self.gen_expr(cx, inner)?;
                if ty.is_byte() {
                    cx.body.push_str("  and r0, 255\n");
                }
                Ok(ty.clone())
            }
        }
    }

    /// After `gen_addr` left an address in `r0`, loads the value (decaying
    /// arrays and faulting on struct values).
    fn load_from_addr(&mut self, cx: &mut FuncCtx, ty: &Type, line: usize) -> Result<Type, CError> {
        match ty {
            Type::Array(el, _) => Ok(el.clone().ptr()),
            Type::Struct(_) => cerr(line, "cannot use a struct as a value"),
            t => {
                let op = if t.is_byte() { "load.b" } else { "load.q" };
                let _ = writeln!(cx.body, "  {op} r0, [r0]");
                Ok(t.clone())
            }
        }
    }

    fn gen_unary(
        &mut self,
        cx: &mut FuncCtx,
        op: UnOp,
        inner: &Expr,
        line: usize,
    ) -> Result<Type, CError> {
        match op {
            UnOp::Neg => {
                self.gen_expr(cx, inner)?;
                cx.body.push_str("  neg r0\n");
                Ok(Type::Int)
            }
            UnOp::BitNot => {
                self.gen_expr(cx, inner)?;
                cx.body.push_str("  not r0\n");
                Ok(Type::Int)
            }
            UnOp::LogNot => {
                self.gen_expr(cx, inner)?;
                let l = self.fresh("lnot");
                let _ = writeln!(
                    cx.body,
                    "  cmp r0, 0\n  mov r0, 1\n  je {l}\n  mov r0, 0\n{l}:"
                );
                Ok(Type::Int)
            }
            UnOp::Deref => {
                let t = self.gen_expr(cx, inner)?;
                let Some(pointee) = t.pointee().cloned() else {
                    return cerr(line, format!("cannot dereference non-pointer `{t}`"));
                };
                self.load_from_addr(cx, &pointee, line)
            }
            UnOp::AddrOf => {
                let t = self.gen_addr(cx, inner)?;
                let inner_ty = match t {
                    Type::Array(el, _) => *el,
                    other => other,
                };
                Ok(inner_ty.ptr())
            }
        }
    }

    fn gen_binary(
        &mut self,
        cx: &mut FuncCtx,
        op: BinOp,
        l: &Expr,
        r: &Expr,
        line: usize,
    ) -> Result<Type, CError> {
        // Short-circuit forms first.
        if op == BinOp::LogAnd || op == BinOp::LogOr {
            let lfalse = self.fresh("sc");
            let lend = self.fresh("scend");
            self.gen_expr(cx, l)?;
            if op == BinOp::LogAnd {
                let _ = writeln!(cx.body, "  cmp r0, 0\n  je {lfalse}");
                self.gen_expr(cx, r)?;
                let _ = writeln!(cx.body, "  cmp r0, 0\n  je {lfalse}");
                let _ = writeln!(cx.body, "  mov r0, 1\n  jmp {lend}");
                let _ = writeln!(cx.body, "{lfalse}:\n  mov r0, 0\n{lend}:");
            } else {
                let _ = writeln!(cx.body, "  cmp r0, 0\n  jne {lfalse}");
                self.gen_expr(cx, r)?;
                let _ = writeln!(cx.body, "  cmp r0, 0\n  jne {lfalse}");
                let _ = writeln!(cx.body, "  mov r0, 0\n  jmp {lend}");
                let _ = writeln!(cx.body, "{lfalse}:\n  mov r0, 1\n{lend}:");
            }
            return Ok(Type::Int);
        }

        let lt = self.gen_expr(cx, l)?;
        cx.body.push_str("  push r0\n");
        let rt = self.gen_expr(cx, r)?;
        cx.body.push_str("  mov r10, r0\n  pop r0\n");

        let elem_size = |t: &Type| -> u64 {
            t.pointee()
                .map(|p| p.size(&self.program.structs).max(1))
                .unwrap_or(1)
        };

        match op {
            BinOp::Add => {
                if lt.is_pointer_like() && !rt.is_pointer_like() {
                    let s = elem_size(&lt);
                    if s > 1 {
                        let _ = writeln!(cx.body, "  mul r10, {s}");
                    }
                    cx.body.push_str("  add r0, r10\n");
                    Ok(decay(lt))
                } else if rt.is_pointer_like() && !lt.is_pointer_like() {
                    let s = elem_size(&rt);
                    if s > 1 {
                        let _ = writeln!(cx.body, "  mul r0, {s}");
                    }
                    cx.body.push_str("  add r0, r10\n");
                    Ok(decay(rt))
                } else if lt.is_pointer_like() && rt.is_pointer_like() {
                    cerr(line, "cannot add two pointers")
                } else {
                    cx.body.push_str("  add r0, r10\n");
                    Ok(Type::Int)
                }
            }
            BinOp::Sub => {
                if lt.is_pointer_like() && rt.is_pointer_like() {
                    let s = elem_size(&lt);
                    cx.body.push_str("  sub r0, r10\n");
                    if s > 1 {
                        let _ = writeln!(cx.body, "  div r0, {s}");
                    }
                    Ok(Type::Int)
                } else if lt.is_pointer_like() {
                    let s = elem_size(&lt);
                    if s > 1 {
                        let _ = writeln!(cx.body, "  mul r10, {s}");
                    }
                    cx.body.push_str("  sub r0, r10\n");
                    Ok(decay(lt))
                } else {
                    cx.body.push_str("  sub r0, r10\n");
                    Ok(Type::Int)
                }
            }
            BinOp::Mul
            | BinOp::Div
            | BinOp::Mod
            | BinOp::And
            | BinOp::Or
            | BinOp::Xor
            | BinOp::Shl
            | BinOp::Shr => {
                let m = match op {
                    BinOp::Mul => "mul",
                    BinOp::Div => "div",
                    BinOp::Mod => "mod",
                    BinOp::And => "and",
                    BinOp::Or => "or",
                    BinOp::Xor => "xor",
                    BinOp::Shl => "shl",
                    _ => "sar", // Arithmetic shift: ints are signed.
                };
                let _ = writeln!(cx.body, "  {m} r0, r10");
                Ok(Type::Int)
            }
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                // Pointers compare unsigned; ints compare signed.
                let unsigned = lt.is_pointer_like() || rt.is_pointer_like();
                let jcc = match (op, unsigned) {
                    (BinOp::Eq, _) => "je",
                    (BinOp::Ne, _) => "jne",
                    (BinOp::Lt, false) => "jl",
                    (BinOp::Le, false) => "jle",
                    (BinOp::Gt, false) => "jg",
                    (BinOp::Ge, false) => "jge",
                    (BinOp::Lt, true) => "jb",
                    (BinOp::Le, true) => "jbe",
                    (BinOp::Gt, true) => "ja",
                    (BinOp::Ge, true) => "jae",
                    _ => unreachable!("comparison ops only"),
                };
                let l1 = self.fresh("cmp");
                let _ = writeln!(
                    cx.body,
                    "  cmp r0, r10\n  mov r0, 1\n  {jcc} {l1}\n  mov r0, 0\n{l1}:"
                );
                Ok(Type::Int)
            }
            BinOp::LogAnd | BinOp::LogOr => unreachable!("handled above"),
        }
    }

    /// Emits code leaving an *address* in `r0`; returns the type of the
    /// object at that address (arrays/structs stay as such).
    fn gen_addr(&mut self, cx: &mut FuncCtx, e: &Expr) -> Result<Type, CError> {
        match e {
            Expr::Ident(name, line) => {
                if let Some((off, ty)) = cx.lookup(name) {
                    let _ = writeln!(cx.body, "  mov r0, fp\n  add r0, {off}");
                    Ok(ty)
                } else if let Some(ty) = self.globals.get(name).cloned() {
                    self.used_globals.insert(name.clone());
                    let _ = writeln!(cx.body, "  mov r0, {name}");
                    Ok(ty)
                } else {
                    cerr(*line, format!("undefined variable `{name}`"))
                }
            }
            Expr::Unary(UnOp::Deref, inner, line) => {
                let t = self.gen_expr(cx, inner)?;
                match t.pointee() {
                    Some(p) => Ok(p.clone()),
                    None => cerr(*line, format!("cannot dereference non-pointer `{t}`")),
                }
            }
            Expr::Index(base, idx, line) => {
                let bt = self.gen_expr(cx, base)?;
                let Some(elem) = bt.pointee().cloned() else {
                    return cerr(*line, format!("cannot index non-pointer `{bt}`"));
                };
                cx.body.push_str("  push r0\n");
                self.gen_expr(cx, idx)?;
                let s = elem.size(&self.program.structs).max(1);
                if s > 1 {
                    let _ = writeln!(cx.body, "  mul r0, {s}");
                }
                cx.body.push_str("  pop r10\n  add r0, r10\n");
                Ok(elem)
            }
            Expr::Member(base, field, arrow, line) => {
                let bt = if *arrow {
                    let t = self.gen_expr(cx, base)?;
                    match t {
                        Type::Ptr(inner) => *inner,
                        other => {
                            return cerr(*line, format!("`->` on non-pointer `{other}`"));
                        }
                    }
                } else {
                    self.gen_addr(cx, base)?
                };
                let Type::Struct(sname) = &bt else {
                    return cerr(*line, format!("member access on non-struct `{bt}`"));
                };
                let sdef = self.program.structs.get(sname).ok_or_else(|| CError {
                    line: *line,
                    msg: format!("undefined struct `{sname}`"),
                })?;
                let Some((fty, off)) = sdef.field(field) else {
                    return cerr(*line, format!("struct `{sname}` has no field `{field}`"));
                };
                if off > 0 {
                    let _ = writeln!(cx.body, "  add r0, {off}");
                }
                Ok(fty.clone())
            }
            Expr::Str(bytes) => {
                let label = self.intern_string(bytes);
                let _ = writeln!(cx.body, "  mov r0, {label}");
                Ok(Type::Array(Box::new(Type::Char), bytes.len() + 1))
            }
            other => cerr(expr_line(other), "expression is not an lvalue".to_string()),
        }
    }

    fn check_assignable(&self, _lhs: &Type, _rhs: &Type, _line: usize) -> Result<(), CError> {
        // Mini-C keeps C's permissive int/pointer interconversion; the type
        // information exists for widths and scaling, not for safety (the
        // isolation story is the virtine boundary, not the type system).
        Ok(())
    }

    fn emit_data(&mut self) -> Result<(), CError> {
        let globals: Vec<&Global> = self
            .program
            .globals
            .iter()
            .filter(|g| self.used_globals.contains(&g.name))
            .collect();
        for g in globals {
            let size = g.ty.size(&self.program.structs);
            self.data.push_str("  .align 8\n");
            match &g.init {
                GlobalInit::Zero => {
                    let _ = writeln!(self.data, "{}: .space {}", g.name, size);
                }
                GlobalInit::Int(v) => {
                    let _ = writeln!(self.data, "{}: .dq {}", g.name, *v as u64);
                }
                GlobalInit::Str(s) if matches!(&g.ty, Type::Ptr(el) if el.is_byte()) => {
                    // `char* g = "...";` — the literal lives in its own
                    // blob, the global is a pointer to it.
                    let mut bytes = s.clone();
                    bytes.push(0);
                    let list: Vec<String> = bytes.iter().map(|b| b.to_string()).collect();
                    let _ = writeln!(self.data, "{}: .dq {}__lit", g.name, g.name);
                    let _ = writeln!(self.data, "{}__lit: .db {}", g.name, list.join(", "));
                }
                GlobalInit::Str(s) => {
                    let Type::Array(el, n) = &g.ty else {
                        return cerr(0, format!("string initializer on non-array `{}`", g.name));
                    };
                    if !el.is_byte() {
                        return cerr(
                            0,
                            format!("string initializer on non-char array `{}`", g.name),
                        );
                    }
                    if s.len() + 1 > *n {
                        return cerr(0, format!("string too long for `{}`", g.name));
                    }
                    let mut bytes = s.clone();
                    bytes.resize(*n, 0);
                    let list: Vec<String> = bytes.iter().map(|b| b.to_string()).collect();
                    let _ = writeln!(self.data, "{}: .db {}", g.name, list.join(", "));
                }
                GlobalInit::List(items) => {
                    let Type::Array(el, n) = &g.ty else {
                        return cerr(0, format!("list initializer on non-array `{}`", g.name));
                    };
                    if items.len() > *n {
                        return cerr(0, format!("too many initializers for `{}`", g.name));
                    }
                    let mut vals = items.clone();
                    vals.resize(*n, 0);
                    let dir = if el.is_byte() { ".db" } else { ".dq" };
                    let list: Vec<String> = vals.iter().map(|v| (*v as u64).to_string()).collect();
                    let _ = writeln!(self.data, "{}: {dir} {}", g.name, list.join(", "));
                }
            }
        }
        for (label, bytes) in &self.strings {
            let mut with_nul = bytes.clone();
            with_nul.push(0);
            let list: Vec<String> = with_nul.iter().map(|b| b.to_string()).collect();
            let _ = writeln!(self.data, "{label}: .db {}", list.join(", "));
        }
        Ok(())
    }
}

fn decay(t: Type) -> Type {
    match t {
        Type::Array(el, _) => el.ptr(),
        other => other,
    }
}

fn expr_line(e: &Expr) -> usize {
    match e {
        Expr::Ident(_, l)
        | Expr::Unary(_, _, l)
        | Expr::Binary(_, _, _, l)
        | Expr::Assign(_, _, l)
        | Expr::Call(_, _, l)
        | Expr::Index(_, _, l)
        | Expr::Member(_, _, _, l) => *l,
        Expr::Cast(_, inner) => expr_line(inner),
        Expr::Int(_) | Expr::Str(_) | Expr::SizeofType(_) => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    fn gen(src: &str, root: &str) -> GenOutput {
        let p = parse(src).expect("parse");
        generate(&p, &[root]).expect("generate")
    }

    #[test]
    fn call_graph_prunes_unreachable_functions() {
        let src = "
int helper(int x) { return x + 1; }
int unused(int x) { return x * 2; }
int root(int a) { return helper(a); }
";
        let out = gen(src, "root");
        assert!(out.reachable.contains("root"));
        assert!(out.reachable.contains("helper"));
        assert!(!out.reachable.contains("unused"));
        assert!(!out.text.contains("unused:"));
    }

    #[test]
    fn unused_globals_are_pruned() {
        let src = "
int used_g = 7;
int unused_g = 9;
int root() { return used_g; }
";
        let out = gen(src, "root");
        assert!(out.data.contains("used_g:"));
        assert!(!out.data.contains("unused_g:"));
    }

    #[test]
    fn protos_become_externs() {
        let src = "
int hypercall(int nr, int a, int b, int c);
int root() { return hypercall(0, 1, 2, 3); }
";
        let out = gen(src, "root");
        assert!(out.externs.contains("hypercall"));
        assert!(out.text.contains("call hypercall"));
    }

    #[test]
    fn undefined_call_is_an_error() {
        let p = parse("int root() { return nope(); }").unwrap();
        assert!(generate(&p, &["root"]).is_err());
    }

    #[test]
    fn string_literals_are_interned_and_deduplicated() {
        let src = r#"
int strlen(char* s) { int n = 0; while (s[n]) n = n + 1; return n; }
int root() { return strlen("abc") + strlen("abc") + strlen("xy"); }
"#;
        let out = gen(src, "root");
        let count = out.data.matches("__str").count();
        assert_eq!(count, 2, "expected 2 interned strings:\n{}", out.data);
    }

    #[test]
    fn arity_mismatch_is_an_error() {
        let p = parse("int f(int a) { return a; } int root() { return f(1, 2); }").unwrap();
        let e = generate(&p, &["root"]).unwrap_err();
        assert!(e.msg.contains("expects 1 arguments"));
    }

    #[test]
    fn break_outside_loop_is_an_error() {
        let p = parse("int root() { break; return 0; }").unwrap();
        assert!(generate(&p, &["root"]).is_err());
    }

    #[test]
    fn generated_text_assembles() {
        let src = r#"
int g = 41;
int add(int a, int b) { return a + b; }
int root(int n) {
    char buf[8];
    buf[0] = 'x';
    int i;
    int acc = 0;
    for (i = 0; i < n; i = i + 1) {
        acc = acc + add(i, g) + buf[0];
    }
    return acc;
}
"#;
        let out = gen(src, "root");
        let full = format!(".org 0x8000\n{}\n{}\n", out.text, out.data);
        visa::assemble(&full).expect("generated code must assemble");
    }
}
