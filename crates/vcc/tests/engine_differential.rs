//! Differential tests over `vcc`-compiled programs: every compiled virtine
//! must behave byte- and cycle-identically on the fast and reference
//! interpreter engines.
//!
//! These complement the random-stream tests in `visa/tests/differential.rs`
//! with real compiler output — prologue push sequences, `cmp`+`jcc` pairs,
//! constant-operand ALU patterns, recursion, loops, and hypercall I/O —
//! exactly the shapes the predecoder fuses.

use vcc::{compile, marshal_args};
use visa::diff;

/// Compiles `src`, then runs each virtine on both engines with marshalled
/// `args` and seeded hypercall responses, demanding identity.
fn diff_all(src: &str, args: &[i64]) {
    let unit = compile(src).expect("compile");
    assert!(!unit.virtines.is_empty());
    for v in &unit.virtines {
        let prewrites = vec![(wasp::ARGS_ADDR, marshal_args(args))];
        if let Err(report) = diff::compare_with(&v.image, v.mem_size, 5_000_000, 0xC0DE, &prewrites)
        {
            panic!("virtine `{}` diverged:\n{report}", v.name);
        }
    }
}

#[test]
fn fib_is_engine_identical() {
    // The paper's flagship example (Figure 9): deep recursion, call/ret,
    // stack traffic, cmp+jcc fusion.
    let src = "
virtine int fib(int n) {
    if (n < 2) return n;
    return fib(n - 1) + fib(n - 2);
}
";
    for n in [0, 1, 2, 10, 15] {
        diff_all(src, &[n]);
    }
}

#[test]
fn arithmetic_mix_is_engine_identical() {
    // mul/div/mod in a loop: the non-uniform-cost ALU classes.
    let src = "
virtine int mix(int n) {
    int acc = 7;
    int i = 1;
    while (i < n) {
        acc = acc * 3 + i;
        acc = acc / 2;
        acc = acc % 100000;
        i = i + 1;
    }
    return acc;
}
";
    diff_all(src, &[500]);
}

#[test]
fn memory_traffic_is_engine_identical() {
    // Array writes and reads: load/store through computed addresses.
    let src = "
virtine int sums(int n) {
    int buf[64];
    int i = 0;
    while (i < 64) {
        buf[i] = i * i + n;
        i = i + 1;
    }
    int acc = 0;
    for (i = 0; i < 64; i = i + 1) {
        acc = acc + buf[i];
    }
    return acc;
}
";
    diff_all(src, &[3]);
}

#[test]
fn string_routines_are_engine_identical() {
    // The in-guest libc: itoa/strlen byte loops.
    let src = "
virtine int fmt(int n) {
    char msg[24];
    itoa(n, msg);
    return strlen(msg);
}
";
    diff_all(src, &[-1234567]);
}

#[test]
fn hypercall_io_is_engine_identical() {
    // vchan wrappers drive `in`/`out` hypercalls; the harness answers both
    // engines with identical seeded values, so even nonsense responses must
    // produce identical guest behaviour.
    let src = r#"
virtine_config(chans) int pipe_echo(int n) {
    int h = vchan_open(64);
    if (h < 0) return 0 - 1;
    char msg[16];
    itoa(n, msg);
    int len = strlen(msg);
    if (vchan_send(h, msg, len) != len) return 0 - 2;
    char back[16];
    int got = vchan_tryrecv(h, back, 16);
    return got;
}
"#;
    diff_all(src, &[42]);
}
