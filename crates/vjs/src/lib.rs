//! # vjs — "Duktide", the embeddable JS-subset engine (§6.5)
//!
//! The paper's managed-language study embeds the Duktape JavaScript engine
//! in a virtine: allocate an engine context, populate native function
//! bindings, run a function that base64-encodes a buffer, tear the engine
//! down — then peel those phases off the critical path with virtine
//! snapshotting ("Virtine + Snapshot") and shell recycling ("NT", no
//! teardown).
//!
//! Duktide is that engine rebuilt in mini-C and compiled by `vcc` into a
//! virtine image that uses exactly the paper's three-hypercall co-design:
//! `snapshot()` after engine initialization, `get_data()` for the input
//! buffer, `return_data()` for the result (§6.5: "by co-designing the
//! hypervisor and the virtine … we limit the attack surface").
//!
//! The engine executes single-builtin handler functions of the form
//! `function handler(d) { return base64(d); }` with builtins `base64`,
//! `upper`, and `identity` — the paper's workload is the base64 one.
//! [`reference_eval`] provides the host-side semantics oracle.

pub mod study;

use vcc::{compile_raw, CompileOptions, CompiledVirtine};

/// Maximum input size per invocation.
pub const MAX_DATA: usize = 64 * 1024;

/// The paper's workload function (§6.5).
pub const BASE64_HANDLER: &str = "function handler(d) { return base64(d); }";

/// Generates the Duktide engine translation unit.
///
/// `js_source` is the registered handler; `teardown` controls whether the
/// engine frees its context on exit (`false` reproduces the "NT" bars of
/// Figure 14).
pub fn engine_c_source(js_source: &str, teardown: bool) -> String {
    // Mini-C string literals share the lexer's escapes; reject exotic input
    // rather than emit broken source.
    assert!(
        js_source
            .chars()
            .all(|c| c.is_ascii() && c != '"' && c != '\\' && c != '\n'),
        "JS source must be plain ASCII without quotes/backslashes"
    );
    let teardown_flag = i64::from(teardown);

    format!(
        r#"
struct binding {{
    char name[16];
    int id;
}};

struct jsctx {{
    struct binding* bindings;
    int nbindings;
    char** allocs;
    int nallocs;
}};

char* JS_SOURCE = "{js_source}";
int DO_TEARDOWN = {teardown_flag};

char* ctx_alloc(struct jsctx* ctx, int n) {{
    char* p = malloc(n);
    ctx->allocs[ctx->nallocs] = p;
    ctx->nallocs = ctx->nallocs + 1;
    return p;
}}

/* Duktape-style context creation: a burst of small allocations for the
   built-in object table ("several sources, including ... the overhead to
   allocate and later free the Duktape context", paper section 6.5). */
struct jsctx* js_create() {{
    struct jsctx* ctx = (struct jsctx*)malloc(sizeof(struct jsctx));
    if (ctx == 0) vexit(8);
    ctx->allocs = (char**)malloc(8 * 512);
    ctx->nallocs = 0;
    int i;
    for (i = 0; i < 192; i = i + 1) {{
        char* obj = ctx_alloc(ctx, 64);
        memset(obj, i & 255, 64);
    }}
    ctx->bindings = (struct binding*)ctx_alloc(ctx, sizeof(struct binding) * 16);
    ctx->nbindings = 0;
    return ctx;
}}

void js_bind(struct jsctx* ctx, char* name, int id) {{
    struct binding* b = ctx->bindings + ctx->nbindings;
    strcpy(b->name, name);
    b->id = id;
    ctx->nbindings = ctx->nbindings + 1;
}}

int js_lookup(struct jsctx* ctx, char* name, int len) {{
    int i;
    for (i = 0; i < ctx->nbindings; i = i + 1) {{
        struct binding* b = ctx->bindings + i;
        if (strncmp(b->name, name, len) == 0 && b->name[len] == 0) {{
            return b->id;
        }}
    }}
    return -1;
}}

/* Tears the context down: walk every allocation and scrub it, as a
   freeing allocator would. Skipped under the NT optimization. */
void js_destroy(struct jsctx* ctx) {{
    int i;
    for (i = 0; i < ctx->nallocs; i = i + 1) {{
        memset(ctx->allocs[i], 0, 64);
        free(ctx->allocs[i]);
    }}
    free((char*)ctx);
}}

int is_ident(int c) {{
    if (c >= 'a' && c <= 'z') return 1;
    if (c >= 'A' && c <= 'Z') return 1;
    if (c >= '0' && c <= '9') return 1;
    if (c == '_') return 1;
    return 0;
}}

/* Parses `function name(arg) {{ return builtin(arg); }}`, returning the
   builtin's binding id. A real engine tokenizes everything; so do we. */
int js_parse(struct jsctx* ctx, char* src) {{
    int n = strlen(src);
    int i = 0;
    /* Scan for the `return` keyword token. */
    while (i < n) {{
        if (src[i] == 'r' && strncmp(src + i, "return", 6) == 0) {{
            i = i + 6;
            while (i < n && src[i] == ' ') i = i + 1;
            int start = i;
            while (i < n && is_ident(src[i])) i = i + 1;
            if (i >= n) return -1;
            if (src[i] != '(') return -1;
            return js_lookup(ctx, src + start, i - start);
        }}
        i = i + 1;
    }}
    return -1;
}}

int js_apply(int fnid, char* data, int n, char* out) {{
    int i;
    if (fnid == 1) {{
        return base64_encode(data, n, out);
    }}
    if (fnid == 2) {{
        memcpy(out, data, n);
        return n;
    }}
    if (fnid == 3) {{
        for (i = 0; i < n; i = i + 1) {{
            int c = data[i];
            if (c >= 'a' && c <= 'z') {{
                c = c - 32;
            }}
            out[i] = c;
        }}
        return n;
    }}
    return 0;
}}

int js_main() {{
    struct jsctx* ctx = js_create();
    js_bind(ctx, "base64", 1);
    js_bind(ctx, "identity", 2);
    js_bind(ctx, "upper", 3);
    /* The co-designed snapshot point: engine allocated and bound, no
       per-invocation state yet (Figure 7 / section 6.5). */
    vsnapshot();
    char* data = malloc({max_data});
    int n = vget_data(data, {max_data});
    int fnid = js_parse(ctx, JS_SOURCE);
    if (fnid < 0) {{
        vexit(9);
    }}
    char* out = malloc({max_data} * 2 + 8);
    int m = js_apply(fnid, data, n, out);
    vreturn_data(out, m);
    if (DO_TEARDOWN) {{
        js_destroy(ctx);
    }}
    vexit(0);
    return 0;
}}
"#,
        max_data = MAX_DATA
    )
}

/// Compiles a Duktide engine image for the given handler source.
pub fn compile_engine(js_source: &str, teardown: bool) -> Result<CompiledVirtine, vcc::CError> {
    let opts = CompileOptions {
        mem_size: 1024 * 1024,
        image_budget: 128 * 1024,
    };
    compile_raw(&engine_c_source(js_source, teardown), "js_main", &opts)
}

/// Host-side reference for what a handler must produce (the test oracle).
pub fn reference_eval(js_source: &str, data: &[u8]) -> Option<Vec<u8>> {
    let builtin = js_source
        .split("return")
        .nth(1)?
        .trim_start()
        .split('(')
        .next()?
        .trim();
    match builtin {
        "base64" => Some(base64_ref(data)),
        "identity" => Some(data.to_vec()),
        "upper" => Some(data.iter().map(|b| b.to_ascii_uppercase()).collect()),
        _ => None,
    }
}

/// Plain base64 (RFC 4648, with padding) reference.
pub fn base64_ref(data: &[u8]) -> Vec<u8> {
    const TAB: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";
    let mut out = Vec::with_capacity(data.len().div_ceil(3) * 4);
    for chunk in data.chunks(3) {
        let b = [
            chunk[0],
            chunk.get(1).copied().unwrap_or(0),
            chunk.get(2).copied().unwrap_or(0),
        ];
        out.push(TAB[(b[0] >> 2) as usize]);
        out.push(TAB[(((b[0] << 4) | (b[1] >> 4)) & 63) as usize]);
        if chunk.len() > 1 {
            out.push(TAB[(((b[1] << 2) | (b[2] >> 6)) & 63) as usize]);
        } else {
            out.push(b'=');
        }
        if chunk.len() > 2 {
            out.push(TAB[(b[2] & 63) as usize]);
        } else {
            out.push(b'=');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use wasp::{ExitKind, HypercallMask, Invocation, VirtineSpec, Wasp};

    fn run_engine(js: &str, teardown: bool, data: &[u8]) -> (ExitKind, Vec<u8>) {
        let v = compile_engine(js, teardown).expect("compile engine");
        let wasp = Wasp::new_kvm_default();
        let spec = VirtineSpec::new("js", v.image.clone(), v.mem_size).with_policy(
            HypercallMask::allowing(&[wasp::nr::GET_DATA, wasp::nr::RETURN_DATA]),
        );
        let id = wasp.register(spec).unwrap();
        let out = wasp
            .run(id, &[], Invocation::with_payload(data.to_vec()))
            .unwrap();
        (out.exit, out.invocation.result)
    }

    #[test]
    fn base64_handler_matches_reference() {
        let data = b"Many hands make light work.";
        let (exit, result) = run_engine(BASE64_HANDLER, true, data);
        assert!(matches!(exit, ExitKind::Exited(0)), "{exit:?}");
        assert_eq!(result, base64_ref(data));
        assert_eq!(result, b"TWFueSBoYW5kcyBtYWtlIGxpZ2h0IHdvcmsu".to_vec());
    }

    #[test]
    fn other_builtins_dispatch() {
        let (exit, result) = run_engine(
            "function handler(d) { return upper(d); }",
            true,
            b"virtines are tiny vms",
        );
        assert!(matches!(exit, ExitKind::Exited(0)), "{exit:?}");
        assert_eq!(result, b"VIRTINES ARE TINY VMS".to_vec());

        let (exit, result) = run_engine(
            "function handler(d) { return identity(d); }",
            false,
            b"echo",
        );
        assert!(matches!(exit, ExitKind::Exited(0)), "{exit:?}");
        assert_eq!(result, b"echo".to_vec());
    }

    #[test]
    fn unknown_builtin_exits_with_error() {
        let (exit, _) = run_engine("function handler(d) { return evil(d); }", true, b"x");
        assert!(matches!(exit, ExitKind::Exited(9)), "{exit:?}");
    }

    #[test]
    fn reference_eval_agrees_with_itself() {
        assert_eq!(
            reference_eval(BASE64_HANDLER, b"Man"),
            Some(b"TWFu".to_vec())
        );
        assert_eq!(
            reference_eval("function handler(d) { return upper(d); }", b"ab"),
            Some(b"AB".to_vec())
        );
        assert_eq!(reference_eval("nonsense", b"x"), None);
    }

    #[test]
    fn snapshot_restores_preserve_engine_bindings() {
        // Two invocations: the second restores the post-init snapshot and
        // must still resolve bindings and produce correct output.
        let v = compile_engine(BASE64_HANDLER, false).unwrap();
        let wasp = Wasp::new_kvm_default();
        let spec = VirtineSpec::new("js", v.image.clone(), v.mem_size).with_policy(
            HypercallMask::allowing(&[wasp::nr::GET_DATA, wasp::nr::RETURN_DATA]),
        );
        let id = wasp.register(spec).unwrap();

        let a = wasp
            .run(id, &[], Invocation::with_payload(b"first".to_vec()))
            .unwrap();
        let b = wasp
            .run(id, &[], Invocation::with_payload(b"second!".to_vec()))
            .unwrap();
        assert!(!a.breakdown.restored_snapshot);
        assert!(b.breakdown.restored_snapshot);
        assert_eq!(a.invocation.result, base64_ref(b"first"));
        assert_eq!(b.invocation.result, base64_ref(b"second!"));
        assert!(
            b.breakdown.total < a.breakdown.total,
            "snapshot run must be faster: {} vs {}",
            b.breakdown.total,
            a.breakdown.total
        );
    }
}
