//! The Figure 14 study: JS virtine slowdown vs native under each
//! optimization combination.
//!
//! Five configurations, as in the paper:
//!
//! * **native** — the engine runs as ordinary host code (the baseline;
//!   the paper measures 419 µs);
//! * **virtine** — isolated, cold boot each invocation, full teardown;
//! * **virtine+snapshot** — restores the post-init checkpoint (≈2×
//!   overhead reduction in the paper);
//! * **virtine NT** — no teardown: the shell is discarded and wiped by the
//!   runtime instead ("since all virtines are cleared and reset after
//!   execution, paying the cost of tearing down the JavaScript engine can
//!   be avoided");
//! * **virtine+snapshot+NT** — both; the paper's best case drops *below*
//!   the native baseline (137 µs) because the engine allocation and free
//!   are both off the path.

use hostsim::HostKernel;
use kvmsim::Hypervisor;
use vclock::Clock;
use wasp::{HypercallMask, Invocation, NativeRunner, VirtineSpec, Wasp, WaspConfig};

use crate::{compile_engine, reference_eval, BASE64_HANDLER};

/// One bar of Figure 14.
#[derive(Debug, Clone)]
pub struct JsBar {
    /// Configuration name.
    pub name: &'static str,
    /// Mean invocation latency in microseconds (virtual time).
    pub micros: f64,
    /// Slowdown relative to the native baseline.
    pub slowdown: f64,
}

/// Runs the Figure 14 study with `iters` invocations per configuration on
/// `data_len` bytes of input.
pub fn run_js_study(iters: usize, data_len: usize) -> Vec<JsBar> {
    let data: Vec<u8> = (0..data_len).map(|i| (i % 251) as u8).collect();
    let expected = reference_eval(BASE64_HANDLER, &data).expect("reference");

    let engine_teardown = compile_engine(BASE64_HANDLER, true).expect("compile");
    let engine_nt = compile_engine(BASE64_HANDLER, false).expect("compile");
    let policy = HypercallMask::allowing(&[wasp::nr::GET_DATA, wasp::nr::RETURN_DATA]);

    // Native baseline: the same engine binary as ordinary code.
    let native_clock = Clock::new();
    let native = NativeRunner::new(HostKernel::new(native_clock.clone(), None));
    let t0 = native_clock.now();
    for _ in 0..iters {
        let out = native.run(
            &engine_teardown.image,
            engine_teardown.image.entry,
            &[],
            Invocation::with_payload(data.clone()),
            engine_teardown.mem_size,
        );
        assert!(
            matches!(out.exit, wasp::NativeExit::Exited(0)),
            "native engine failed: {:?}",
            out.exit
        );
        assert_eq!(out.invocation.result, expected);
    }
    let native_us = (native_clock.now() - t0).as_micros() / iters as f64;

    let mut bars = vec![JsBar {
        name: "native",
        micros: native_us,
        slowdown: 1.0,
    }];

    let configs: [(&'static str, &vcc::CompiledVirtine, bool); 4] = [
        ("virtine", &engine_teardown, false),
        ("virtine+snapshot", &engine_teardown, true),
        ("virtine NT", &engine_nt, false),
        ("virtine+snapshot+NT", &engine_nt, true),
    ];

    for (name, engine, snapshot) in configs {
        let clock = Clock::new();
        let wasp = Wasp::new(
            Hypervisor::kvm(HostKernel::new(clock.clone(), None)),
            WaspConfig::default(),
        );
        let spec = VirtineSpec::new(name, engine.image.clone(), engine.mem_size)
            .with_policy(policy)
            .with_snapshot(snapshot);
        let id = wasp.register(spec).expect("register");
        let t0 = clock.now();
        for _ in 0..iters {
            let out = wasp
                .run(id, &[], Invocation::with_payload(data.clone()))
                .expect("run");
            assert!(out.exit.is_normal(), "{name} failed: {:?}", out.exit);
            assert_eq!(out.invocation.result, expected, "{name} output mismatch");
        }
        let us = (clock.now() - t0).as_micros() / iters as f64;
        bars.push(JsBar {
            name,
            micros: us,
            slowdown: us / native_us,
        });
    }
    bars
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_14_ordering_holds() {
        let bars = run_js_study(4, 4096);
        let by_name = |n: &str| {
            bars.iter()
                .find(|b| b.name == n)
                .unwrap_or_else(|| panic!("missing bar {n}"))
        };
        let native = by_name("native");
        let plain = by_name("virtine");
        let snap = by_name("virtine+snapshot");
        let snap_nt = by_name("virtine+snapshot+NT");

        // Unoptimized virtines are slower than native (paper: 1.5–2x).
        assert!(
            plain.slowdown > 1.0,
            "plain virtine should be slower: {bars:?}"
        );
        // Snapshotting recovers a significant fraction of the overhead.
        assert!(snap.micros < plain.micros, "snapshot must help: {bars:?}");
        // The fully optimized configuration beats everything — including,
        // as in the paper (137 vs 419 µs), the native baseline, because
        // engine setup and teardown are entirely off the path.
        assert!(
            snap_nt.micros < snap.micros,
            "NT must help on top of snapshots: {bars:?}"
        );
        assert!(
            snap_nt.micros < native.micros,
            "snapshot+NT should dip below native: {bars:?}"
        );
    }
}
