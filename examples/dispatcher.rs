//! Multi-tenant dispatch through `vsched`: two tenants share a sharded
//! platform; one is rate-limited and shed at the door, the other rides
//! unaffected.
//!
//! ```sh
//! cargo run --release --example dispatcher
//! ```

use virtines::vsched::{Dispatcher, DispatcherConfig, Request, TenantProfile};
use virtines::wasp::{HypercallMask, VirtineSpec, Wasp};

fn main() {
    let mut d = Dispatcher::new(
        Wasp::new_kvm_default(),
        DispatcherConfig {
            shards: 4,
            ..DispatcherConfig::default()
        },
    );

    // The function: add 1 to the marshalled argument.
    let image =
        virtines::visa::assemble(".org 0x8000\n mov r1, 0\n load.q r0, [r1]\n add r0, 1\n hlt\n")
            .expect("assemble");
    let id = d
        .register(
            VirtineSpec::new("inc", image, 64 * 1024)
                .with_policy(HypercallMask::DENY_ALL)
                .with_snapshot(false),
        )
        .expect("register");

    let paid = d.add_tenant(TenantProfile::new("paid").with_priority(5));
    let trial = d.add_tenant(TenantProfile::new("free-trial").with_rate(100.0, 5.0));

    // 200 requests each over 100 ms: the trial tenant's bucket holds ~15.
    for i in 0..200u64 {
        let t = i as f64 * 0.0005;
        let _ = d.submit(Request::new(paid, id, t).with_args(i.to_le_bytes().to_vec()));
        let _ = d.submit(Request::new(trial, id, t).with_args(i.to_le_bytes().to_vec()));
    }
    d.run_to_idle();

    for c in d.completions().iter().take(3) {
        println!(
            "tenant {} on shard {}: latency {:.1} µs (reused shell: {})",
            c.tenant.index(),
            c.shard,
            c.latency() * 1e6,
            c.reused_shell,
        );
    }
    let (p, t) = (d.tenant_stats(paid), d.tenant_stats(trial));
    println!(
        "paid:       {}/{} served, {} shed",
        p.served,
        p.submitted,
        p.shed()
    );
    println!(
        "free-trial: {}/{} served, {} shed",
        t.served,
        t.submitted,
        t.shed()
    );
    let g = d.stats();
    println!(
        "pools:      {:?} (+ {} cross-shard steals)",
        d.pool_stats(),
        g.stolen
    );
    assert_eq!(p.shed(), 0, "paid tenant must never be shed");
    assert!(t.shed() > 0, "trial tenant must hit its rate limit");
}
