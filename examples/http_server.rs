//! The §6.3 scenario: a static-content HTTP server whose per-connection
//! handler runs in a virtine, compared with a native handler.
//!
//! Run with `cargo run --release --example http_server`.

use virtines::vclock::stats::Summary;
use virtines::vhttp::server::{run_server, ServerMode};

fn main() {
    println!("serving 50 requests for a 4KB file in each mode...\n");
    for mode in [
        ServerMode::Native,
        ServerMode::Virtine,
        ServerMode::VirtineSnapshot,
    ] {
        let run = run_server(mode, 50, 4096, Some(1));
        let us: Vec<f64> = run.latencies.iter().map(|c| c.as_micros()).collect();
        let s = Summary::of(&us);
        println!(
            "{:<18} mean {:>8.1} µs  p50 {:>8.1} µs  throughput {:>7.0} req/s  ({} host interactions/request)",
            format!("{:?}", run.mode),
            s.mean,
            s.median,
            run.throughput_rps,
            run.interactions_per_request,
        );
    }
    println!(
        "\nEach virtine request performs the paper's seven hypercalls:\n\
         recv, stat, open, read, write, close, exit — every one checked\n\
         against the client's policy before touching the host."
    );

    dispatched_with_observability();
}

/// The same server at platform scale, with the PR 6 observability
/// surface on: invocation tracing, per-tenant latency histograms, and
/// an SLO engine paging on burn rate (see `docs/observability.md`).
fn dispatched_with_observability() {
    use virtines::vclock::Cycles;
    use virtines::vhttp::dispatch::{http_tenant, DispatchedServer};
    use virtines::vtrace::slo::{BurnPolicy, SloEngine, SloSpec};

    println!("\nplatform mode: 2 shards, traced, with a 100 µs p99 SLO...\n");
    let mut server = DispatchedServer::new(2, 4096);
    let app = server.add_tenant(http_tenant("app"));
    let batch = server.add_tenant(http_tenant("batch"));
    let d = server.dispatcher_mut();
    d.enable_tracing(64);
    d.set_slo(SloEngine::new(
        vec![
            SloSpec::latency("e2e_p99", 0.99, Cycles::from_micros(100.0)),
            SloSpec::availability("availability", 0.999),
        ],
        BurnPolicy::default(),
    ));
    for i in 0..8 {
        let t = i as f64 * 0.001;
        server.offer(app, t).expect("admit");
        if i % 2 == 0 {
            server.offer(batch, t).expect("admit");
        }
    }
    server.dispatcher_mut().run_to_idle();
    server.dispatcher_mut().slo_tick();

    let d = server.dispatcher();
    let names: Vec<String> = d
        .tenant_ids()
        .iter()
        .map(|&id| d.tenant_name(id).to_string())
        .collect();
    println!("per-invocation span trees (newest last):");
    let mut traces: Vec<_> = d.trace().finished().collect();
    traces.sort_by_key(|t| t.id);
    for t in traces.iter().take(6) {
        println!("  {}", t.summary(&names[t.tenant]));
    }

    println!("\nend-of-run SLO report:");
    for r in d.slo().expect("slo engine").report() {
        println!(
            "  {:<14} objective {:.3}  burn fast {:>6.2} / slow {:>6.2}  \
             budget remaining {:>6.1}%  alert {}",
            r.name,
            r.objective,
            r.burn_fast,
            r.burn_slow,
            r.budget_remaining * 100.0,
            r.severity.map_or("none".to_string(), |s| s.to_string()),
        );
    }
    let e2e = d.e2e_hist();
    println!(
        "\nglobal e2e: p50 {:.1} µs, p99 {:.1} µs over {} served \
         (same histogram the /metrics endpoint exports)",
        Cycles(e2e.quantile(0.5)).as_micros(),
        Cycles(e2e.quantile(0.99)).as_micros(),
        e2e.count(),
    );
}
