//! The §6.3 scenario: a static-content HTTP server whose per-connection
//! handler runs in a virtine, compared with a native handler.
//!
//! Run with `cargo run --release --example http_server`.

use virtines::vclock::stats::Summary;
use virtines::vhttp::server::{run_server, ServerMode};

fn main() {
    println!("serving 50 requests for a 4KB file in each mode...\n");
    for mode in [
        ServerMode::Native,
        ServerMode::Virtine,
        ServerMode::VirtineSnapshot,
    ] {
        let run = run_server(mode, 50, 4096, Some(1));
        let us: Vec<f64> = run.latencies.iter().map(|c| c.as_micros()).collect();
        let s = Summary::of(&us);
        println!(
            "{:<18} mean {:>8.1} µs  p50 {:>8.1} µs  throughput {:>7.0} req/s  ({} host interactions/request)",
            format!("{:?}", run.mode),
            s.mean,
            s.median,
            run.throughput_rps,
            run.interactions_per_request,
        );
    }
    println!(
        "\nEach virtine request performs the paper's seven hypercalls:\n\
         recv, stat, open, read, write, close, exit — every one checked\n\
         against the client's policy before touching the host."
    );
}
