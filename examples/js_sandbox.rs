//! The §6.5 scenario: an untrusted JavaScript function sandboxed in a
//! virtine with the three-hypercall co-design, plus the serverless burst
//! test of §7.1 (Figure 15) at small scale.
//!
//! Run with `cargo run --release --example js_sandbox`.

use virtines::vespid::{
    load::{locust_pattern, pattern_arrivals},
    simulate, OpenWhiskModel, VespidPlatform,
};
use virtines::vjs::{self, BASE64_HANDLER};
use virtines::wasp::{HypercallMask, Invocation, VirtineSpec, Wasp};

fn main() {
    // 1. One sandboxed invocation, end to end.
    let engine = vjs::compile_engine(BASE64_HANDLER, false).expect("engine");
    println!(
        "Duktide engine image: {} bytes (Duktape compiles to ~578KB, §7.2)",
        engine.image.size()
    );
    let wasp = Wasp::new_kvm_default();
    let spec = VirtineSpec::new("handler", engine.image.clone(), engine.mem_size).with_policy(
        HypercallMask::allowing(&[
            virtines::wasp::nr::GET_DATA,
            virtines::wasp::nr::RETURN_DATA,
        ]),
    );
    let id = wasp.register(spec).expect("register");
    let out = wasp
        .run(
            id,
            &[],
            Invocation::with_payload(b"hello virtines".to_vec()),
        )
        .expect("run");
    println!(
        "handler(\"hello virtines\") = {:?}  [{:.0} µs, {} hypercalls]",
        String::from_utf8_lossy(out.result_bytes()),
        out.breakdown.total.as_micros(),
        out.hypercalls
    );
    let out = wasp
        .run(id, &[], Invocation::with_payload(b"again".to_vec()))
        .expect("run");
    println!(
        "handler(\"again\")          = {:?}  [{:.0} µs, from snapshot]",
        String::from_utf8_lossy(out.result_bytes()),
        out.breakdown.total.as_micros()
    );

    // 2. The burst test: Vespid vs an OpenWhisk-like container platform.
    println!("\nserverless burst comparison (scaled Locust pattern):");
    let arrivals = pattern_arrivals(&locust_pattern(), 0.1);
    let mut vespid = VespidPlatform::new(2048).expect("vespid");
    let v = simulate(&mut vespid, &arrivals, 8);
    let mut ow = OpenWhiskModel::default_vanilla();
    let o = simulate(&mut ow, &arrivals, 8);
    println!(
        "  vespid    : {} requests, p50 {:.2} ms, p99 {:.2} ms",
        v.completed.len(),
        v.latency_percentile(50.0) * 1e3,
        v.latency_percentile(99.0) * 1e3
    );
    println!(
        "  openwhisk : {} requests, p50 {:.2} ms, p99 {:.2} ms",
        o.completed.len(),
        o.latency_percentile(50.0) * 1e3,
        o.latency_percentile(99.0) * 1e3
    );
}
