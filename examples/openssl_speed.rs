//! The §6.4 scenario: the AES-128-CBC block cipher isolated in a virtine,
//! with an `openssl speed`-style sweep.
//!
//! Run with `cargo run --release --example openssl_speed`.

use virtines::vaes;

fn main() {
    // Correctness first: the guest cipher must agree with the FIPS-197
    // host reference.
    let v = vaes::compile_aes_virtine().expect("compile AES virtine");
    println!(
        "AES virtine image: {} bytes (paper: \"roughly 21KB\")\n",
        v.image.size()
    );

    println!("openssl-speed style sweep (3 iterations per size):");
    println!(
        "{:>10} {:>14} {:>16} {:>10}",
        "block(B)", "native(MB/s)", "virtine(MB/s)", "slowdown"
    );
    for row in vaes::run_speed(&[64, 1024, 16 * 1024], 3) {
        println!(
            "{:>10} {:>14.2} {:>16.2} {:>9.2}x",
            row.block_size, row.native_mbps, row.virtine_mbps, row.slowdown
        );
    }
    println!(
        "\nPer-invocation cost is memory-bound: each call restores the\n\
         image-sized snapshot at memcpy bandwidth, then the cipher runs at\n\
         the same speed as native (§6.4)."
    );
}
