//! The UDF scenario from the paper's introduction and §7.1: database
//! user-defined functions isolated per-invocation in virtines, so "virtines
//! would allow functions in unsafe languages (e.g., C, C++) to be safely
//! used for UDFs" with disjoint address spaces.
//!
//! A tiny in-memory table engine calls a C UDF per row. A buggy/hostile
//! UDF can crash or misbehave — its virtine dies; the database (and every
//! other invocation) is untouched.
//!
//! Run with `cargo run --release --example database_udf`.

use virtines::vcc;
use virtines::wasp::{ExitKind, Wasp};

const UDFS: &str = "
/* A well-behaved scoring UDF. */
virtine int score(int price, int qty) {
    int subtotal = price * qty;
    if (subtotal > 1000) {
        return subtotal - subtotal / 10;   /* bulk discount */
    }
    return subtotal;
}

/* A buggy UDF: divides by zero for qty == 0. */
virtine int buggy_ratio(int price, int qty) {
    return price / qty;
}

/* A hostile UDF: tries to read host memory through a wild pointer. */
virtine int hostile(int price, int qty) {
    int* p = (int*)0x40000000;
    return *p + price + qty;
}
";

fn main() {
    let unit = vcc::compile(UDFS).expect("compile UDFs");
    let wasp = Wasp::new_kvm_default();
    let table: Vec<(i64, i64)> = vec![(100, 3), (250, 8), (999, 0), (42, 1)];

    for udf in ["score", "buggy_ratio", "hostile"] {
        let v = unit.virtine(udf).expect("udf");
        let id = v.register(&wasp).expect("register");
        println!("SELECT {udf}(price, qty) FROM orders:");
        for &(price, qty) in &table {
            match vcc::invoke(&wasp, id, &[price, qty]) {
                Ok(out) => match out.exit {
                    ExitKind::Halted(v) | ExitKind::Exited(v) => {
                        println!("  ({price:>4}, {qty}) -> {}", v as i64)
                    }
                    ExitKind::Faulted(f) => {
                        println!("  ({price:>4}, {qty}) -> NULL  [virtine fault: {f}]")
                    }
                    other => println!("  ({price:>4}, {qty}) -> NULL  [{other:?}]"),
                },
                Err(e) => println!("  ({price:>4}, {qty}) -> error: {e}"),
            }
        }
        println!();
    }
    println!(
        "database survived every UDF; {} invocations ran in disjoint address spaces",
        wasp.stats().invocations
    );
}
