//! Quickstart: the paper's Figure 9 — annotate a C function with
//! `virtine` and every call runs in its own isolated micro-VM.
//!
//! Run with `cargo run --release --example quickstart`.

use virtines::vcc;
use virtines::wasp::Wasp;

fn main() {
    // The exact example from Figure 9 of the paper.
    let source = "
virtine int fib(int n) {
    if (n < 2) return n;
    return fib(n - 1) + fib(n - 2);
}
";
    // Compile: the `virtine` keyword packages fib's call graph, a libc, and
    // a boot stub into a standalone ~10KB binary image.
    let unit = vcc::compile(source).expect("compile");
    let fib = unit.virtine("fib").expect("fib virtine");
    println!(
        "compiled `{}` -> {} byte bootable image (arity {})",
        fib.name,
        fib.image.size(),
        fib.arity
    );

    // Embed the Wasp runtime and register the virtine.
    let wasp = Wasp::new_kvm_default();
    let id = fib.register(&wasp).expect("register");

    // Every invocation spins up (or recycles) an isolated virtual context.
    for n in [0i64, 10, 20] {
        let out = vcc::invoke(&wasp, id, &[n]).expect("invoke");
        println!(
            "fib({n}) = {}   [{}; {:.1} µs total, {} hypercalls]",
            out.ret,
            if out.breakdown.restored_snapshot {
                "snapshot restore"
            } else {
                "cold boot"
            },
            out.breakdown.total.as_micros(),
            out.hypercalls,
        );
    }

    let stats = wasp.stats();
    println!(
        "\nruntime stats: {} invocations, {} snapshots taken, {} restores, pool {:?}",
        stats.invocations,
        stats.snapshots_taken,
        stats.snapshot_restores,
        wasp.pool_stats()
    );
}
