//! Property-based tests over the core invariants.

use proptest::prelude::*;

use virtines::visa::inst::{Alu, Cond, CrReg, Inst, JmpMode, Reg, Width};
use virtines::visa::mem::Memory;

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..16).prop_map(Reg)
}

fn arb_alu() -> impl Strategy<Value = Alu> {
    prop_oneof![
        Just(Alu::Add),
        Just(Alu::Sub),
        Just(Alu::Mul),
        Just(Alu::Div),
        Just(Alu::Mod),
        Just(Alu::And),
        Just(Alu::Or),
        Just(Alu::Xor),
        Just(Alu::Shl),
        Just(Alu::Shr),
        Just(Alu::Sar),
    ]
}

fn arb_cond() -> impl Strategy<Value = Cond> {
    prop_oneof![
        Just(Cond::Eq),
        Just(Cond::Ne),
        Just(Cond::Lt),
        Just(Cond::Le),
        Just(Cond::Gt),
        Just(Cond::Ge),
        Just(Cond::B),
        Just(Cond::Be),
        Just(Cond::A),
        Just(Cond::Ae),
    ]
}

fn arb_width() -> impl Strategy<Value = Width> {
    prop_oneof![Just(Width::B), Just(Width::W), Just(Width::D), Just(Width::Q)]
}

fn arb_inst() -> impl Strategy<Value = Inst> {
    prop_oneof![
        Just(Inst::Nop),
        Just(Inst::Hlt),
        Just(Inst::Ret),
        (arb_reg(), arb_reg()).prop_map(|(a, b)| Inst::MovRR(a, b)),
        (arb_reg(), any::<u64>()).prop_map(|(a, v)| Inst::MovRI(a, v)),
        (arb_alu(), arb_reg(), arb_reg()).prop_map(|(o, a, b)| Inst::AluRR(o, a, b)),
        (arb_alu(), arb_reg(), any::<u64>()).prop_map(|(o, a, v)| Inst::AluRI(o, a, v)),
        arb_reg().prop_map(Inst::Neg),
        arb_reg().prop_map(Inst::Not),
        (arb_reg(), arb_reg()).prop_map(|(a, b)| Inst::CmpRR(a, b)),
        (arb_reg(), any::<u64>()).prop_map(|(a, v)| Inst::CmpRI(a, v)),
        any::<i32>().prop_map(Inst::Jmp),
        (arb_cond(), any::<i32>()).prop_map(|(c, r)| Inst::Jcc(c, r)),
        any::<i32>().prop_map(Inst::Call),
        arb_reg().prop_map(Inst::CallR),
        arb_reg().prop_map(Inst::JmpR),
        arb_reg().prop_map(Inst::Push),
        arb_reg().prop_map(Inst::Pop),
        (arb_width(), arb_reg(), arb_reg(), any::<i32>())
            .prop_map(|(w, d, b, o)| Inst::Load(w, d, b, o)),
        (arb_width(), arb_reg(), any::<i32>(), arb_reg())
            .prop_map(|(w, b, o, s)| Inst::Store(w, b, o, s)),
        (arb_reg(), any::<u16>()).prop_map(|(r, p)| Inst::In(r, p)),
        (any::<u16>(), arb_reg()).prop_map(|(p, r)| Inst::Out(p, r)),
        any::<u64>().prop_map(Inst::Lgdt),
        (prop_oneof![Just(CrReg::Cr0), Just(CrReg::Cr3), Just(CrReg::Cr4)], arb_reg())
            .prop_map(|(c, r)| Inst::MovCr(c, r)),
        (arb_reg(), prop_oneof![Just(CrReg::Cr0), Just(CrReg::Cr3), Just(CrReg::Cr4)])
            .prop_map(|(r, c)| Inst::MovRCr(r, c)),
        (prop_oneof![Just(JmpMode::Prot32), Just(JmpMode::Long64)], any::<u64>())
            .prop_map(|(m, t)| Inst::Ljmp(m, t)),
        any::<u8>().prop_map(Inst::Mark),
    ]
}

proptest! {
    /// Instruction encoding round-trips through decode for arbitrary
    /// instruction streams, and lengths are consistent.
    #[test]
    fn inst_encode_decode_round_trip(insts in proptest::collection::vec(arb_inst(), 1..40)) {
        let mut blob = Vec::new();
        for i in &insts {
            i.encode(&mut blob);
        }
        let mut off = 0;
        for expected in &insts {
            let (got, len) = Inst::decode(&blob[off..]).expect("decode");
            prop_assert_eq!(&got, expected);
            prop_assert_eq!(len, expected.len());
            off += len as usize;
        }
        prop_assert_eq!(off, blob.len());
    }

    /// Memory writes are always covered by the dirty extent: after any
    /// write sequence, clearing produces all-zero memory.
    #[test]
    fn dirty_extent_covers_all_writes(
        writes in proptest::collection::vec((0u64..4000, proptest::collection::vec(any::<u8>(), 1..64)), 0..32)
    ) {
        let mut m = Memory::new(4096);
        for (addr, data) in &writes {
            let addr = (*addr).min(4096 - data.len() as u64);
            m.write_bytes(addr, data).expect("in bounds");
        }
        m.clear();
        prop_assert!(m.as_slice().iter().all(|&b| b == 0), "clear left residue");
        prop_assert!(m.is_clean());
    }

    /// Sparse snapshots restore the exact memory contents regardless of
    /// what the shell contained before.
    #[test]
    fn sparse_snapshot_total_restore(
        writes in proptest::collection::vec((0u64..2000, any::<u64>()), 1..24),
        garbage in proptest::collection::vec((0u64..2000, any::<u64>()), 0..24),
    ) {
        let mut m = Memory::new(2048);
        for (addr, v) in &writes {
            let addr = (*addr).min(2048 - 8);
            m.write(addr, Width::Q, *v).expect("write");
        }
        let full = m.as_slice().to_vec();
        let (low, hs, high) = m.snapshot_sparse();

        let mut shell = Memory::new(2048);
        for (addr, v) in &garbage {
            let addr = (*addr).min(2048 - 8);
            shell.write(addr, Width::Q, *v).expect("write");
        }
        shell.restore_sparse(&low, hs, &high);
        prop_assert_eq!(shell.as_slice(), full.as_slice());
    }

    /// Argument marshalling is a faithful little-endian encoding.
    #[test]
    fn marshalling_round_trips(args in proptest::collection::vec(any::<i64>(), 0..8)) {
        let bytes = virtines::vcc::marshal_args(&args);
        prop_assert_eq!(bytes.len(), args.len() * 8);
        for (i, a) in args.iter().enumerate() {
            let got = i64::from_le_bytes(bytes[i*8..i*8+8].try_into().unwrap());
            prop_assert_eq!(got, *a);
        }
    }

    /// The guest base64 implementation agrees with the host reference on
    /// arbitrary inputs (executed natively for speed).
    #[test]
    fn guest_base64_matches_reference(data in proptest::collection::vec(any::<u8>(), 0..200)) {
        prop_assume!(!data.is_empty());
        let expected = virtines::vjs::base64_ref(&data);
        // Reuse the raw-env AES... no: a dedicated base64 echo program.
        static SRC: &str = r#"
int b64_main() {
    char buf[512];
    int n = vget_data(buf, 512);
    char out[1024];
    int m = base64_encode(buf, n, out);
    vreturn_data(out, m);
    vexit(0);
    return 0;
}
"#;
        // Compile once per process.
        use std::sync::OnceLock;
        static IMAGE: OnceLock<virtines::vcc::CompiledVirtine> = OnceLock::new();
        let v = IMAGE.get_or_init(|| {
            virtines::vcc::compile_raw(SRC, "b64_main", &virtines::vcc::CompileOptions::default())
                .expect("compile")
        });
        let clock = virtines::vclock::Clock::new();
        let kernel = virtines::hostsim::HostKernel::new(clock, None);
        let runner = virtines::wasp::NativeRunner::new(kernel);
        let out = runner.run(
            &v.image,
            v.image.entry,
            &[],
            virtines::wasp::Invocation::with_payload(data.clone()),
            v.mem_size,
        );
        prop_assert!(matches!(out.exit, virtines::wasp::NativeExit::Exited(0)));
        prop_assert_eq!(out.invocation.result, expected);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Compiled mini-C arithmetic agrees with Rust evaluation for random
    /// expression shapes (executed in real virtines).
    #[test]
    fn compiled_arithmetic_matches_rust(
        a in -1000i64..1000,
        b in -1000i64..1000,
        c in 1i64..100,
    ) {
        let src = "
virtine int calc(int a, int b, int c) {
    int t1 = a * b + c;
    int t2 = (a - b) / c;
    int t3 = (a & 255) ^ (b | 3);
    int t4 = a % c;
    if (t1 > t2) {
        return t1 + t3 - t4;
    }
    return t2 * 2 + t3 + t4;
}
";
        let expected = {
            let t1 = a.wrapping_mul(b).wrapping_add(c);
            let t2 = (a - b) / c;
            let t3 = (a & 255) ^ (b | 3);
            let t4 = a % c;
            if t1 > t2 { t1 + t3 - t4 } else { t2 * 2 + t3 + t4 }
        };
        use std::sync::OnceLock;
        static UNIT: OnceLock<virtines::vcc::CompiledUnit> = OnceLock::new();
        let unit = UNIT.get_or_init(|| virtines::vcc::compile(src).expect("compile"));
        let wasp = virtines::wasp::Wasp::new_kvm_default();
        let id = unit.virtine("calc").unwrap().register(&wasp).unwrap();
        let out = virtines::vcc::invoke(&wasp, id, &[a, b, c]).expect("invoke");
        prop_assert!(out.exit.is_normal(), "{:?}", out.exit);
        prop_assert_eq!(out.ret as i64, expected);
    }

    /// Guest AES agrees with the host reference for random keys/plaintexts.
    #[test]
    fn guest_aes_matches_reference_random(
        key in proptest::array::uniform16(any::<u8>()),
        iv in proptest::array::uniform16(any::<u8>()),
        blocks in 1usize..4,
        seed in any::<u8>(),
    ) {
        let data: Vec<u8> = (0..blocks * 16).map(|i| (i as u8).wrapping_mul(31).wrapping_add(seed)).collect();
        let mut expected = data.clone();
        virtines::vaes::cbc_encrypt(&key, &iv, &mut expected);

        use std::sync::OnceLock;
        static AES: OnceLock<virtines::vcc::CompiledVirtine> = OnceLock::new();
        let v = AES.get_or_init(|| virtines::vaes::compile_aes_virtine().expect("compile"));
        let clock = virtines::vclock::Clock::new();
        let kernel = virtines::hostsim::HostKernel::new(clock, None);
        let runner = virtines::wasp::NativeRunner::new(kernel);
        let out = runner.run(
            &v.image,
            v.image.entry,
            &[],
            virtines::wasp::Invocation::with_payload(virtines::vaes::payload(&key, &iv, &data)),
            v.mem_size,
        );
        prop_assert!(matches!(out.exit, virtines::wasp::NativeExit::Exited(0)), "{:?}", out.exit);
        prop_assert_eq!(out.invocation.result, expected);
    }
}
