//! Property-style tests over the core invariants.
//!
//! The container image carries no external crates, so instead of
//! `proptest` these run each property over many inputs drawn from the
//! repository's seeded PRNG (`vclock::rng::Rng`) — deterministic across
//! runs, shrinking traded for a printed failing seed/case.

use virtines::vclock::rng::Rng;
use virtines::visa::inst::{Alu, Cond, CrReg, Inst, JmpMode, Reg, Width};
use virtines::visa::mem::Memory;

fn arb_reg(r: &mut Rng) -> Reg {
    Reg(r.below(16) as u8)
}

fn arb_alu(r: &mut Rng) -> Alu {
    [
        Alu::Add,
        Alu::Sub,
        Alu::Mul,
        Alu::Div,
        Alu::Mod,
        Alu::And,
        Alu::Or,
        Alu::Xor,
        Alu::Shl,
        Alu::Shr,
        Alu::Sar,
    ][r.below(11)]
}

fn arb_cond(r: &mut Rng) -> Cond {
    [
        Cond::Eq,
        Cond::Ne,
        Cond::Lt,
        Cond::Le,
        Cond::Gt,
        Cond::Ge,
        Cond::B,
        Cond::Be,
        Cond::A,
        Cond::Ae,
    ][r.below(10)]
}

fn arb_width(r: &mut Rng) -> Width {
    [Width::B, Width::W, Width::D, Width::Q][r.below(4)]
}

fn arb_cr(r: &mut Rng) -> CrReg {
    [CrReg::Cr0, CrReg::Cr3, CrReg::Cr4][r.below(3)]
}

fn arb_i32(r: &mut Rng) -> i32 {
    r.next_u64() as u32 as i32
}

fn arb_inst(r: &mut Rng) -> Inst {
    match r.below(27) {
        0 => Inst::Nop,
        1 => Inst::Hlt,
        2 => Inst::Ret,
        3 => Inst::MovRR(arb_reg(r), arb_reg(r)),
        4 => Inst::MovRI(arb_reg(r), r.next_u64()),
        5 => Inst::AluRR(arb_alu(r), arb_reg(r), arb_reg(r)),
        6 => Inst::AluRI(arb_alu(r), arb_reg(r), r.next_u64()),
        7 => Inst::Neg(arb_reg(r)),
        8 => Inst::Not(arb_reg(r)),
        9 => Inst::CmpRR(arb_reg(r), arb_reg(r)),
        10 => Inst::CmpRI(arb_reg(r), r.next_u64()),
        11 => Inst::Jmp(arb_i32(r)),
        12 => Inst::Jcc(arb_cond(r), arb_i32(r)),
        13 => Inst::Call(arb_i32(r)),
        14 => Inst::CallR(arb_reg(r)),
        15 => Inst::JmpR(arb_reg(r)),
        16 => Inst::Push(arb_reg(r)),
        17 => Inst::Pop(arb_reg(r)),
        18 => Inst::Load(arb_width(r), arb_reg(r), arb_reg(r), arb_i32(r)),
        19 => Inst::Store(arb_width(r), arb_reg(r), arb_i32(r), arb_reg(r)),
        20 => Inst::In(arb_reg(r), r.next_u64() as u16),
        21 => Inst::Out(r.next_u64() as u16, arb_reg(r)),
        22 => Inst::Lgdt(r.next_u64()),
        23 => Inst::MovCr(arb_cr(r), arb_reg(r)),
        24 => Inst::MovRCr(arb_reg(r), arb_cr(r)),
        25 => {
            let m = if r.bool(0.5) {
                JmpMode::Prot32
            } else {
                JmpMode::Long64
            };
            Inst::Ljmp(m, r.next_u64())
        }
        _ => Inst::Mark(r.next_u64() as u8),
    }
}

/// Instruction encoding round-trips through decode for arbitrary
/// instruction streams, and lengths are consistent.
#[test]
fn inst_encode_decode_round_trip() {
    let mut rng = Rng::seeded(0x15a);
    for case in 0..300 {
        let insts: Vec<Inst> = (0..rng.below(39) + 1).map(|_| arb_inst(&mut rng)).collect();
        let mut blob = Vec::new();
        for i in &insts {
            i.encode(&mut blob);
        }
        let mut off = 0;
        for expected in &insts {
            let (got, len) = Inst::decode(&blob[off..]).expect("decode");
            assert_eq!(&got, expected, "case {case}");
            assert_eq!(len, expected.len(), "case {case}");
            off += len as usize;
        }
        assert_eq!(off, blob.len(), "case {case}");
    }
}

/// Memory writes are always covered by the dirty extent: after any write
/// sequence, clearing produces all-zero memory.
#[test]
fn dirty_extent_covers_all_writes() {
    let mut rng = Rng::seeded(0xd1e7);
    for case in 0..200 {
        let mut m = Memory::new(4096);
        for _ in 0..rng.below(32) {
            let len = rng.below(63) + 1;
            let data = rng.bytes(len);
            let addr = rng.range_u64(0, 4000).min(4096 - data.len() as u64);
            m.write_bytes(addr, &data).expect("in bounds");
        }
        m.clear();
        assert!(
            m.as_slice().iter().all(|&b| b == 0),
            "case {case}: clear left residue"
        );
        assert!(m.is_clean(), "case {case}");
    }
}

/// Sparse snapshots restore the exact memory contents regardless of what
/// the shell contained before.
#[test]
fn sparse_snapshot_total_restore() {
    let mut rng = Rng::seeded(0x54a9);
    for case in 0..200 {
        let mut m = Memory::new(2048);
        for _ in 0..rng.below(24) + 1 {
            let addr = rng.range_u64(0, 2000).min(2048 - 8);
            m.write(addr, Width::Q, rng.next_u64()).expect("write");
        }
        let full = m.as_slice().to_vec();
        let (low, hs, high) = m.snapshot_sparse();

        let mut shell = Memory::new(2048);
        for _ in 0..rng.below(24) {
            let addr = rng.range_u64(0, 2000).min(2048 - 8);
            shell.write(addr, Width::Q, rng.next_u64()).expect("write");
        }
        shell.restore_sparse(&low, hs, &high);
        assert_eq!(shell.as_slice(), full.as_slice(), "case {case}");
    }
}

/// Argument marshalling is a faithful little-endian encoding.
#[test]
fn marshalling_round_trips() {
    let mut rng = Rng::seeded(0xa6);
    for _ in 0..200 {
        let args: Vec<i64> = (0..rng.below(8)).map(|_| rng.next_u64() as i64).collect();
        let bytes = virtines::vcc::marshal_args(&args);
        assert_eq!(bytes.len(), args.len() * 8);
        for (i, a) in args.iter().enumerate() {
            let got = i64::from_le_bytes(bytes[i * 8..i * 8 + 8].try_into().unwrap());
            assert_eq!(got, *a);
        }
    }
}

/// The guest base64 implementation agrees with the host reference on
/// arbitrary inputs (executed natively for speed).
#[test]
fn guest_base64_matches_reference() {
    static SRC: &str = r#"
int b64_main() {
    char buf[512];
    int n = vget_data(buf, 512);
    char out[1024];
    int m = base64_encode(buf, n, out);
    vreturn_data(out, m);
    vexit(0);
    return 0;
}
"#;
    let v = virtines::vcc::compile_raw(SRC, "b64_main", &virtines::vcc::CompileOptions::default())
        .expect("compile");
    let mut rng = Rng::seeded(0xb64);
    for case in 0..60 {
        let len = rng.below(199) + 1;
        let data = rng.bytes(len);
        let expected = virtines::vjs::base64_ref(&data);
        let clock = virtines::vclock::Clock::new();
        let kernel = virtines::hostsim::HostKernel::new(clock, None);
        let runner = virtines::wasp::NativeRunner::new(kernel);
        let out = runner.run(
            &v.image,
            v.image.entry,
            &[],
            virtines::wasp::Invocation::with_payload(data.clone()),
            v.mem_size,
        );
        assert!(
            matches!(out.exit, virtines::wasp::NativeExit::Exited(0)),
            "case {case}: {:?}",
            out.exit
        );
        assert_eq!(out.invocation.result, expected, "case {case}");
    }
}

/// Compiled mini-C arithmetic agrees with Rust evaluation for random
/// operand values (executed in real virtines).
#[test]
fn compiled_arithmetic_matches_rust() {
    let src = "
virtine int calc(int a, int b, int c) {
    int t1 = a * b + c;
    int t2 = (a - b) / c;
    int t3 = (a & 255) ^ (b | 3);
    int t4 = a % c;
    if (t1 > t2) {
        return t1 + t3 - t4;
    }
    return t2 * 2 + t3 + t4;
}
";
    let unit = virtines::vcc::compile(src).expect("compile");
    let wasp = virtines::wasp::Wasp::new_kvm_default();
    let id = unit.virtine("calc").unwrap().register(&wasp).unwrap();
    let mut rng = Rng::seeded(0xca1c);
    for case in 0..12 {
        let a = rng.range_u64(0, 2000) as i64 - 1000;
        let b = rng.range_u64(0, 2000) as i64 - 1000;
        let c = rng.range_u64(1, 100) as i64;
        let expected = {
            let t1 = a.wrapping_mul(b).wrapping_add(c);
            let t2 = (a - b) / c;
            let t3 = (a & 255) ^ (b | 3);
            let t4 = a % c;
            if t1 > t2 {
                t1 + t3 - t4
            } else {
                t2 * 2 + t3 + t4
            }
        };
        let out = virtines::vcc::invoke(&wasp, id, &[a, b, c]).expect("invoke");
        assert!(out.exit.is_normal(), "case {case}: {:?}", out.exit);
        assert_eq!(out.ret as i64, expected, "case {case}: calc({a},{b},{c})");
    }
}

/// Guest AES agrees with the host reference for random keys/plaintexts.
#[test]
fn guest_aes_matches_reference_random() {
    let v = virtines::vaes::compile_aes_virtine().expect("compile");
    let mut rng = Rng::seeded(0xae5);
    for case in 0..12 {
        let mut key = [0u8; 16];
        let mut iv = [0u8; 16];
        key.copy_from_slice(&rng.bytes(16));
        iv.copy_from_slice(&rng.bytes(16));
        let blocks = rng.below(3) + 1;
        let seed = rng.next_u64() as u8;
        let data: Vec<u8> = (0..blocks * 16)
            .map(|i| (i as u8).wrapping_mul(31).wrapping_add(seed))
            .collect();
        let mut expected = data.clone();
        virtines::vaes::cbc_encrypt(&key, &iv, &mut expected);

        let clock = virtines::vclock::Clock::new();
        let kernel = virtines::hostsim::HostKernel::new(clock, None);
        let runner = virtines::wasp::NativeRunner::new(kernel);
        let out = runner.run(
            &v.image,
            v.image.entry,
            &[],
            virtines::wasp::Invocation::with_payload(virtines::vaes::payload(&key, &iv, &data)),
            v.mem_size,
        );
        assert!(
            matches!(out.exit, virtines::wasp::NativeExit::Exited(0)),
            "case {case}: {:?}",
            out.exit
        );
        assert_eq!(out.invocation.result, expected, "case {case}");
    }
}
