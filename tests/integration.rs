//! Cross-crate integration tests: the §3.1 safety objectives and the
//! end-to-end pipelines (compiler → runtime → guest → host services).

use virtines::hostsim::HostKernel;
use virtines::kvmsim::Hypervisor;
use virtines::vcc;
use virtines::vclock::Clock;
use virtines::wasp::{
    ExitKind, HypercallMask, Invocation, PoolMode, VirtineSpec, Wasp, WaspConfig,
};

fn wasp_with(pool: PoolMode) -> Wasp {
    let clock = Clock::new();
    Wasp::new(
        Hypervisor::kvm(HostKernel::new(clock, None)),
        WaspConfig {
            pool_mode: pool,
            ..WaspConfig::default()
        },
    )
}

/// §3.1 "Host execution and data integrity": a virtine that goes wild
/// (bad memory, bad hypercalls, runaway loops) cannot affect the host
/// runtime, which keeps serving other virtines.
#[test]
fn hostile_virtines_cannot_harm_the_host() {
    let hostile = "
virtine int wild_write(int n) {
    int* p = (int*)0x7fffffff;
    *p = n;
    return 0;
}
virtine int wild_jump(int n) {
    int* p = (int*)0x50000000;   /* beyond the 1 GiB identity map */
    return *p;
}
";
    let unit = vcc::compile(hostile).expect("compile");
    let wasp = wasp_with(PoolMode::CachedAsync);
    for name in ["wild_write", "wild_jump"] {
        let id = unit.virtine(name).unwrap().register(&wasp).unwrap();
        let out = vcc::invoke(&wasp, id, &[7]).expect("run");
        assert!(
            matches!(out.exit, ExitKind::Faulted(_)),
            "{name} should fault, got {:?}",
            out.exit
        );
    }
    // The host is fine: a healthy virtine still runs.
    let ok = vcc::compile("virtine int ok(int n) { return n + 1; }").unwrap();
    let id = ok.virtine("ok").unwrap().register(&wasp).unwrap();
    assert_eq!(vcc::invoke(&wasp, id, &[41]).unwrap().ret, 42);
}

/// §3.1 "Virtine execution and data integrity": invocations never observe
/// each other's state, through any pool mode.
#[test]
fn virtine_state_is_disjoint_across_invocations() {
    let src = "
virtine int stash_then_read(int mode) {
    int* slot = (int*)0x60000;
    if (mode == 1) {
        *slot = 0xBEEF;
        return 0;
    }
    return *slot;
}
";
    for pool in [PoolMode::Disabled, PoolMode::Cached, PoolMode::CachedAsync] {
        let unit = vcc::compile(src).expect("compile");
        let wasp = wasp_with(pool);
        let id = unit
            .virtine("stash_then_read")
            .unwrap()
            .register(&wasp)
            .unwrap();
        let w = vcc::invoke(&wasp, id, &[1]).unwrap();
        assert!(w.exit.is_normal());
        let r = vcc::invoke(&wasp, id, &[0]).unwrap();
        assert_eq!(r.ret, 0, "secret leaked across invocations under {pool:?}");
    }
}

/// §3.1 "Virtine isolation": default-deny means no file, network, or
/// stdout access without explicit policy.
#[test]
fn default_deny_blocks_every_external_service() {
    let sneaky = r#"
virtine int exfil(int n) {
    int size = 0;
    if (vstat("/etc/passwd", &size) == 0) { return 1; }
    return 0;
}
"#;
    let unit = vcc::compile(sneaky).expect("compile");
    let wasp = wasp_with(PoolMode::CachedAsync);
    wasp.kernel()
        .fs_add_file("/etc/passwd", b"root:x:0".to_vec());
    let id = unit.virtine("exfil").unwrap().register(&wasp).unwrap();
    let out = vcc::invoke(&wasp, id, &[0]).unwrap();
    assert!(
        matches!(out.exit, ExitKind::Denied { .. }),
        "stat must be denied: {:?}",
        out.exit
    );
    assert_eq!(wasp.stats().denials, 1);
}

/// The Figure 6 lifecycle: request → provision/reuse → run → clean →
/// recycle, with snapshots layered on top (Figure 7).
#[test]
fn full_lifecycle_with_pool_and_snapshots() {
    let unit = vcc::compile(
        "virtine int work(int n) { int acc = 0; int i; for (i = 0; i < n; i = i + 1) acc = acc + i; return acc; }",
    )
    .expect("compile");
    let wasp = wasp_with(PoolMode::CachedAsync);
    let id = unit.virtine("work").unwrap().register(&wasp).unwrap();

    let first = vcc::invoke(&wasp, id, &[100]).unwrap();
    assert_eq!(first.ret, 4950);
    assert!(!first.breakdown.reused_shell);
    assert!(!first.breakdown.restored_snapshot);

    for i in 0..5 {
        let out = vcc::invoke(&wasp, id, &[i]).unwrap();
        assert_eq!(out.ret as i64, (0..i).sum::<i64>());
        assert!(out.breakdown.reused_shell, "run {i} should reuse a shell");
        assert!(out.breakdown.restored_snapshot);
    }
    let stats = wasp.stats();
    assert_eq!(stats.invocations, 6);
    assert_eq!(stats.snapshots_taken, 1);
    assert_eq!(stats.snapshot_restores, 5);
    assert_eq!(wasp.pool_stats().created, 1, "one shell serves everything");
}

/// Guest libc + host services: a virtine reads a host file through the
/// checked hypercall interface and returns a digest of it.
#[test]
fn guest_reads_host_file_through_policy() {
    let src = r#"
virtine_permissive int checksum_file(int n) {
    char path[32];
    strcpy(path, "/data/blob");
    int size = 0;
    if (vstat(path, &size) != 0) { return -1; }
    int fd = vopen(path);
    if (fd < 0) { return -2; }
    char* buf = malloc(size);
    int got = vread(fd, buf, size);
    if (got != size) { return -3; }
    vclose(fd);
    int sum = 0;
    int i;
    for (i = 0; i < size; i = i + 1) {
        sum = sum + buf[i];
    }
    return sum;
}
"#;
    let unit = vcc::compile(src).expect("compile");
    let wasp = wasp_with(PoolMode::CachedAsync);
    let blob: Vec<u8> = (1..=100u8).collect();
    let expected: i64 = blob.iter().map(|&b| b as i64).sum();
    wasp.kernel().fs_add_file("/data/blob", blob);
    let id = unit
        .virtine("checksum_file")
        .unwrap()
        .register(&wasp)
        .unwrap();
    let out = vcc::invoke(&wasp, id, &[0]).unwrap();
    assert!(out.exit.is_normal(), "{:?}", out.exit);
    assert_eq!(out.ret as i64, expected);
}

/// Wasp runs on both hypervisor flavors (Figure 5: KVM and Hyper-V).
#[test]
fn wasp_is_portable_across_backends() {
    let unit = vcc::compile("virtine int id(int x) { return x; }").expect("compile");
    let v = unit.virtine("id").unwrap();
    for hv in [
        Hypervisor::kvm(HostKernel::new(Clock::new(), None)),
        Hypervisor::hyperv(HostKernel::new(Clock::new(), None)),
    ] {
        let wasp = Wasp::new(hv, WaspConfig::default());
        let id = v.register(&wasp).unwrap();
        assert_eq!(vcc::invoke(&wasp, id, &[123]).unwrap().ret, 123);
    }
}

/// The §5.3 environment-variable snapshot opt-out.
#[test]
fn no_snapshot_env_disables_snapshots() {
    std::env::set_var(virtines::wasp::NO_SNAPSHOT_ENV, "1");
    let config = WaspConfig::from_env();
    std::env::remove_var(virtines::wasp::NO_SNAPSHOT_ENV);
    assert!(config.disable_snapshots);

    let wasp = Wasp::new(Hypervisor::kvm(HostKernel::new(Clock::new(), None)), config);
    let unit = vcc::compile("virtine int f(int x) { return x; }").unwrap();
    let id = unit.virtine("f").unwrap().register(&wasp).unwrap();
    vcc::invoke(&wasp, id, &[1]).unwrap();
    let second = vcc::invoke(&wasp, id, &[2]).unwrap();
    assert!(!second.breakdown.restored_snapshot);
    assert_eq!(wasp.stats().snapshots_taken, 0);
}

/// A denied hypercall kills only the offending virtine; a permitted one
/// with hostile arguments is rejected by the handler's validation
/// (threat model, §3.2).
#[test]
fn handlers_validate_hostile_arguments() {
    // write() with a buffer pointer way outside guest memory.
    let img = virtines::visa::assemble(
        "
.org 0x8000
  mov r0, 1
  mov r1, 1
  mov r2, 0x7ffffff0    ; hostile pointer
  mov r3, 64
  out 0x1, r0
  hlt
",
    )
    .unwrap();
    let wasp = wasp_with(PoolMode::CachedAsync);
    let spec = VirtineSpec::new("hostile", img, 64 * 1024)
        .with_policy(HypercallMask::ALLOW_ALL)
        .with_snapshot(false);
    let id = wasp.register(spec).unwrap();
    let out = wasp.run(id, &[], Invocation::default()).unwrap();
    assert!(
        matches!(out.exit, ExitKind::Faulted(_)),
        "hostile pointer must fault the virtine: {:?}",
        out.exit
    );
}

/// Many distinct virtines share one runtime and pool without interference.
#[test]
fn many_virtines_share_one_runtime() {
    let src = "
virtine int add2(int x) { return x + 2; }
virtine int mul3(int x) { return x * 3; }
virtine int neg(int x) { return 0 - x; }
";
    let unit = vcc::compile(src).expect("compile");
    let wasp = wasp_with(PoolMode::CachedAsync);
    let ids: Vec<_> = ["add2", "mul3", "neg"]
        .iter()
        .map(|n| unit.virtine(n).unwrap().register(&wasp).unwrap())
        .collect();
    for round in 0..4i64 {
        assert_eq!(
            vcc::invoke(&wasp, ids[0], &[round]).unwrap().ret as i64,
            round + 2
        );
        assert_eq!(
            vcc::invoke(&wasp, ids[1], &[round]).unwrap().ret as i64,
            round * 3
        );
        assert_eq!(
            vcc::invoke(&wasp, ids[2], &[round]).unwrap().ret as i64,
            -round
        );
    }
    assert_eq!(wasp.stats().invocations, 12);
}
