#!/usr/bin/env bash
# Docs hygiene gate, run by CI and locally (`tools/check_docs.sh`).
#
# 1. Dead-link check: every relative markdown link in README.md and
#    docs/*.md must point at a file that exists, and a `#fragment` must
#    match a heading in the target file (GitHub slug rules: lowercase,
#    punctuation stripped, spaces to dashes).
# 2. Metric-catalog check: every `vsched_*` / `vslo_*` metric name
#    exported from code must appear in docs/observability.md, either
#    verbatim or covered by a documented `_*` wildcard row.
set -u
cd "$(dirname "$0")/.."

fail=0

# --- 1. relative links (and their anchors) -------------------------------
slugs_of() {
    # GitHub-style anchors for every heading in a markdown file.
    sed -n 's/^#\{1,6\} //p' "$1" |
        tr '[:upper:]' '[:lower:]' |
        sed -e 's/[^a-z0-9 _-]//g' -e 's/ /-/g'
}

for doc in README.md docs/*.md; do
    [ -f "$doc" ] || continue
    dir=$(dirname "$doc")
    # Relative links only: skip http(s), mailto, and pure in-page anchors.
    links=$(grep -o '](\([^)]*\))' "$doc" | sed -e 's/^](//' -e 's/)$//' |
        grep -v -e '^https\?:' -e '^mailto:' -e '^#' || true)
    for link in $links; do
        target=${link%%#*}
        frag=""
        case "$link" in *#*) frag=${link#*#} ;; esac
        path="$dir/$target"
        if [ ! -e "$path" ]; then
            echo "DEAD LINK: $doc -> $link ($path does not exist)"
            fail=1
            continue
        fi
        if [ -n "$frag" ] && [ -f "$path" ]; then
            if ! slugs_of "$path" | grep -qx "$frag"; then
                echo "STALE ANCHOR: $doc -> $link (no heading slugs to '$frag' in $path)"
                fail=1
            fi
        fi
    done
done

# --- 2. metric catalog ----------------------------------------------------
catalog=docs/observability.md
if [ ! -f "$catalog" ]; then
    echo "MISSING: $catalog"
    exit 1
fi
# Metric names exported from code: string literals starting vsched_/vslo_/visa_.
exported=$(grep -rhoE '"(vsched|vslo|visa)_[a-z0-9_]+' crates --include='*.rs' |
    tr -d '"' | sort -u)
# Documented wildcard prefixes (rows like `vsched_shard_*`).
wildcards=$(grep -oE '(vsched|vslo|visa)_[a-z0-9_]+_\*' "$catalog" | sed 's/\*$//' | sort -u)
for m in $exported; do
    if grep -q "$m" "$catalog"; then
        continue
    fi
    covered=0
    for w in $wildcards; do
        case "$m" in "$w"*) covered=1 ;; esac
    done
    if [ "$covered" -eq 0 ]; then
        echo "UNDOCUMENTED METRIC: $m exported from code but absent from $catalog"
        fail=1
    fi
done

if [ "$fail" -ne 0 ]; then
    echo "docs check FAILED"
    exit 1
fi
echo "docs check ok"
