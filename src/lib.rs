//! # Virtines
//!
//! Facade crate for the virtines reproduction (EuroSys '22,
//! "Isolating Functions at the Hardware Limit with Virtines").
//! Re-exports every subsystem crate under one roof so examples and
//! downstream users can depend on a single crate.

pub use hostsim;
pub use kvmsim;
pub use vaes;
pub use vcc;
pub use vclock;
pub use vespid;
pub use vhttp;
pub use visa;
pub use vjs;
pub use vlibc;
pub use vsched;
pub use vtrace;
pub use wasp;
